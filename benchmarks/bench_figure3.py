"""FIG3 — regenerate Figure 3: concurrent-reader-thread CDFs.

Paper: for TF-optimized and PRISMA, the CDF of the percentage of time each
number of threads was actively reading from storage.  Headline claims:
PRISMA uses at most ~4 threads (~3 for ResNet-50); TF-optimized allocates
its full 30-thread budget, "2-7x more threads".
"""

import pytest

from repro.experiments import ExperimentScale, run_tf_trial
from repro.frameworks.models import get_model
from repro.metrics import cdf_from_histogram, thread_usage_ratio

SCALE = ExperimentScale(scale=100, epochs=2)

_trials = {}


def trial(setup: str, model_name: str):
    key = (setup, model_name)
    if key not in _trials:
        _trials[key] = run_tf_trial(setup, get_model(model_name), 256, SCALE)
    return _trials[key]


def activity_cdf(setup: str, model_name: str):
    t = trial(setup, model_name)
    histogram = t.producer_activity if setup == "tf-prisma" else t.reader_activity
    return cdf_from_histogram(histogram, drop_zero=True)


@pytest.mark.parametrize("model", ["lenet", "alexnet", "resnet50"])
def test_fig3_prisma_thread_ceiling(benchmark, model):
    cdf = benchmark.pedantic(activity_cdf, args=("tf-prisma", model), rounds=1, iterations=1)
    benchmark.extra_info["max_threads"] = int(cdf.maximum)
    benchmark.extra_info["median_threads"] = cdf.quantile(0.5)
    benchmark.extra_info["cdf"] = {int(v): round(c, 3) for v, c in cdf.points()}
    # Paper: at most 4 (3 for ResNet-50); allow +2 for warm-up transients.
    assert cdf.maximum <= 6
    # Time is concentrated at small thread counts.
    assert cdf.quantile(0.5) <= 4


@pytest.mark.parametrize("model", ["lenet", "resnet50"])
def test_fig3_tf_optimized_spreads_wide(benchmark, model):
    cdf = benchmark.pedantic(
        activity_cdf, args=("tf-optimized", model), rounds=1, iterations=1
    )
    benchmark.extra_info["max_threads"] = int(cdf.maximum)
    benchmark.extra_info["median_threads"] = cdf.quantile(0.5)
    # Paper: TF allocates 30 threads; active counts range far above PRISMA's.
    assert cdf.maximum > 8


def test_fig3_thread_ratio_lenet(benchmark):
    def ratio():
        return thread_usage_ratio(
            activity_cdf("tf-optimized", "lenet"),
            activity_cdf("tf-prisma", "lenet"),
        )

    ratios = benchmark.pedantic(ratio, rounds=1, iterations=1)
    benchmark.extra_info["ratios"] = {f"p{int(q*100)}": round(r, 2) for q, r in ratios.items()}
    # Paper: "TF optimized uses 2-7x more threads for training".
    assert max(ratios.values()) >= 2.0
    assert min(ratios.values()) >= 1.0
