"""TRACE — record/characterize/replay workflow as asserted benchmarks.

Records the backend traffic of a PRISMA-accelerated epoch, then replays it
against the device sweep.  Assertions pin the relationships the storage
model must preserve: the framework-side view is faster than the backend
view, replays order devices correctly, and open-loop replay at compressed
time reveals queueing on the slow device.
"""

import pytest

from repro.core import PrismaConfig, build_prisma
from repro.dataset import imagenet_like
from repro.simcore import RandomStreams, Simulator
from repro.storage import (
    BlockDevice,
    Filesystem,
    PosixLayer,
    intel_p4600,
    nvme_gen4,
    sata_hdd,
)
from repro.traces import TraceReplayer, TracingPosix

SCALE = 800

_cache = {}


def recorded():
    if "traces" in _cache:
        return _cache["traces"]
    streams = RandomStreams(0)
    sim = Simulator()
    fs = Filesystem(sim, BlockDevice(sim, intel_p4600()))
    split = imagenet_like(streams, scale=SCALE)
    split.train.materialize(fs)
    posix = PosixLayer(sim, fs)
    below = TracingPosix(sim, posix)
    stage, pf, ctl = build_prisma(sim, below, PrismaConfig(control_period=1.0 / SCALE))
    above = TracingPosix(sim, stage)
    paths = split.train.filenames()
    stage.load_epoch(paths)

    def consumer():
        for path in paths:
            yield above.read_whole(path)

    p = sim.process(consumer())
    sim.run(until=p)
    ctl.stop()
    above.trace.finalize()
    below.trace.finalize()
    _cache["traces"] = (above.trace, below.trace)
    return _cache["traces"]


def replay_on(profile, **kwargs):
    _, below = recorded()
    sim = Simulator()
    fs = Filesystem(sim, BlockDevice(sim, profile))
    split = imagenet_like(RandomStreams(0), scale=SCALE)
    split.train.materialize(fs)
    return TraceReplayer(sim, PosixLayer(sim, fs)).replay(below, **kwargs)


def test_trace_record_views(benchmark):
    above, below = benchmark.pedantic(recorded, rounds=1, iterations=1)
    benchmark.extra_info["framework_mean_us"] = round(above.mean_latency() * 1e6)
    benchmark.extra_info["backend_mean_us"] = round(below.mean_latency() * 1e6)
    assert len(above) == len(below)
    assert above.total_bytes() == below.total_bytes()
    # The buffer turns device latency into memory-copy latency.
    assert above.mean_latency() < below.mean_latency() / 2


@pytest.mark.parametrize(
    "label,profile",
    [("sata-hdd", sata_hdd()), ("intel-p4600", intel_p4600()), ("nvme-gen4", nvme_gen4())],
)
def test_trace_replay_device(benchmark, label, profile):
    result = benchmark.pedantic(
        replay_on, args=(profile,), kwargs=dict(timed=False, concurrency=4),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["throughput_MiBps"] = round(result.throughput() / 2**20, 1)
    benchmark.extra_info["p99_ms"] = round(result.p99_latency * 1e3, 2)
    assert result.errors == 0


def test_trace_replay_orders_devices(benchmark):
    def ordering():
        hdd = replay_on(sata_hdd(), timed=False, concurrency=4).duration
        ssd = replay_on(intel_p4600(), timed=False, concurrency=4).duration
        nvme = replay_on(nvme_gen4(), timed=False, concurrency=4).duration
        return hdd, ssd, nvme

    hdd, ssd, nvme = benchmark.pedantic(ordering, rounds=1, iterations=1)
    assert hdd > ssd > nvme


def test_trace_open_loop_queueing_on_slow_device(benchmark):
    def latencies():
        ssd = replay_on(intel_p4600(), timed=True).mean_latency
        hdd = replay_on(sata_hdd(), timed=True).mean_latency
        return ssd, hdd

    ssd, hdd = benchmark.pedantic(latencies, rounds=1, iterations=1)
    benchmark.extra_info["ssd_mean_us"] = round(ssd * 1e6)
    benchmark.extra_info["hdd_mean_us"] = round(hdd * 1e6)
    # The HDD cannot keep up with the recorded arrival process: queueing
    # inflates latency far beyond its raw service time.
    assert hdd > ssd * 10
