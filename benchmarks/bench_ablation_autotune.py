"""ABL-CTRL — ablation: the feedback auto-tuner vs a static (t, N) grid.

DESIGN.md's ablation of the paper's central design choice: instead of the
user sweeping fixed configurations (the paper's critique of PyTorch's
``num_workers``), PRISMA's control loop should land within a few percent of
the best static point — without the sweep.
"""

import pytest

from repro.experiments import ExperimentScale
from repro.experiments.ablation import autotune_point, best_static, static_grid

SCALE = ExperimentScale(scale=200, epochs=1)

_grid = {}


def grid():
    if "points" not in _grid:
        _grid["points"] = static_grid(
            producers=(1, 2, 4, 8), buffers=(64, 512), scale=SCALE
        )
        _grid["auto"] = autotune_point(scale=SCALE)
    return _grid["points"], _grid["auto"]


def test_ablation_static_grid(benchmark):
    points, _ = benchmark.pedantic(grid, rounds=1, iterations=1)
    benchmark.extra_info["grid"] = {
        p.label: round(p.paper_equivalent_seconds) for p in points
    }
    # More producers help monotonically at fixed N (I/O-bound LeNet).
    by_t = {p.detail["producers"]: p.paper_equivalent_seconds
            for p in points if p.detail["buffer"] == 512}
    assert by_t[1] > by_t[2] > by_t[4]


def test_ablation_autotune_balanced_tradeoff(benchmark):
    """The paper's claim is *balance*, not the absolute optimum: the tuner
    stops at the concurrency knee, conceding a bounded slice of performance
    to the most resource-hungry static point while using ≤ half its
    threads (exactly the PRISMA-vs-TF-optimized relationship of Fig. 2/3).
    """

    def compare():
        points, auto = grid()
        best = best_static(points)
        return auto.paper_equivalent_seconds / best.paper_equivalent_seconds, auto, best

    ratio, auto, best = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info["autotune_s"] = round(auto.paper_equivalent_seconds)
    benchmark.extra_info["best_static"] = best.label
    benchmark.extra_info["best_static_s"] = round(best.paper_equivalent_seconds)
    benchmark.extra_info["ratio"] = round(ratio, 3)
    # Bounded concession to the brute-force point...
    assert ratio < 1.35
    # ...at no more than half its thread budget.
    assert auto.detail["final_producers"] * 2 <= best.detail["producers"]

    # And the tuner matches the best static point of its own resource
    # class: no static (t <= tuned t) configuration beats it meaningfully.
    points, _ = grid()
    same_class = [
        p for p in points if p.detail["producers"] <= auto.detail["final_producers"]
    ]
    assert auto.paper_equivalent_seconds <= min(
        p.paper_equivalent_seconds for p in same_class
    ) * 1.05


def test_ablation_autotune_beats_bad_static_choices(benchmark):
    def worst_gap():
        points, auto = grid()
        worst = max(points, key=lambda p: p.paper_equivalent_seconds)
        return worst.paper_equivalent_seconds / auto.paper_equivalent_seconds

    gap = benchmark.pedantic(worst_gap, rounds=1, iterations=1)
    benchmark.extra_info["worst_static_over_autotune"] = round(gap, 2)
    # A mis-configured static deployment is dramatically worse — the cost
    # the auto-tuner saves users from (paper §V-B's PyTorch argument).
    assert gap > 1.5
