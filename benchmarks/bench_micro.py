"""Micro-benchmarks: the substrate's own performance.

Unlike the figure benches (one simulated run, wall time irrelevant) these
measure the *implementation*: kernel event throughput, resource hand-off
cost, fluid-channel updates, buffer operations, shuffle generation.  They
guard against performance regressions that would make the figure benches
impractically slow.
"""

import numpy as np

from repro.core import PrefetchBuffer
from repro.dataset import EpochShuffler, lognormal_sizes
from repro.simcore import RandomStreams, Simulator, Store
from repro.storage import BlockDevice, FairShareChannel, constant_capacity, intel_p4600


def test_kernel_timeout_throughput(benchmark):
    """Schedule+process 50k timeout events."""

    def run():
        sim = Simulator()

        def ticker():
            for _ in range(50_000):
                yield sim.timeout(1.0)

        sim.process(ticker())
        sim.run()
        return sim.now

    result = benchmark(run)
    assert result == 50_000.0


def test_store_producer_consumer_throughput(benchmark):
    """20k items through a bounded store (two processes)."""

    def run():
        sim = Simulator()
        store = Store(sim, capacity=16)

        def producer():
            for i in range(20_000):
                yield store.put(i)

        def consumer():
            for _ in range(20_000):
                yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        return store.peak_items

    peak = benchmark(run)
    assert peak <= 16


def test_fluid_channel_update_cost(benchmark):
    """5k transfers through a shared channel with churning concurrency."""

    def run():
        sim = Simulator()
        ch = FairShareChannel(sim, constant_capacity(1e6))

        def client(offset):
            yield sim.timeout(offset * 1e-4)
            for _ in range(500):
                yield ch.transfer(1000.0)

        for c in range(10):
            sim.process(client(c))
        sim.run()
        return ch.transfers_completed

    completed = benchmark(run)
    assert completed == 5000


def test_device_read_path_cost(benchmark):
    """2k full-stack device reads (latency + fluid transfer)."""

    def run():
        sim = Simulator()
        dev = BlockDevice(sim, intel_p4600())

        def reader():
            for _ in range(500):
                yield dev.read(113 * 1024)

        for _ in range(4):
            sim.process(reader())
        sim.run()
        return dev.counters.get("reads")

    reads = benchmark(run)
    assert reads == 2000


def test_prefetch_buffer_request_path(benchmark):
    """10k insert+request cycles through the keyed buffer."""

    def run():
        sim = Simulator()
        buf = PrefetchBuffer(sim, capacity=64)

        def producer():
            for i in range(10_000):
                yield buf.insert(f"/f{i}", i)

        def consumer():
            for i in range(10_000):
                _, ev = buf.request(f"/f{i}")
                yield ev

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        return buf.counters.get("hits") + buf.counters.get("waits")

    total = benchmark(run)
    assert total == 10_000


def test_epoch_shuffle_generation(benchmark):
    """Generating a 100k-sample epoch permutation."""
    shuffler = EpochShuffler(100_000, RandomStreams(0))
    counter = {"epoch": 0}

    def run():
        counter["epoch"] += 1
        return shuffler.order(counter["epoch"])

    order = benchmark(run)
    assert len(order) == 100_000


def test_synthetic_size_generation(benchmark):
    """Drawing 100k exact-total log-normal file sizes."""

    def run():
        rng = np.random.default_rng(0)
        return lognormal_sizes(rng, 100_000, 11_000_000_000)

    sizes = benchmark(run)
    assert int(sizes.sum()) == 11_000_000_000
