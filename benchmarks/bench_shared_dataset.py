"""EXT-SHARED — access coordination to shared datasets (paper §VII).

K jobs train on the *same* dataset over one device.  Three deployments:

* independent PRISMA stages — each job prefetches privately, so the device
  serves every file K times per epoch;
* one :class:`SharedDatasetPrefetcher` — coordinated shuffle, read-once /
  serve-K, the CoorDL-style coordination §VII calls for;
* (implicit baseline: K×reads is also what vanilla pipelines cost.)

Asserted: the shared plane cuts device traffic exactly K×, and finishes
the contended epoch faster.
"""

import pytest

from repro.core import ParallelPrefetcher, SharedDatasetPrefetcher
from repro.dataset import EpochShuffler, imagenet_like
from repro.simcore import RandomStreams, Simulator
from repro.storage import BlockDevice, Filesystem, PosixLayer, intel_p4600

K = 3
SCALE = 800  # ~1.6k files

_cache = {}


def run(mode: str):
    if mode in _cache:
        return _cache[mode]
    streams = RandomStreams(0)
    sim = Simulator()
    dev = BlockDevice(sim, intel_p4600())
    fs = Filesystem(sim, dev)
    split = imagenet_like(streams, scale=SCALE)
    split.train.materialize(fs)
    posix = PosixLayer(sim, fs)
    order = EpochShuffler(len(split.train), streams.spawn("sh")).order(0)
    paths = [split.train.path(int(i)) for i in order]

    def consumer(pf, think=5e-5):
        for path in paths:
            yield pf.serve(path)
            yield sim.timeout(think)  # preprocess/compute between samples

    if mode == "shared":
        pf = SharedDatasetPrefetcher(
            sim, posix, consumers=K, producers=4, buffer_capacity=512
        )
        pf.on_epoch(paths)
        done = sim.all_of([sim.process(consumer(pf)) for _ in range(K)])
    else:  # independent stages
        pfs = []
        for _ in range(K):
            pf = ParallelPrefetcher(sim, posix, producers=4, buffer_capacity=512)
            pf.on_epoch(paths)
            pfs.append(pf)
        done = sim.all_of([sim.process(consumer(pf)) for pf in pfs])
    sim.run(until=done)
    result = {
        "seconds": sim.now,
        "device_reads": dev.counters.get("reads"),
        "device_bytes": dev.counters.get("read_bytes"),
    }
    _cache[mode] = result
    return result


@pytest.mark.parametrize("mode", ["independent", "shared"])
def test_shared_dataset_mode(benchmark, mode):
    result = benchmark.pedantic(run, args=(mode,), rounds=1, iterations=1)
    benchmark.extra_info.update(
        {k: round(v, 4) if isinstance(v, float) else v for k, v in result.items()}
    )
    assert result["seconds"] > 0


def test_shared_cuts_device_traffic_k_times(benchmark):
    def ratio():
        return run("independent")["device_reads"] / run("shared")["device_reads"]

    r = benchmark.pedantic(ratio, rounds=1, iterations=1)
    benchmark.extra_info["traffic_ratio"] = round(r, 2)
    assert r == pytest.approx(K, rel=0.01)


def test_shared_finishes_contended_epoch_faster(benchmark):
    def speedup():
        return run("independent")["seconds"] / run("shared")["seconds"]

    s = benchmark.pedantic(speedup, rounds=1, iterations=1)
    benchmark.extra_info["speedup"] = round(s, 2)
    assert s > 1.2
