"""EXT-MT — shared-storage multi-tenancy (paper §II motivation, §VII future).

Three control architectures over one shared backend:

* vanilla (no PRISMA) — every job beats on the device uncoordinated;
* independent PRISMA controllers — fast, but each blind to the others;
* one global controller with a fair-share producer budget — the SDS
  system-wide-visibility pitch.
"""

import pytest

from repro.dataset import tiny_dataset
from repro.frameworks import LENET, TrainingConfig
from repro.metrics import jain_fairness
from repro.multitenant import FairShareGlobalPolicy, SharedStorageCluster
from repro.simcore import RandomStreams, Simulator
from repro.storage import BlockDevice, Filesystem, PosixLayer, intel_p4600

N_JOBS = 3
FILES = 128

_cache = {}


def run_mode(mode: str):
    if mode in _cache:
        return _cache[mode]
    streams = RandomStreams(0)
    sim = Simulator()
    fs = Filesystem(sim, BlockDevice(sim, intel_p4600()))
    posix = PosixLayer(sim, fs)
    policy = None
    if mode == "global":
        policy = FairShareGlobalPolicy(total_producer_budget=9, per_job_cap=4)
    cluster = SharedStorageCluster(
        sim, posix, control_period=1e-3, coordination=mode, global_policy=policy
    )
    for j in range(N_JOBS):
        split = tiny_dataset(
            streams.spawn(f"d{j}"), n_train=FILES, n_val=16,
            mean_size=256 * 1024,  # chunky samples keep the tenants I/O-bound
        )
        split.train.prefix = f"/job{j}/train"
        split.validation.prefix = f"/job{j}/val"
        split.materialize(fs)
        cluster.add_job(
            split.train, split.validation, LENET,
            TrainingConfig(epochs=1, global_batch=16), streams.spawn(f"s{j}"),
        )
    result = cluster.run()
    _cache[mode] = result
    return result


@pytest.mark.parametrize("mode", ["none", "independent", "global"])
def test_multitenant_mode(benchmark, mode):
    result = benchmark.pedantic(run_mode, args=(mode,), rounds=1, iterations=1)
    times = result.job_times()
    benchmark.extra_info["makespan_s"] = round(result.makespan, 4)
    benchmark.extra_info["mean_job_s"] = round(result.mean_job_time(), 4)
    benchmark.extra_info["fairness"] = round(
        jain_fairness([1.0 / t for t in times]), 4
    )
    assert all(t > 0 for t in times)


def test_multitenant_prisma_accelerates_shared_jobs(benchmark):
    def compare():
        return run_mode("none").mean_job_time() / run_mode("independent").mean_job_time()

    speedup = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup > 1.3


def test_multitenant_global_budget_respected(benchmark):
    def peak_threads():
        result = run_mode("global")
        return max(
            int(j.prefetcher.allocated_producers.max_seen()) for j in result.jobs
        )

    peak = benchmark.pedantic(peak_threads, rounds=1, iterations=1)
    benchmark.extra_info["peak_per_job"] = peak
    assert peak <= 4  # the fair-share per-job cap


def test_multitenant_coordination_fairness(benchmark):
    def fairness_pair():
        indep = run_mode("independent").job_times()
        coord = run_mode("global").job_times()
        return (
            jain_fairness([1.0 / t for t in indep]),
            jain_fairness([1.0 / t for t in coord]),
        )

    f_indep, f_coord = benchmark.pedantic(fairness_pair, rounds=1, iterations=1)
    benchmark.extra_info["independent"] = round(f_indep, 4)
    benchmark.extra_info["coordinated"] = round(f_coord, 4)
    # Coordinated control is at least as fair as uncoordinated tuning.
    assert f_coord >= f_indep - 0.02
