"""TAB-LOC — §IV integration cost: lines of code changed per framework.

Paper: "The integration of our solution only required adding 10 and 35 LoC
to TensorFlow and PyTorch, respectively."  The bindings in this repository
keep their seams in dedicated functions so the claim is checkable against
real code, not prose.
"""

from repro.core.integrations import tf_integration_loc, torch_integration_loc
from repro.experiments.paper import INTEGRATION_LOC


def test_loc_tensorflow(benchmark):
    loc = benchmark.pedantic(tf_integration_loc, rounds=1, iterations=1)
    benchmark.extra_info["measured_loc"] = loc
    benchmark.extra_info["paper_loc"] = INTEGRATION_LOC["tensorflow"]
    assert loc <= INTEGRATION_LOC["tensorflow"]


def test_loc_pytorch(benchmark):
    loc = benchmark.pedantic(torch_integration_loc, rounds=1, iterations=1)
    benchmark.extra_info["measured_loc"] = loc
    benchmark.extra_info["paper_loc"] = INTEGRATION_LOC["pytorch"]
    # Within a few lines of the paper's 35.
    assert loc <= INTEGRATION_LOC["pytorch"] + 5
