"""EXT-DT — multi-node synchronous training over shared storage (§VII).

Strong-scaling sweep (fixed global batch) of a LeNet job over a shared
parallel filesystem, baseline pipelines vs per-node PRISMA stages under one
controller.  Asserted shape:

* PRISMA beats the baseline at every node count;
* PRISMA cuts the mean per-step barrier wait (prefetching smooths the
  per-node storage jitter that synchronous SGD otherwise amplifies);
* the baseline "scales well" only because each extra node adds a reader —
  one PRISMA node already matches several uncoordinated baseline nodes.
"""

import pytest

from repro.dataset import imagenet_like
from repro.distributed import DistributedTrainingJob
from repro.frameworks import LENET
from repro.simcore import RandomStreams, Simulator
from repro.storage import DistributedFilesystem, PosixLayer, intel_p4600

SCALE = 400
BATCH = 32
NODES = (1, 2, 4)

_cache = {}


def run(n_nodes: int, use_prisma: bool):
    key = (n_nodes, use_prisma)
    if key in _cache:
        return _cache[key]
    streams = RandomStreams(0)
    sim = Simulator()
    pfs = DistributedFilesystem(
        sim, n_targets=4, target_profile=intel_p4600(), rpc_latency=300e-6
    )
    split = imagenet_like(streams, scale=SCALE)
    split.train.materialize(pfs)
    posix = PosixLayer(sim, pfs)
    job = DistributedTrainingJob(
        sim, posix, split.train, LENET, n_nodes=n_nodes, global_batch=BATCH,
        epochs=1, streams=streams.spawn("job"), use_prisma=use_prisma,
        control_period=1.0 / SCALE,
    )
    result = job.run()
    _cache[key] = result
    return result


@pytest.mark.parametrize("nodes", NODES)
@pytest.mark.parametrize("prisma", [False, True])
def test_dt_configuration(benchmark, nodes, prisma):
    result = benchmark.pedantic(run, args=(nodes, prisma), rounds=1, iterations=1)
    benchmark.extra_info["total_s"] = round(result.total_time, 4)
    benchmark.extra_info["barrier_wait_ms"] = round(result.mean_barrier_wait * 1e3, 3)
    assert result.steps > 0


@pytest.mark.parametrize("nodes", NODES)
def test_dt_prisma_wins_at_every_node_count(benchmark, nodes):
    def gap():
        return run(nodes, False).total_time / run(nodes, True).total_time

    speedup = benchmark.pedantic(gap, rounds=1, iterations=1)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup > 1.2


def test_dt_prisma_smooths_step_jitter(benchmark):
    def waits():
        return (
            run(4, False).mean_barrier_wait,
            run(4, True).mean_barrier_wait,
        )

    base, prisma = benchmark.pedantic(waits, rounds=1, iterations=1)
    benchmark.extra_info["baseline_ms"] = round(base * 1e3, 3)
    benchmark.extra_info["prisma_ms"] = round(prisma * 1e3, 3)
    assert prisma < base


def test_dt_one_prisma_node_matches_many_baseline_nodes(benchmark):
    def ratio():
        return run(4, False).total_time / run(1, True).total_time

    r = benchmark.pedantic(ratio, rounds=1, iterations=1)
    benchmark.extra_info["baseline4_over_prisma1"] = round(r, 2)
    # One PRISMA node's parallel producers deliver what ~4 uncoordinated
    # single-reader nodes do.
    assert r > 0.7
