"""Prefetch-buffer scaling: KeyedStore fast path vs FilterStore baseline.

The paper's §IV fast-path claim is that a buffer hit costs a memory copy.
The original buffer backing (:class:`~repro.simcore.resources.FilterStore`)
re-evaluated *every* queued getter against *every* buffered item on each
put/get — O(getters × items) per dispatch, quadratic over an epoch — which
dominates simulated-epoch wall time at the paper's N=256+ buffer sizes and
ImageNet-scale file counts.  The :class:`~repro.simcore.resources.KeyedStore`
backing indexes items by path and parks consumers on per-key waiter lists,
making insert/request/contains O(1).

This bench replays the same workload through both backings — ``N`` resident
(cold) samples plus ``W`` concurrently parked consumers being fed by a
producer — and reports request throughput (completed requests per wall
second).  Results land in ``BENCH_buffer.json`` at the repo root.

Run directly:  PYTHONPATH=src python benchmarks/bench_buffer_scaling.py
Or via pytest: pytest benchmarks/bench_buffer_scaling.py --benchmark-only
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.buffer import PrefetchBuffer
from repro.simcore import Event, FilterStore, Simulator
from repro.telemetry import CounterSet

#: Buffer sizes to sweep (resident cold items during the measured phase).
SIZES = (64, 256, 1024)
#: Concurrently parked consumers (the acceptance point: 64 @ N=1024).
WAITERS = 64
#: Measured rounds per cell (each round = WAITERS requests), per size.
ROUNDS = {64: 6, 256: 4, 1024: 2}
#: Acceptance target: KeyedStore vs FilterStore at the largest cell.
TARGET_SPEEDUP = 10.0

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_buffer.json"


class FilterStoreBuffer:
    """The seed's PrefetchBuffer verbatim: FilterStore + predicate getters.

    Kept here (not in ``repro.core``) purely as the regression baseline:
    ``contains`` is a linear scan and every dispatch re-walks the full
    getter queue against the full item deque.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "baseline.buffer") -> None:
        self.sim = sim
        self.name = name
        self._store = FilterStore(sim, capacity=capacity, name=name)
        self.counters = CounterSet()

    def insert(self, path: str, payload) -> Event:
        self.counters.add("inserts")
        done = Event(self.sim, name=f"{self.name}.insert")
        inner = self._store.put((path, payload))
        inner.add_callback(
            lambda ev: done.succeed() if ev.ok else done.fail(ev.exception)
        )
        return done

    def contains(self, path: str) -> bool:
        return any(item[0] == path for item in self._store.items)

    def request(self, path: str):
        hit = self.contains(path)
        self.counters.add("hits" if hit else "waits")
        done = Event(self.sim, name=f"{self.name}.req")
        inner = self._store.get(lambda item: item[0] == path)
        inner.add_callback(
            lambda ev: done.succeed(ev.value[1]) if ev.ok else done.fail(ev.exception)
        )
        return hit, done


def make_keyed(sim: Simulator, capacity: int) -> PrefetchBuffer:
    return PrefetchBuffer(sim, capacity)


def run_cell(make_buffer, n_items: int, waiters: int, rounds: int) -> dict:
    """One (backend, N) cell: wall-time ``rounds × waiters`` requests.

    The buffer holds ``n_items`` cold samples that are never requested (the
    resident population a real epoch carries), while ``waiters`` consumers
    park on not-yet-produced paths and a producer staggers them in — the
    miss-then-deliver pattern that triggers waiter dispatch on every insert.
    """
    sim = Simulator()
    buf = make_buffer(sim, n_items + waiters + 1)

    def prefill():
        for i in range(n_items):
            yield buf.insert(f"/cold/{i}", i)

    p = sim.process(prefill())
    sim.run(until=p)
    assert p.ok
    progress = {"served": 0}

    def consumer(path):
        _, ev = buf.request(path)
        yield ev
        progress["served"] += 1

    def producer(paths):
        for path in paths:
            yield buf.insert(path, 1)

    def driver():
        for r in range(rounds):
            paths = [f"/round{r}/w{i}" for i in range(waiters)]
            consumers = [sim.process(consumer(path)) for path in paths]
            yield sim.process(producer(paths))
            for c in consumers:
                yield c

    d = sim.process(driver())
    wall0 = time.perf_counter()
    sim.run(until=d)
    seconds = time.perf_counter() - wall0
    requests = rounds * waiters
    assert progress["served"] == requests
    return {
        "n_items": n_items,
        "waiters": waiters,
        "requests": requests,
        "seconds": seconds,
        "throughput_req_per_s": requests / seconds if seconds > 0 else float("inf"),
    }


def run_scaling() -> dict:
    """Sweep both backings over SIZES; returns the full report dict."""
    backends = {
        "filterstore": lambda sim, cap: FilterStoreBuffer(sim, cap),
        "keyedstore": make_keyed,
    }
    results = []
    for n_items in SIZES:
        for backend, factory in backends.items():
            cell = run_cell(factory, n_items, WAITERS, ROUNDS[n_items])
            cell["backend"] = backend
            results.append(cell)

    def throughput(backend, n):
        (cell,) = [
            c for c in results if c["backend"] == backend and c["n_items"] == n
        ]
        return cell["throughput_req_per_s"]

    speedups = {
        str(n): throughput("keyedstore", n) / throughput("filterstore", n)
        for n in SIZES
    }
    return {
        "benchmark": "buffer_scaling",
        "description": (
            "Prefetch-buffer request throughput (completed requests / wall "
            "second) with N resident samples and 64 parked consumers: "
            "KeyedStore backing vs the seed's FilterStore backing."
        ),
        "waiters": WAITERS,
        "sizes": list(SIZES),
        "results": results,
        "speedup_by_size": speedups,
        "speedup_at_1024": speedups["1024"],
        "target_speedup_at_1024": TARGET_SPEEDUP,
    }


def write_report(report: dict, path: Path = OUTPUT) -> None:
    path.write_text(json.dumps(report, indent=2) + "\n")


# ---------------------------------------------------------------- pytest entry
def test_keyed_buffer_speedup(once):
    report = once(run_scaling)
    write_report(report)
    assert report["speedup_at_1024"] >= TARGET_SPEEDUP


def main() -> int:
    report = run_scaling()
    write_report(report)
    for cell in report["results"]:
        print(
            f"{cell['backend']:>12}  N={cell['n_items']:>5}  "
            f"{cell['requests']} reqs in {cell['seconds']:.3f}s  "
            f"-> {cell['throughput_req_per_s']:,.0f} req/s"
        )
    for n, s in report["speedup_by_size"].items():
        print(f"speedup at N={n}: {s:.1f}x")
    print(f"wrote {OUTPUT}")
    ok = report["speedup_at_1024"] >= TARGET_SPEEDUP
    print(
        f"acceptance (>= {TARGET_SPEEDUP:.0f}x at N=1024): "
        f"{'PASS' if ok else 'FAIL'} ({report['speedup_at_1024']:.1f}x)"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
