"""Clairvoyant vs reactive prefetching: the lookahead must actually pay.

ROADMAP item 1's acceptance gate: on a cold-cache multi-epoch run over the
RAM buffer → fast tier → backing store hierarchy, the clairvoyant stack
(Belady tiering + cross-epoch lookahead) must beat the reactive baseline
on BOTH simulated throughput and fast-tier hit rate — and the whole
comparison must be byte-deterministic under a fixed seed (the report is
computed twice and compared for equality).

The measured quantities are *simulated* (files per simulated second), so
the gate is immune to host wall-clock noise: a regression here means the
policy got worse, not the machine.

Results land in ``BENCH_prefetch.json`` at the repo root.

Run directly:  PYTHONPATH=src python benchmarks/bench_prefetch_lookahead.py
Or via pytest: pytest benchmarks/bench_prefetch_lookahead.py --benchmark-only
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments import run_clairvoyant_comparison

SEED = 0
N_FILES = 200
FILE_SIZE = 96 * 1024
EPOCHS = 3  # cold-cache multi-epoch: >= 3 per the acceptance criteria
LOOKAHEAD_EPOCHS = 2

#: Regression ceilings: clairvoyant must keep at least this much of its
#: measured advantage (values below 1.0 would mean "clairvoyant loses").
MIN_THROUGHPUT_RATIO = 1.0
MIN_HIT_RATE_RATIO = 1.0

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_prefetch.json"


def run_lookahead() -> dict:
    kwargs = dict(
        seed=SEED, n_files=N_FILES, file_size=FILE_SIZE,
        epochs=EPOCHS, lookahead_epochs=LOOKAHEAD_EPOCHS,
    )
    report = run_clairvoyant_comparison(**kwargs)
    repeat = run_clairvoyant_comparison(**kwargs)
    deterministic = report.metrics_dict() == repeat.metrics_dict()
    r, c = report.reactive, report.clairvoyant
    hit_ratio = (
        c.fast_tier_hit_rate / r.fast_tier_hit_rate
        if r.fast_tier_hit_rate > 0
        else float(c.fast_tier_hit_rate > 0)
    )
    return {
        "benchmark": "prefetch_lookahead",
        "description": (
            "Cold-cache multi-epoch scan through RAM buffer -> fast tier -> "
            "backing SSD: reactive (promote-on-Nth-access, LRU) vs "
            "clairvoyant (Belady tiering + cross-epoch lookahead) over "
            "identical seeded shuffles. Simulated-time metrics: immune to "
            "host wall-clock noise."
        ),
        "workload": (
            f"run_clairvoyant_comparison(seed={SEED}, n_files={N_FILES}, "
            f"file_size={FILE_SIZE}, epochs={EPOCHS}, "
            f"lookahead_epochs={LOOKAHEAD_EPOCHS})"
        ),
        "deterministic": deterministic,
        "completed": r.completed and c.completed,
        "throughput_ratio": report.speedup,
        "hit_rate_ratio": hit_ratio,
        "min_throughput_ratio": MIN_THROUGHPUT_RATIO,
        "min_hit_rate_ratio": MIN_HIT_RATE_RATIO,
        "report": report.metrics_dict(),
    }


def accept(report: dict) -> bool:
    return (
        report["deterministic"]
        and report["completed"]
        and report["throughput_ratio"] > report["min_throughput_ratio"]
        and report["hit_rate_ratio"] > report["min_hit_rate_ratio"]
    )


def write_report(report: dict, path: Path = OUTPUT) -> None:
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------- pytest entry
def test_clairvoyant_beats_reactive(once):
    report = once(run_lookahead)
    write_report(report)
    assert report["deterministic"], "same seed must give byte-identical reports"
    assert report["completed"]
    assert report["throughput_ratio"] > MIN_THROUGHPUT_RATIO
    assert report["hit_rate_ratio"] > MIN_HIT_RATE_RATIO


def main() -> int:
    report = run_lookahead()
    write_report(report)
    inner = report["report"]
    print(
        "reactive:     %7.0f files/s, fast-tier hit rate %5.1f%%"
        % (
            inner["reactive"]["throughput"],
            inner["reactive"]["fast_tier_hit_rate"] * 100,
        )
    )
    print(
        "clairvoyant:  %7.0f files/s, fast-tier hit rate %5.1f%%"
        % (
            inner["clairvoyant"]["throughput"],
            inner["clairvoyant"]["fast_tier_hit_rate"] * 100,
        )
    )
    print(
        "ratios: throughput %.3fx, hit rate %.3fx, deterministic=%s"
        % (report["throughput_ratio"], report["hit_rate_ratio"], report["deterministic"])
    )
    print(f"wrote {OUTPUT}")
    ok = accept(report)
    print(
        "acceptance (deterministic AND throughput > %.2fx AND hit rate > %.2fx): %s"
        % (MIN_THROUGHPUT_RATIO, MIN_HIT_RATE_RATIO, "PASS" if ok else "FAIL")
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
