"""ABL-STORE — ablation: storage-device sensitivity + control-period sweep.

The decoupling claim implies the same optimization adapts to different
backends with zero code changes: the control loop should re-converge to a
device-appropriate thread count (few threads on an HDD where parallelism
doesn't pay, more headroom on gen4 NVMe).
"""

import pytest

from repro.experiments import ExperimentScale
from repro.experiments.ablation import control_period_sensitivity, device_sensitivity

SCALE = ExperimentScale(scale=200, epochs=1)

_cache = {}


def devices():
    if "dev" not in _cache:
        _cache["dev"] = device_sensitivity(scale=SCALE)
    return _cache["dev"]


def test_ablation_device_sweep(benchmark):
    points = benchmark.pedantic(devices, rounds=1, iterations=1)
    info = {
        p.detail["device"]: {
            "seconds": round(p.paper_equivalent_seconds),
            "final_producers": p.detail["final_producers"],
        }
        for p in points
    }
    benchmark.extra_info.update(info)
    by_dev = {p.detail["device"]: p.paper_equivalent_seconds for p in points}
    # Faster devices -> faster (or equal, once compute-bound) training.
    assert by_dev["sata-hdd"] > by_dev["intel-p4600"] >= by_dev["nvme-gen4"] * 0.95


def test_ablation_tuner_adapts_thread_count_per_device(benchmark):
    points = benchmark.pedantic(devices, rounds=1, iterations=1)
    t = {p.detail["device"]: p.detail["final_producers"] for p in points}
    benchmark.extra_info["final_producers"] = t
    # HDD: extra threads barely help (kappa ~0.15) -> stays low.
    assert t["sata-hdd"] <= 3
    # The paper's SSD: the familiar ~4.
    assert 3 <= t["intel-p4600"] <= 5


def test_ablation_control_period(benchmark):
    points = benchmark.pedantic(
        control_period_sensitivity,
        kwargs=dict(periods_unscaled=(0.5, 2.0, 8.0), scale=SCALE),
        rounds=1,
        iterations=1,
    )
    times = {p.detail["period_unscaled"]: p.paper_equivalent_seconds for p in points}
    benchmark.extra_info["by_period_s"] = {str(k): round(v) for k, v in times.items()}
    # Slower control loops converge later but must not break training:
    # within 40 % of the fastest period's result.
    assert max(times.values()) / min(times.values()) < 1.4
