"""FIG2 — regenerate Figure 2: TF baseline vs optimized vs PRISMA.

Paper: average 10-epoch ImageNet training time on 4 GPUs for LeNet, AlexNet
and ResNet-50 at batch sizes 64/128/256.  The bench runs each (model,
batch, setup) cell at the calibrated scale and records paper-equivalent
seconds plus the paper's quoted anchors in ``extra_info``.

Expected shape (asserted):

* LeNet: baseline ≈ 4100-4200 s; PRISMA cuts >45 %; TF-opt cuts more;
* AlexNet: PRISMA cuts ≈ 20 %;
* ResNet-50: all three setups within a few percent (compute-bound).
"""

import pytest

from repro.experiments import ExperimentScale, run_tf_trial
from repro.experiments.figure2 import paper_reference
from repro.frameworks.models import ALEXNET, LENET, RESNET50, get_model
from repro.metrics import reduction_percent

#: Bench scale: 12.8k train files -> 200 batches/epoch at bs64.
SCALE = ExperimentScale(scale=100, epochs=2)

_cache = {}


def cell(setup: str, model_name: str, batch: int) -> float:
    key = (setup, model_name, batch)
    if key not in _cache:
        trial = run_tf_trial(setup, get_model(model_name), batch, SCALE)
        _cache[key] = trial.paper_equivalent_seconds
    return _cache[key]


@pytest.mark.parametrize("batch", [64, 128, 256])
@pytest.mark.parametrize("setup", ["tf-baseline", "tf-optimized", "tf-prisma"])
def test_fig2_lenet(benchmark, setup, batch):
    seconds = benchmark.pedantic(
        cell, args=(setup, "lenet", batch), rounds=1, iterations=1
    )
    benchmark.extra_info["paper_equivalent_s"] = round(seconds)
    ref = paper_reference("lenet", batch, setup)
    if ref is not None:
        benchmark.extra_info["paper_s"] = ref
        # Calibration contract: within 20 % of every quoted LeNet number.
        assert seconds == pytest.approx(ref, rel=0.20)


@pytest.mark.parametrize("setup", ["tf-baseline", "tf-optimized", "tf-prisma"])
def test_fig2_alexnet(benchmark, setup):
    seconds = benchmark.pedantic(
        cell, args=(setup, "alexnet", 256), rounds=1, iterations=1
    )
    benchmark.extra_info["paper_equivalent_s"] = round(seconds)


@pytest.mark.parametrize("setup", ["tf-baseline", "tf-prisma"])
def test_fig2_resnet50(benchmark, setup):
    seconds = benchmark.pedantic(
        cell, args=(setup, "resnet50", 256), rounds=1, iterations=1
    )
    benchmark.extra_info["paper_equivalent_s"] = round(seconds)


def test_fig2_shape_lenet_reductions(benchmark):
    def shape():
        base = cell("tf-baseline", "lenet", 256)
        return {
            "prisma_cut": reduction_percent(base, cell("tf-prisma", "lenet", 256)),
            "tfopt_cut": reduction_percent(base, cell("tf-optimized", "lenet", 256)),
        }

    cuts = benchmark.pedantic(shape, rounds=1, iterations=1)
    benchmark.extra_info.update({k: round(v, 1) for k, v in cuts.items()})
    # Paper: 54 % (PRISMA) and 67 % (TF-opt) at batch 256.
    assert cuts["prisma_cut"] > 45.0
    assert cuts["tfopt_cut"] > cuts["prisma_cut"]


def test_fig2_shape_alexnet_reduction(benchmark):
    def shape():
        base = cell("tf-baseline", "alexnet", 256)
        return reduction_percent(base, cell("tf-prisma", "alexnet", 256))

    cut = benchmark.pedantic(shape, rounds=1, iterations=1)
    benchmark.extra_info["prisma_cut"] = round(cut, 1)
    # Paper: ~20 % for AlexNet.
    assert 10.0 < cut < 35.0


def test_fig2_shape_resnet_unaffected(benchmark):
    def shape():
        base = cell("tf-baseline", "resnet50", 256)
        return cell("tf-prisma", "resnet50", 256) / base

    ratio = benchmark.pedantic(shape, rounds=1, iterations=1)
    benchmark.extra_info["prisma_over_baseline"] = round(ratio, 3)
    # Paper: "no impact on training time".
    assert 0.93 < ratio < 1.07
