"""Kernel throughput: the slot scheduler must beat the old heap kernel.

This PR reworked the simcore hot path — slot-based event scheduling
(one FIFO per timestamp instead of per-event heap pushes), an immediate
queue for the current time, allocation-lean process switching (no
bootstrap Event, no per-timeout formatted names), and inlined resume /
trigger paths.  The claim is ≥1.5× events/sec on a representative mix.

Measured workload: :func:`repro.simcore.workloads.canonical_mixed_workload`
— keyed producer/consumer hand-offs, quantized same-timestamp timeout
batches, process fan-out/fan-in, zero-delay ping-pong, timeout races, and
a contended Resource — run on the production
:class:`~repro.simcore.Simulator` and on the in-tree replica of the
pre-PR kernel (:class:`~repro.simcore._heapkernel.HeapSimulator`).  Both
kernels run on the same interpreter in the same process, so the speedup
ratio is machine-independent; absolute events/sec are recorded for the
curious.  The benchmark also asserts the two kernels fire the workload's
events in byte-identical order (the determinism contract), double-running
each to rule out run-to-run drift.

Results land in ``BENCH_simcore.json`` at the repo root.

Run directly:  PYTHONPATH=src python benchmarks/bench_simcore.py
Or via pytest: pytest benchmarks/bench_simcore.py --benchmark-only
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.simcore import Simulator
from repro.simcore._heapkernel import HeapSimulator
from repro.simcore.workloads import canonical_mixed_workload

#: Acceptance floor: production kernel events/sec over reference-kernel
#: events/sec, medians over ROUNDS in-process runs each.
MIN_SPEEDUP = 1.5

ROUNDS = 5
SCALE = 4
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_simcore.json"


def _run_once(kernel) -> tuple[float, int, list]:
    """One workload run: (wall seconds, events processed, firing log)."""
    sim = kernel()
    log = canonical_mixed_workload(sim, scale=SCALE)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return elapsed, sim.events_processed, log


def run_kernel_bench(rounds: int = ROUNDS) -> dict:
    slot_rates, heap_rates = [], []
    slot_events = heap_events = 0
    slot_logs, heap_logs = [], []
    for _ in range(rounds):
        # Interleave so cache/allocator state drift hits both kernels alike.
        elapsed, events, log = _run_once(Simulator)
        slot_rates.append(events / elapsed)
        slot_events = events
        slot_logs.append(log)
        elapsed, events, log = _run_once(HeapSimulator)
        # Same numerator for both kernels: the heap kernel burns extra
        # events on process bootstraps and interrupt wakes, so dividing
        # its own (larger) count by its wall time would flatter it.  The
        # workload is identical; rate = canonical events / wall time.
        heap_rates.append(slot_events / elapsed)
        heap_events = events
        heap_logs.append(log)

    deterministic = all(log == slot_logs[0] for log in slot_logs[1:])
    equivalent = all(log == slot_logs[0] for log in heap_logs)

    slot_median = statistics.median(slot_rates)
    heap_median = statistics.median(heap_rates)
    return {
        "benchmark": "simcore_kernel",
        "description": (
            "Kernel events/sec on the canonical mixed workload: the "
            "slot-scheduled production kernel vs an in-tree replica of the "
            "pre-PR (time, sequence) heap kernel, same process and "
            "interpreter, so the ratio is machine-independent."
        ),
        "workload": f"canonical_mixed_workload(scale={SCALE})",
        "rounds": rounds,
        "events_per_run": slot_events,
        "events_per_run_heap": heap_events,
        "slot_events_per_s": slot_rates,
        "heap_events_per_s": heap_rates,
        "slot_median_events_per_s": slot_median,
        "heap_median_events_per_s": heap_median,
        "speedup": slot_median / heap_median,
        "min_speedup": MIN_SPEEDUP,
        "deterministic_across_runs": deterministic,
        "order_matches_heap_kernel": equivalent,
    }


def write_report(report: dict, path: Path = OUTPUT) -> None:
    path.write_text(json.dumps(report, indent=2) + "\n")


# ---------------------------------------------------------------- pytest entry
def test_slot_kernel_speedup(once):
    report = once(run_kernel_bench)
    write_report(report)
    assert report["deterministic_across_runs"], "same kernel, two orders"
    assert report["order_matches_heap_kernel"], "slot kernel reordered events"
    assert report["speedup"] >= MIN_SPEEDUP


def main() -> int:
    report = run_kernel_bench()
    write_report(report)
    print(f"events/run:        {report['events_per_run']:,}")
    print(f"slot kernel:       {report['slot_median_events_per_s']:,.0f} events/s")
    print(f"heap kernel:       {report['heap_median_events_per_s']:,.0f} events/s")
    print(f"speedup:           {report['speedup']:.3f}x (floor {MIN_SPEEDUP:.2f}x)")
    print(f"deterministic:     {report['deterministic_across_runs']}, "
          f"order matches heap kernel: {report['order_matches_heap_kernel']}")
    print(f"wrote {OUTPUT}")
    ok = (
        report["speedup"] >= MIN_SPEEDUP
        and report["deterministic_across_runs"]
        and report["order_matches_heap_kernel"]
    )
    print(f"acceptance (speedup >= {MIN_SPEEDUP:.2f}x, deterministic): "
          f"{'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
