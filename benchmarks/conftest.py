"""Shared configuration for the benchmark suite.

Every paper artifact (figure/table) has a ``bench_*`` module here.  The
heavy simulations run exactly once per benchmark (``pedantic`` with one
round) — the interesting output is the *simulated* result recorded into
``benchmark.extra_info``, not wall-time statistics.

Run:  pytest benchmarks/ --benchmark-only
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Execute ``fn`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture()
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
