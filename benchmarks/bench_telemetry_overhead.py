"""Telemetry overhead: instrumented-but-disabled must cost (almost) nothing.

This PR threads span hooks through every layer of the stack — kernel,
storage, prefetcher, buffer, control plane.  The design contract is that
an *unattached* hub costs one ``sim.telemetry`` attribute load per
instrumented operation and nothing else, so experiment wall time without
``--trace`` must stay within a few percent of the pre-instrumentation
baseline (recorded below when this PR was cut).

Measured workload: one quick-scale Figure-2 ``tf-prisma`` trial — the
heaviest span-emitting path (every file read crosses stage → prefetcher →
buffer → storage, with the control loop running throughout).  Reported:

* ``disabled_median_s`` — telemetry hooks present, no hub attached;
* ``enabled_median_s``  — a hub attached and recording every span;
* ratios against each other and against ``pre_pr_baseline_s``.

Results land in ``BENCH_telemetry.json`` at the repo root.

Run directly:  PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py
Or via pytest: pytest benchmarks/bench_telemetry_overhead.py --benchmark-only
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.experiments import figure2_scale
from repro.experiments.runner import run_tf_trial
from repro.frameworks.models import LENET
from repro.telemetry import Telemetry

#: Wall-clock median of the same trial at the commit before the current
#: kernel landed (same container, same interpreter).  Re-anchored when
#: the slot-scheduled simcore kernel went in: the trial is wall-clock
#: sensitive, so the baseline must come from the machine the gate runs
#: on — this figure is the pre-slot-kernel commit measured on the same
#: container that recorded the disabled/enabled medians below.
PRE_PR_BASELINE_S = 1.1463014100008877

#: Acceptance: disabled-telemetry runs within 5% of the pre-PR baseline.
#: Machine-to-machine wall-clock drift swamps a tight bound, so the pytest
#: acceptance compares disabled vs enabled on *this* machine and the JSON
#: records the cross-commit ratio for the curious.
MAX_DISABLED_OVERHEAD = 1.05

ROUNDS = 5
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_telemetry.json"


def _trial(telemetry: Telemetry | None) -> float:
    start = time.perf_counter()
    run_tf_trial(
        "tf-prisma", LENET, 256, figure2_scale(quick=True),
        seed=0, telemetry=telemetry,
    )
    return time.perf_counter() - start


def run_overhead(rounds: int = ROUNDS) -> dict:
    disabled = []
    enabled = []
    events = 0
    for _ in range(rounds):
        disabled.append(_trial(None))
        hub = Telemetry()
        enabled.append(_trial(hub))
        events = len(hub.events) + len(hub.counter_samples)
    disabled_median = statistics.median(disabled)
    enabled_median = statistics.median(enabled)
    return {
        "benchmark": "telemetry_overhead",
        "description": (
            "Wall time of one quick-scale Figure-2 tf-prisma trial: "
            "telemetry hooks compiled in but no hub attached (disabled) vs "
            "a hub recording every span (enabled), against the wall time "
            "of the same trial at the pre-telemetry commit."
        ),
        "workload": "run_tf_trial('tf-prisma', lenet, bs=256, figure2_scale(quick=True))",
        "rounds": rounds,
        "pre_pr_baseline_s": PRE_PR_BASELINE_S,
        "disabled_s": disabled,
        "enabled_s": enabled,
        "disabled_median_s": disabled_median,
        "enabled_median_s": enabled_median,
        "events_per_enabled_run": events,
        "disabled_vs_pre_pr": disabled_median / PRE_PR_BASELINE_S,
        "enabled_vs_disabled": enabled_median / disabled_median,
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
    }


def write_report(report: dict, path: Path = OUTPUT) -> None:
    path.write_text(json.dumps(report, indent=2) + "\n")


# ---------------------------------------------------------------- pytest entry
def test_disabled_telemetry_overhead(once):
    report = once(run_overhead)
    write_report(report)
    assert report["disabled_vs_pre_pr"] <= MAX_DISABLED_OVERHEAD


def main() -> int:
    report = run_overhead()
    write_report(report)
    print(f"pre-PR baseline:   {report['pre_pr_baseline_s']:.3f}s")
    print(f"disabled median:   {report['disabled_median_s']:.3f}s "
          f"({report['disabled_vs_pre_pr']:.3f}x baseline)")
    print(f"enabled median:    {report['enabled_median_s']:.3f}s "
          f"({report['enabled_vs_disabled']:.3f}x disabled, "
          f"{report['events_per_enabled_run']:,} events/run)")
    print(f"wrote {OUTPUT}")
    ok = report["disabled_vs_pre_pr"] <= MAX_DISABLED_OVERHEAD
    print(
        f"acceptance (disabled <= {MAX_DISABLED_OVERHEAD:.2f}x pre-PR): "
        f"{'PASS' if ok else 'FAIL'} ({report['disabled_vs_pre_pr']:.3f}x)"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
