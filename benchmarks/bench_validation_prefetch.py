"""EXT-VAL — §V-A extension: prefetching validation files.

Paper: *"PRISMA's prototype does not perform prefetching for validation
files ... contemplating the prefetching of validation files would be
feasible and only require a few adjustments on the prototype"* — the
explanation offered for the PRISMA-vs-TF-optimized gap growing with batch
size.  This bench runs that adjustment and measures how much of the gap it
closes.
"""

import pytest

from repro.experiments import ExperimentScale, run_tf_trial
from repro.frameworks.models import LENET

SCALE = ExperimentScale(scale=100, epochs=2)

_cache = {}


def run(kind: str, batch: int) -> float:
    key = (kind, batch)
    if key not in _cache:
        if kind == "tf-optimized":
            trial = run_tf_trial("tf-optimized", LENET, batch, SCALE)
        else:
            trial = run_tf_trial(
                "tf-prisma", LENET, batch, SCALE,
                prefetch_validation=(kind == "prisma-valprefetch"),
            )
        _cache[key] = trial.paper_equivalent_seconds
    return _cache[key]


@pytest.mark.parametrize("kind", ["prisma", "prisma-valprefetch", "tf-optimized"])
def test_valprefetch_times(benchmark, kind):
    seconds = benchmark.pedantic(run, args=(kind, 256), rounds=1, iterations=1)
    benchmark.extra_info["paper_equivalent_s"] = round(seconds)
    assert seconds > 0


def test_valprefetch_closes_part_of_the_gap(benchmark):
    def gap_closed():
        plain = run("prisma", 256)
        full = run("prisma-valprefetch", 256)
        opt = run("tf-optimized", 256)
        return (plain - full) / (plain - opt)

    closed = benchmark.pedantic(gap_closed, rounds=1, iterations=1)
    benchmark.extra_info["gap_closed"] = round(closed, 2)
    # Validation prefetching recovers a real, but partial, share of the
    # PRISMA-vs-TF-optimized gap; the remainder is the train-phase thread
    # budget (t=4 vs 30) the tuner spends deliberately.
    assert 0.05 < closed < 0.9
    assert run("prisma-valprefetch", 256) < run("prisma", 256)
