"""FIG4 — regenerate Figure 4: PyTorch worker sweep vs PRISMA.

Paper: LeNet and AlexNet at batch 256; baseline PyTorch with 0/2/4/8/16
DataLoader workers vs PRISMA through the UDS integration.  Shape asserted:

* PRISMA beats 0/2/4 workers (by thousands of seconds at 0);
* native 8/16 workers beat PRISMA modestly (the sync-bottleneck crossover);
* PRISMA's own time is nearly flat across worker counts.
"""

import pytest

from repro.experiments import ExperimentScale, run_torch_trial
from repro.experiments.paper import FIG4_LENET_NATIVE_SECONDS
from repro.frameworks.models import get_model

#: 16 workers need >=96 batches/epoch at bs256 -> scale 50.
SCALE = ExperimentScale(scale=50, epochs=1)
WORKERS = (0, 2, 4, 8, 16)

_cache = {}


def cell(setup: str, model_name: str, workers: int) -> float:
    key = (setup, model_name, workers)
    if key not in _cache:
        trial = run_torch_trial(setup, get_model(model_name), 256, workers, SCALE)
        _cache[key] = trial.paper_equivalent_seconds
    return _cache[key]


@pytest.mark.parametrize("workers", WORKERS)
def test_fig4_lenet_native(benchmark, workers):
    seconds = benchmark.pedantic(
        cell, args=("torch-native", "lenet", workers), rounds=1, iterations=1
    )
    benchmark.extra_info["paper_equivalent_s"] = round(seconds)
    ref = FIG4_LENET_NATIVE_SECONDS[workers]
    benchmark.extra_info["paper_s"] = ref
    # Derived paper anchors: stay within 25 %.
    assert seconds == pytest.approx(ref, rel=0.25)


@pytest.mark.parametrize("workers", WORKERS)
def test_fig4_lenet_prisma(benchmark, workers):
    seconds = benchmark.pedantic(
        cell, args=("torch-prisma", "lenet", workers), rounds=1, iterations=1
    )
    benchmark.extra_info["paper_equivalent_s"] = round(seconds)
    # Paper anchors PRISMA-PyTorch around 1.9-2.1 ks for LeNet bs256.
    assert 1500 < seconds < 2600


@pytest.mark.parametrize("workers", (0, 4, 16))
def test_fig4_alexnet(benchmark, workers):
    def pair():
        return (
            cell("torch-native", "alexnet", workers),
            cell("torch-prisma", "alexnet", workers),
        )

    native, prisma = benchmark.pedantic(pair, rounds=1, iterations=1)
    benchmark.extra_info["native_s"] = round(native)
    benchmark.extra_info["prisma_s"] = round(prisma)
    if workers == 0:
        assert prisma < native  # paper: PRISMA saves 2710 s at 0 workers


def test_fig4_shape_crossover(benchmark):
    def shape():
        return {w: cell("torch-native", "lenet", w) - cell("torch-prisma", "lenet", w)
                for w in WORKERS}

    adv = benchmark.pedantic(shape, rounds=1, iterations=1)
    benchmark.extra_info["advantage_s"] = {w: round(a) for w, a in adv.items()}
    # PRISMA wins at 0/2/4, loses at 8/16 (paper's crossover).
    assert adv[0] > 1000
    assert adv[2] > 0
    assert adv[4] > -150  # roughly break-even, paper: +176
    assert adv[8] < 0
    assert adv[16] < 0


def test_fig4_shape_prisma_constant(benchmark):
    def spread():
        times = [cell("torch-prisma", "lenet", w) for w in WORKERS]
        return max(times) / min(times)

    ratio = benchmark.pedantic(spread, rounds=1, iterations=1)
    benchmark.extra_info["prisma_spread"] = round(ratio, 3)
    # Paper: "PRISMA performs similarly for different combinations of
    # PyTorch workers".
    assert ratio < 1.20
