"""LIVE — the real-threads prefetcher on real files.

Validates that the deployable implementation behaves like the simulated
one: parallel producers raise delivered throughput over serial reads (when
storage, not the page cache, is the bottleneck we can't control here — so
the assertion is on mechanism, not speedup), the auto-tuner converges, and
the buffer protocol sustains a realistic epoch stream.
"""

import os
import random

import pytest

from repro.core.live import LivePrefetcher, LivePrisma


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    directory = tmp_path_factory.mktemp("live-bench")
    payload = os.urandom(64 * 1024)
    paths = []
    for i in range(300):
        p = directory / f"s{i:05d}.bin"
        p.write_bytes(payload)
        paths.append(str(p))
    return paths


def test_live_epoch_throughput(benchmark, dataset):
    """One full epoch through the live prefetcher (threads + buffer)."""
    order = list(dataset)
    random.Random(0).shuffle(order)

    def run():
        consumed = 0
        with LivePrefetcher(producers=4, buffer_capacity=64) as pf:
            pf.load_epoch(order)
            for path in order:
                consumed += len(pf.read(path, timeout=30.0))
        return consumed

    total = benchmark(run)
    assert total == 300 * 64 * 1024


def test_live_serial_epoch_baseline(benchmark, dataset):
    """The num_workers=0 equivalent, for comparison in the report."""
    order = list(dataset)
    random.Random(0).shuffle(order)

    def run():
        consumed = 0
        for path in order:
            with open(path, "rb") as fh:
                consumed += len(fh.read())
        return consumed

    total = benchmark(run)
    assert total == 300 * 64 * 1024


def test_live_autotuned_session(benchmark, dataset):
    """Three epochs under the live control loop."""
    orders = []
    rng = random.Random(1)
    for _ in range(3):
        order = list(dataset)
        rng.shuffle(order)
        orders.append(order)

    def run():
        with LivePrisma(
            producers=2, buffer_capacity=32, max_producers=8, control_period=0.02
        ) as prisma:
            n = 0
            for order in orders:
                for _path, data in prisma.iter_epoch(order):
                    n += len(data)
            stats = prisma.stats()
        return n, stats

    total, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["hit_rate"] = round(stats["hit_rate"], 3)
    benchmark.extra_info["final_buffer"] = stats["buffer_capacity"]
    assert total == 3 * 300 * 64 * 1024
    assert stats["hit_rate"] > 0.2
