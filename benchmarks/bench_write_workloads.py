"""Write-path gate: checkpoints must not starve the read path.

ROADMAP item 4's acceptance gate, over the three storage deployments of
the writes experiment (``posix-read``, ``posix-mixed``, ``object-mixed``):

* **PRISMA wins everywhere** — ``prisma-async`` finishes training at
  least ``MIN_SPEEDUP``x faster than the ``baseline-sync`` setup in every
  config, including the object store reached purely through
  ``BackendConfig(kind="object")``;
* **async checkpointing recovers burst-window reads** — inside
  checkpoint-write windows, the ``prisma-async`` setup sustains at least
  ``MIN_BURST_RATIO``x the read throughput of ``prisma-sync`` in both
  mixed (read+write) configs;
* the whole matrix is byte-deterministic across two runs of one seed.

All recorded quantities are *simulated*, so the gate is immune to host
wall-clock noise.  Results land in ``BENCH_writes.json`` at the repo root.

Run directly:  PYTHONPATH=src python benchmarks/bench_write_workloads.py
Or via pytest: pytest benchmarks/bench_write_workloads.py --benchmark-only
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.writes import run_write_workloads

SEED = 0
N_FILES = 640
FILE_SIZE = 112 * 1024
EPOCHS = 2
CKPT_EVERY = 8
CKPT_BYTES = 96_000_000

#: prisma-async must beat baseline-sync end-to-end in every config.
MIN_SPEEDUP = 1.1
#: inside checkpoint bursts, async checkpointing must sustain >= 1.2x the
#: read throughput of synchronous checkpointing (the interference claim).
MIN_BURST_RATIO = 1.2
#: configs where checkpoints actually fire (burst ratio is defined).
MIXED_CONFIGS = ("posix-mixed", "object-mixed")

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_writes.json"


def run_writes() -> dict:
    kwargs = dict(
        seed=SEED, n_files=N_FILES, file_size=FILE_SIZE, epochs=EPOCHS,
        ckpt_every=CKPT_EVERY, ckpt_bytes=CKPT_BYTES,
    )
    report = run_write_workloads(**kwargs)
    repeat = run_write_workloads(**kwargs)
    deterministic = report.metrics_dict() == repeat.metrics_dict()

    speedups = {}
    burst_ratios = {}
    for config in report.configs():
        base = report.trial(config, "baseline-sync")
        sync = report.trial(config, "prisma-sync")
        async_ = report.trial(config, "prisma-async")
        speedups[config] = (
            base.sim_seconds / async_.sim_seconds if async_.sim_seconds > 0 else 0.0
        )
        if config in MIXED_CONFIGS and sync.burst_read_throughput > 0:
            burst_ratios[config] = (
                async_.burst_read_throughput / sync.burst_read_throughput
            )
    return {
        "benchmark": "write_workloads",
        "description": (
            "Checkpoint write bursts contending with prefetch reads over "
            "three config-selected backends (read-only POSIX, POSIX with "
            "read/write interference, S3-like object store). Gates: "
            "prisma-async beats baseline-sync everywhere, and async "
            "checkpointing sustains >= 1.2x the burst-window read "
            "throughput of sync. Simulated-time metrics: immune to host "
            "wall-clock noise."
        ),
        "workload": (
            f"run_write_workloads(seed={SEED}, n_files={N_FILES}, "
            f"file_size={FILE_SIZE}, epochs={EPOCHS}, "
            f"ckpt_every={CKPT_EVERY}, ckpt_bytes={CKPT_BYTES})"
        ),
        "deterministic": deterministic,
        "speedups": speedups,
        "burst_read_ratios": burst_ratios,
        "min_speedup": MIN_SPEEDUP,
        "min_burst_ratio": MIN_BURST_RATIO,
        "report": report.metrics_dict(),
    }


def accept(report: dict) -> bool:
    return (
        report["deterministic"]
        and len(report["speedups"]) == 3
        and all(s >= report["min_speedup"] for s in report["speedups"].values())
        and len(report["burst_read_ratios"]) == len(MIXED_CONFIGS)
        and all(
            r >= report["min_burst_ratio"]
            for r in report["burst_read_ratios"].values()
        )
    )


def write_report(report: dict, path: Path = OUTPUT) -> None:
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------- pytest entry
def test_write_workload_gates(once):
    report = once(run_writes)
    write_report(report)
    assert report["deterministic"], "same seed must give byte-identical reports"
    assert len(report["speedups"]) == 3
    for config, speedup in report["speedups"].items():
        assert speedup >= MIN_SPEEDUP, (
            f"prisma-async only {speedup:.2f}x baseline-sync in {config}"
        )
    assert len(report["burst_read_ratios"]) == len(MIXED_CONFIGS)
    for config, ratio in report["burst_read_ratios"].items():
        assert ratio >= MIN_BURST_RATIO, (
            f"async burst-window reads only {ratio:.2f}x sync in {config}"
        )


def main() -> int:
    report = run_writes()
    write_report(report)
    for config, speedup in report["speedups"].items():
        burst = report["burst_read_ratios"].get(config)
        extra = f", burst reads {burst:.2f}x sync" if burst is not None else ""
        print(f"{config}: prisma-async {speedup:.2f}x baseline-sync{extra}")
    print(f"deterministic={report['deterministic']}")
    print(f"wrote {OUTPUT}")
    ok = accept(report)
    print(
        "acceptance (deterministic AND speedup >= %.2f AND burst ratio >= %.2f): %s"
        % (MIN_SPEEDUP, MIN_BURST_RATIO, "PASS" if ok else "FAIL")
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
