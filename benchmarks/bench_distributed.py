"""EXT-DIST — PRISMA over a distributed parallel filesystem (paper §VII).

The paper's "distributed training settings" future work: the same data
plane, unmodified, over a Lustre-like PFS (hash-placed files on several
OSTs behind a shared network link with RPC latency).  Prefetching pays off
*more* here — producers hide the network round trip that a synchronous
reader eats per file.
"""

import pytest

from repro.core import PrismaConfig, build_prisma
from repro.core.integrations import PrismaTensorFlowPipeline
from repro.dataset import EpochShuffler, imagenet_like
from repro.frameworks import GpuEnsemble, LENET, Trainer, TrainingConfig
from repro.frameworks.tensorflow import tf_baseline
from repro.simcore import RandomStreams, Simulator
from repro.storage import DistributedFilesystem, PosixLayer, intel_p4600

SCALE = 400
BATCH = 32
EPOCHS = 1

_cache = {}


def run(setup: str, rpc_latency: float = 400e-6) -> float:
    key = (setup, rpc_latency)
    if key in _cache:
        return _cache[key]
    streams = RandomStreams(0)
    sim = Simulator()
    pfs = DistributedFilesystem(
        sim, n_targets=4, target_profile=intel_p4600(), rpc_latency=rpc_latency
    )
    split = imagenet_like(streams, scale=SCALE)
    split.materialize(pfs)
    posix = PosixLayer(sim, pfs)  # duck-typed: the PFS speaks Filesystem
    tr_sh = EpochShuffler(len(split.train), streams.spawn("t"))
    va_sh = EpochShuffler(len(split.validation), streams.spawn("v"))
    controller = None
    if setup == "prisma":
        stage, prefetcher, controller = build_prisma(
            sim, posix, PrismaConfig(control_period=1.0 / SCALE)
        )
        train_src = PrismaTensorFlowPipeline(
            sim, split.train, tr_sh, BATCH, stage, LENET
        )
    else:
        train_src = tf_baseline(sim, split.train, tr_sh, BATCH, posix, LENET)
    val_src = tf_baseline(
        sim, split.validation, va_sh, BATCH, posix, LENET, name="val"
    )
    trainer = Trainer(
        sim, LENET, GpuEnsemble(sim), train_src,
        TrainingConfig(epochs=EPOCHS, global_batch=BATCH), val_src, setup=setup,
    )
    seconds = trainer.run_to_completion().total_time * SCALE * 10 / EPOCHS
    if controller is not None:
        controller.stop()
    _cache[key] = seconds
    return seconds


@pytest.mark.parametrize("setup", ["baseline", "prisma"])
def test_distributed_training_time(benchmark, setup):
    seconds = benchmark.pedantic(run, args=(setup,), rounds=1, iterations=1)
    benchmark.extra_info["paper_equivalent_s"] = round(seconds)
    assert seconds > 0


def test_distributed_prisma_reduction(benchmark):
    def reduction():
        return 100.0 * (1.0 - run("prisma") / run("baseline"))

    cut = benchmark.pedantic(reduction, rounds=1, iterations=1)
    benchmark.extra_info["reduction_pct"] = round(cut, 1)
    # RPC latency amplifies the serial reader's penalty: the cut on the
    # PFS exceeds the local-SSD LeNet cut (>50 %).
    assert cut > 50.0


def test_distributed_latency_sensitivity(benchmark):
    def gap_growth():
        local_gap = run("baseline", 100e-6) - run("prisma", 100e-6)
        remote_gap = run("baseline", 800e-6) - run("prisma", 800e-6)
        return remote_gap / local_gap

    growth = benchmark.pedantic(gap_growth, rounds=1, iterations=1)
    benchmark.extra_info["gap_growth"] = round(growth, 2)
    # More RPC latency -> bigger absolute PRISMA advantage.
    assert growth > 1.0
