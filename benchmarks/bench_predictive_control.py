"""Predictive-control gate: jump to the optimum, don't climb to it.

ROADMAP item 1's acceptance gate, over both storage deployments of the
predictive experiment (``posix`` and ``object``):

* **predictive converges fast** — :class:`~repro.core.PredictivePolicy`
  reaches 95 % of the oracle-best-static steady throughput in at most
  ``MAX_CONVERGENCE_RATIO``x the control periods the reactive
  :class:`~repro.core.PrismaAutotunePolicy` needs, on every backend kind;
* **predictive converges well** — its steady-state throughput is at
  least ``MIN_STEADY_FRACTION`` of the oracle's (the jump lands on the
  actual optimum, not merely near it);
* **one kernel, two drivers** — the predictive trial's decision sequence
  replays identically through the simulated and the live controller
  (sim/live parity), and the in-envelope workload never falls back;
* the whole report is byte-deterministic across two runs of one seed.

All recorded quantities are *simulated*, so the gate is immune to host
wall-clock noise.  Results land in ``BENCH_predict.json`` at the repo root.

Run directly:  PYTHONPATH=src python benchmarks/bench_predictive_control.py
Or via pytest: pytest benchmarks/bench_predictive_control.py --benchmark-only
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.predictive import run_predictive_comparison

SEED = 0

#: predictive must converge in <= half the reactive policy's periods.
MAX_CONVERGENCE_RATIO = 0.5
#: predictive steady throughput must be >= 95% of oracle-best-static.
MIN_STEADY_FRACTION = 0.95
BACKEND_KINDS = ("posix", "object")

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_predict.json"


def run_predictive() -> dict:
    report = run_predictive_comparison(seed=SEED, backend_kinds=BACKEND_KINDS)
    repeat = run_predictive_comparison(seed=SEED, backend_kinds=BACKEND_KINDS)
    deterministic = report.metrics_dict() == repeat.metrics_dict()

    ratios = {}
    steady_fractions = {}
    parity = {}
    fallbacks = {}
    for r in report.results:
        ratios[r.backend_kind] = r.convergence_ratio
        steady_fractions[r.backend_kind] = (
            r.predictive.steady_throughput / r.oracle.steady_throughput
            if r.oracle.steady_throughput > 0
            else 0.0
        )
        parity[r.backend_kind] = r.live_parity
        fallbacks[r.backend_kind] = r.fell_back
    return {
        "benchmark": "predictive_control",
        "description": (
            "Offline (t, N) sweep fits a ridge throughput model; "
            "PredictivePolicy jumps to its argmax and refines locally, "
            "racing PrismaAutotunePolicy hill-climbing and the "
            "oracle-best-static setting from the same cold start on POSIX "
            "and object-store backends. Gates: predictive reaches 95% of "
            "oracle steady throughput in <= 0.5x reactive's control "
            "periods, lands within 5% of the oracle's steady rate, "
            "preserves sim/live decision parity, never falls back, and "
            "the whole report is byte-deterministic."
        ),
        "workload": (
            f"run_predictive_comparison(seed={SEED}, "
            f"backend_kinds={list(BACKEND_KINDS)})"
        ),
        "deterministic": deterministic,
        "convergence_ratios": ratios,
        "steady_fractions": steady_fractions,
        "live_parity": parity,
        "fell_back": fallbacks,
        "max_convergence_ratio": MAX_CONVERGENCE_RATIO,
        "min_steady_fraction": MIN_STEADY_FRACTION,
        "model_rmse_rel": report.model_rmse_rel,
        "report": report.metrics_dict(),
    }


def accept(report: dict) -> bool:
    return (
        report["deterministic"]
        and len(report["convergence_ratios"]) == len(BACKEND_KINDS)
        and all(
            r <= report["max_convergence_ratio"]
            for r in report["convergence_ratios"].values()
        )
        and all(
            f >= report["min_steady_fraction"]
            for f in report["steady_fractions"].values()
        )
        and all(report["live_parity"].values())
        and not any(report["fell_back"].values())
    )


def write_report(report: dict, path: Path = OUTPUT) -> None:
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------- pytest entry
def test_predictive_control_gates(once):
    report = once(run_predictive)
    write_report(report)
    assert report["deterministic"], "same seed must give byte-identical reports"
    assert len(report["convergence_ratios"]) == len(BACKEND_KINDS)
    for kind, ratio in report["convergence_ratios"].items():
        assert ratio <= MAX_CONVERGENCE_RATIO, (
            f"predictive took {ratio:.2f}x reactive's periods on {kind}"
        )
    for kind, fraction in report["steady_fractions"].items():
        assert fraction >= MIN_STEADY_FRACTION, (
            f"predictive steady rate only {fraction:.1%} of oracle on {kind}"
        )
    for kind, ok in report["live_parity"].items():
        assert ok, f"sim/live decision parity broken on {kind}"
    for kind, fell in report["fell_back"].items():
        assert not fell, f"in-envelope workload fell back to reactive on {kind}"


def main() -> int:
    report = run_predictive()
    write_report(report)
    for kind in BACKEND_KINDS:
        print(
            "%s: %.2fx reactive's convergence periods, steady %.1f%% of "
            "oracle, parity %s"
            % (
                kind,
                report["convergence_ratios"][kind],
                100 * report["steady_fractions"][kind],
                "ok" if report["live_parity"][kind] else "BROKEN",
            )
        )
    print(f"deterministic={report['deterministic']}")
    print(f"wrote {OUTPUT}")
    ok = accept(report)
    print(
        "acceptance (deterministic AND ratio <= %.2f AND steady >= %.0f%% "
        "AND parity AND no fallback): %s"
        % (MAX_CONVERGENCE_RATIO, 100 * MIN_STEADY_FRACTION, "PASS" if ok else "FAIL")
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
