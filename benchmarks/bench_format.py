"""ABL-FMT — data-format ablation: file-per-sample vs record shards vs PRISMA.

Paper §II cites "optimized data formats" (TFRecord) as a framework-intrinsic
storage optimization.  This bench quantifies the comparison the paper's
argument implies:

* sharding fixes the small-random-read problem but requires converting the
  dataset and shuffling at shard granularity (framework-specific);
* PRISMA recovers most of the same benefit over the *unconverted*
  file-per-sample layout, from an external layer.
"""

import pytest

from repro.core import PrismaConfig, build_prisma
from repro.core.integrations import PrismaTensorFlowPipeline
from repro.dataset import EpochShuffler, imagenet_like, shard_catalog
from repro.frameworks import GpuEnsemble, LENET, Trainer, TrainingConfig
from repro.frameworks.tensorflow import ShardedTFDataPipeline, tf_baseline
from repro.simcore import RandomStreams, Simulator
from repro.storage import BlockDevice, Filesystem, PosixLayer, intel_p4600

SCALE = 200
BATCH = 64
EPOCHS = 1
SAMPLES_PER_SHARD = 512

_cache = {}


def run(layout: str) -> float:
    if layout in _cache:
        return _cache[layout]
    streams = RandomStreams(0)
    sim = Simulator()
    fs = Filesystem(sim, BlockDevice(sim, intel_p4600()))
    split = imagenet_like(streams, scale=SCALE)
    posix = PosixLayer(sim, fs)
    va_sh = EpochShuffler(len(split.validation), streams.spawn("v"))
    split.validation.materialize(fs)
    controller = None

    if layout == "sharded":
        sharded = shard_catalog(split.train, samples_per_shard=SAMPLES_PER_SHARD)
        sharded.shards.materialize(fs)
        train_src = ShardedTFDataPipeline(
            sim, sharded, EpochShuffler(len(sharded.shards), streams.spawn("s")),
            BATCH, posix, LENET, reader_threads=1, prefetch_batches=2,
        )
    else:
        split.train.materialize(fs)
        tr_sh = EpochShuffler(len(split.train), streams.spawn("t"))
        if layout == "prisma":
            stage, prefetcher, controller = build_prisma(
                sim, posix, PrismaConfig(control_period=1.0 / SCALE)
            )
            train_src = PrismaTensorFlowPipeline(
                sim, split.train, tr_sh, BATCH, stage, LENET
            )
        else:  # file-per-sample baseline
            train_src = tf_baseline(sim, split.train, tr_sh, BATCH, posix, LENET)

    val_src = tf_baseline(sim, split.validation, va_sh, BATCH, posix, LENET, name="val")
    trainer = Trainer(
        sim, LENET, GpuEnsemble(sim), train_src,
        TrainingConfig(epochs=EPOCHS, global_batch=BATCH), val_src, setup=layout,
    )
    seconds = trainer.run_to_completion().total_time * SCALE * 10 / EPOCHS
    if controller is not None:
        controller.stop()
    _cache[layout] = seconds
    return seconds


@pytest.mark.parametrize("layout", ["file-per-sample", "sharded", "prisma"])
def test_format_layout(benchmark, layout):
    seconds = benchmark.pedantic(run, args=(layout,), rounds=1, iterations=1)
    benchmark.extra_info["paper_equivalent_s"] = round(seconds)
    assert seconds > 0


def test_format_sharding_beats_file_per_sample(benchmark):
    def ratio():
        return run("file-per-sample") / run("sharded")

    speedup = benchmark.pedantic(ratio, rounds=1, iterations=1)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    # Large sequential shard reads crush per-file latency even with one
    # reader thread.
    assert speedup > 1.5


def test_format_prisma_recovers_most_of_the_benefit(benchmark):
    """PRISMA over raw files vs the converted-dataset gold standard."""

    def gap():
        base = run("file-per-sample")
        return (base - run("prisma")) / (base - run("sharded"))

    recovered = benchmark.pedantic(gap, rounds=1, iterations=1)
    benchmark.extra_info["benefit_recovered"] = round(recovered, 2)
    # The external prefetcher recovers the bulk of the format's win without
    # converting the dataset or changing shuffle granularity.
    assert recovered > 0.6
