"""Cooperative-cache invariant at N=128: the backing store sees each sample once.

ROADMAP item 2's acceptance gate: 128 nodes each scan the full catalog
every epoch through the peer-to-peer cluster store.  Without cooperation
the backing store would absorb ``128 × catalog`` reads per epoch; the gate
requires the measured backing-store reads to stay within **1.05× the
unique samples per epoch cluster-wide**, and the whole report to be
byte-deterministic across two runs of the same seed.

The recorded quantities — simulated epoch wall-time, cluster cache hit
rate, backing reads per sample per epoch — are all *simulated*, so the
gate is immune to host wall-clock noise: a regression here means the
sharding, coalescing, or peer-serving logic got worse, not the machine.

Results land in ``BENCH_cluster.json`` at the repo root.

Run directly:  PYTHONPATH=src python benchmarks/bench_cluster_serving.py
Or via pytest: pytest benchmarks/bench_cluster_serving.py --benchmark-only
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.cluster import run_cluster_serving

SEED = 0
N_NODES = 128
N_FILES = 192
FILE_SIZE = 64 * 1024
EPOCHS = 2

#: The cooperative-cache ceiling: backing reads per unique sample per
#: epoch.  1.0 is the invariant; 1.05 allows for future fault-tolerant
#: variants that trade a few duplicate reads for availability.
MAX_READS_PER_UNIQUE_SAMPLE = 1.05
#: The cluster's tiers must absorb nearly all of the N× request storm.
MIN_CLUSTER_HIT_RATE = 0.95

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_cluster.json"


def run_cluster() -> dict:
    kwargs = dict(
        seed=SEED, n_nodes=N_NODES, n_files=N_FILES,
        file_size=FILE_SIZE, epochs=EPOCHS,
    )
    report = run_cluster_serving(**kwargs)
    repeat = run_cluster_serving(**kwargs)
    deterministic = report.metrics_dict() == repeat.metrics_dict()
    return {
        "benchmark": "cluster_serving",
        "description": (
            "128 nodes each scanning the full catalog per epoch through the "
            "sharded peer-to-peer cluster store (stable-hash shard map, "
            "read-through tiers with in-flight coalescing, RPC peer serving "
            "with backing-store fallback). Simulated-time metrics: immune "
            "to host wall-clock noise."
        ),
        "workload": (
            f"run_cluster_serving(seed={SEED}, n_nodes={N_NODES}, "
            f"n_files={N_FILES}, file_size={FILE_SIZE}, epochs={EPOCHS})"
        ),
        "deterministic": deterministic,
        "completed": report.completed,
        "sim_seconds": report.sim_seconds,
        "requests": report.requests,
        "backing_reads": report.backing_reads,
        "cluster_hit_rate": report.cluster_hit_rate,
        "peer_hit_rate": report.peer_hit_rate,
        "reads_per_unique_sample": report.worst_backing_per_unique,
        "max_reads_per_path": report.worst_reads_per_path,
        "max_reads_per_unique_sample": MAX_READS_PER_UNIQUE_SAMPLE,
        "min_cluster_hit_rate": MIN_CLUSTER_HIT_RATE,
        "report": report.metrics_dict(),
    }


def accept(report: dict) -> bool:
    return (
        report["deterministic"]
        and report["completed"]
        and report["reads_per_unique_sample"] <= report["max_reads_per_unique_sample"]
        and report["cluster_hit_rate"] >= report["min_cluster_hit_rate"]
    )


def write_report(report: dict, path: Path = OUTPUT) -> None:
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------- pytest entry
def test_cluster_cooperative_invariant(once):
    report = once(run_cluster)
    write_report(report)
    assert report["deterministic"], "same seed must give byte-identical reports"
    assert report["completed"], "the epoch must finish (no hang)"
    assert report["reads_per_unique_sample"] <= MAX_READS_PER_UNIQUE_SAMPLE, (
        "backing-store reads exceeded 1.05x unique samples per epoch"
    )
    assert report["cluster_hit_rate"] >= MIN_CLUSTER_HIT_RATE


def main() -> int:
    report = run_cluster()
    write_report(report)
    print(
        "n=%d nodes, %d requests -> %d backing reads "
        "(%.3f per unique sample per epoch)"
        % (
            N_NODES,
            report["requests"],
            report["backing_reads"],
            report["reads_per_unique_sample"],
        )
    )
    print(
        "cluster hit rate %.1f%%, peer hit rate %.1f%%, sim %.3fs, "
        "deterministic=%s"
        % (
            report["cluster_hit_rate"] * 100,
            report["peer_hit_rate"] * 100,
            report["sim_seconds"],
            report["deterministic"],
        )
    )
    print(f"wrote {OUTPUT}")
    ok = accept(report)
    print(
        "acceptance (deterministic AND reads/sample <= %.2f AND hit rate >= %.2f): %s"
        % (MAX_READS_PER_UNIQUE_SAMPLE, MIN_CLUSTER_HIT_RATE, "PASS" if ok else "FAIL")
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
