"""``python -m repro`` — dispatch to the CLI."""

from .cli import main

raise SystemExit(main())
