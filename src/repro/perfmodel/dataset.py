"""Harvesting training data from control-plane telemetry.

The control plane already records everything a performance model needs:
:class:`~repro.core.control.monitor.MetricsHistory` holds the per-period
:class:`~repro.telemetry.snapshot.MetricsSnapshot` series (bytes fetched,
producers allocated, buffer capacity, sim time), and ``control.decision``
instants carry the full feature labels (batch size, backend kind,
lookahead — satellite work in this PR).  This module turns those records
into :class:`~repro.perfmodel.features.PerfSample` rows.

Harvest discipline: a snapshot interval only becomes a sample if the
tuning settings were *stable across the whole interval* (same producers
and buffer capacity at both endpoints).  Intervals spanning a settings
change mix two operating points and would teach the model a blend of
throughputs neither setting delivers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .features import PerfSample, WorkloadContext, sorted_samples


def samples_from_history(
    history,
    context: WorkloadContext,
    *,
    min_interval: float = 0.0,
    window: int = 1,
    seed: int = 0,
) -> List[PerfSample]:
    """Turn a :class:`MetricsHistory` into throughput samples.

    Each consecutive snapshot pair with unchanged settings yields the
    interval throughput ``Δbytes_fetched / Δtime``.  ``window`` > 1
    additionally requires that many *consecutive* stable intervals before
    emitting (and rates over the widened interval) — this filters out the
    settle transient right after a settings change, when the buffer is
    still refilling and throughput under-reads the steady state.

    ``history`` is duck-typed: anything with ``.snapshots()`` returning a
    chronological snapshot list works (so live and sim histories, or a
    replayed snapshot script, all harvest identically).
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    snaps = list(history.snapshots())
    out: List[PerfSample] = []
    stable_run = 0
    for i in range(1, len(snaps)):
        prev, cur = snaps[i - 1], snaps[i]
        settings_stable = (
            cur.producers_allocated == prev.producers_allocated
            and cur.buffer_capacity == prev.buffer_capacity
            and cur.producers_allocated >= 1
            and cur.buffer_capacity >= 1
        )
        if not settings_stable:
            stable_run = 0
            continue
        stable_run += 1
        if stable_run < window:
            continue
        base = snaps[i - window]
        dt = cur.time - base.time
        dbytes = cur.bytes_fetched - base.bytes_fetched
        if dt <= min_interval or dt <= 0 or dbytes <= 0:
            continue
        out.append(
            PerfSample(
                threads=cur.producers_allocated,
                prefetch_depth=cur.buffer_capacity,
                batch_size=context.batch_size,
                backend_kind=context.backend_kind,
                lookahead_epochs=context.lookahead_epochs,
                throughput=dbytes / dt,
                source="telemetry",
                seed=seed,
            )
        )
    return out


def context_from_decision_args(args: Dict[str, object]) -> Optional[WorkloadContext]:
    """Recover a :class:`WorkloadContext` from a ``control.decision``
    instant's args (as exported to metrics JSONL).

    Returns ``None`` when the instant predates feature labelling (older
    telemetry without ``backend_kind``) — callers skip those rather than
    guessing.
    """
    kind = args.get("backend_kind")
    if not isinstance(kind, str) or not kind:
        return None
    batch = args.get("batch_size", 1)
    lookahead = args.get("lookahead_epochs", 0)
    try:
        return WorkloadContext(
            backend_kind=kind,
            batch_size=int(batch),  # type: ignore[arg-type]
            lookahead_epochs=int(lookahead),  # type: ignore[arg-type]
        )
    except (TypeError, ValueError):
        return None


def merge_samples(*sample_sets: Iterable[PerfSample]) -> List[PerfSample]:
    """Union sample sets (sweep + harvested telemetry), deduplicated.

    Exact-duplicate rows (same settings, context, source, seed, and
    throughput) collapse to one — re-harvesting the same run twice must
    not double-weight its points — while genuinely repeated measurements
    (different seed or throughput) are all kept.
    """
    seen = set()
    merged: List[PerfSample] = []
    for sample_set in sample_sets:
        for sample in sample_set:
            key = (
                sample.threads,
                sample.prefetch_depth,
                sample.batch_size,
                sample.backend_kind,
                sample.lookahead_epochs,
                sample.source,
                sample.seed,
                sample.throughput,
            )
            if key in seen:
                continue
            seen.add(key)
            merged.append(sample)
    return sorted_samples(merged)


def settings_grid(samples: Sequence[PerfSample]) -> Dict[str, List[int]]:
    """The distinct (t, N) values present in a sample set, per axis —
    handy for choosing argmax grids that match the data."""
    return {
        "threads": sorted({s.threads for s in samples}),
        "depths": sorted({s.prefetch_depth for s in samples}),
    }


__all__ = [
    "context_from_decision_args",
    "merge_samples",
    "samples_from_history",
    "settings_grid",
]
