"""The offline performance model: ridge regression over the storage curve.

Fits ``ln(throughput)`` against the engineered basis of
:func:`~repro.perfmodel.features.feature_vector` with a closed-form ridge
solve — pure-Python Gaussian elimination over a handful of coefficients,
no numpy, byte-deterministic for a given sample list.  Fitting in log
space makes errors multiplicative (a 2× miss on a slow config costs as
much as a 2× miss on a fast one) and keeps every prediction positive.

What the control plane consumes:

* :meth:`ThroughputModel.predict` — throughput for one (t, N, context);
* :meth:`ThroughputModel.argmax_settings` — the predicted-optimal (t, N)
  over a feasible grid, preferring the *leanest* settings within
  ``resource_slack`` of the peak (the paper's resource/performance
  balance: never spend a thread that buys <2%);
* :meth:`ThroughputModel.in_envelope` — whether a query context lies
  inside the training envelope; outside it the
  :class:`~repro.core.control.policy.PredictivePolicy` must degrade to
  the reactive feedback loop rather than trust an extrapolation.

Serialization is versioned JSON (:data:`~repro.perfmodel.features.
SCHEMA_VERSION`): fit → save → load → predict round-trips exactly, and a
mismatched schema version raises :class:`ModelSchemaError` instead of
silently reinterpreting weights.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .features import (
    SCHEMA_VERSION,
    PerfSample,
    WorkloadContext,
    feature_dim,
    feature_vector,
    sorted_samples,
)


class ModelSchemaError(ValueError):
    """A serialized model's schema version does not match this code."""


@dataclass(frozen=True)
class Envelope:
    """The region of feature space the training data actually covered.

    ``kind_ranges`` records, per backend kind, the knob rectangle
    ``(min_t, max_t, min_N, max_N)`` that kind's samples spanned — the
    grids may legitimately differ (a POSIX SSD swept to its t=4 knee, an
    object store to t=8), and :meth:`ThroughputModel.argmax_settings`
    must never extrapolate one kind's basis block beyond its own data.
    """

    kinds: Tuple[str, ...]
    min_threads: int
    max_threads: int
    min_depth: int
    max_depth: int
    min_batch: int
    max_batch: int
    min_lookahead: int
    max_lookahead: int
    kind_ranges: Dict[str, Tuple[int, int, int, int]]

    def contains(self, context: WorkloadContext) -> bool:
        """Is the *workload* context inside the training envelope?

        Only the workload-side features gate trust: the tuning knobs
        (t, N) are what the model exists to choose, and
        :meth:`ThroughputModel.argmax_settings` already clips its search
        grid to the trained knob range.
        """
        return (
            context.backend_kind in self.kinds
            and self.min_batch <= context.batch_size <= self.max_batch
            and self.min_lookahead <= context.lookahead_epochs <= self.max_lookahead
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "kinds": list(self.kinds),
            "min_threads": self.min_threads,
            "max_threads": self.max_threads,
            "min_depth": self.min_depth,
            "max_depth": self.max_depth,
            "min_batch": self.min_batch,
            "max_batch": self.max_batch,
            "min_lookahead": self.min_lookahead,
            "max_lookahead": self.max_lookahead,
            "kind_ranges": {
                kind: list(bounds) for kind, bounds in sorted(self.kind_ranges.items())
            },
        }

    @classmethod
    def from_dict(cls, row: Dict[str, object]) -> "Envelope":
        data = dict(row)
        data["kinds"] = tuple(data["kinds"])  # type: ignore[arg-type]
        data["kind_ranges"] = {
            kind: tuple(bounds)
            for kind, bounds in data["kind_ranges"].items()  # type: ignore[union-attr]
        }
        return cls(**data)  # type: ignore[arg-type]


def _solve(matrix: List[List[float]], rhs: List[float]) -> List[float]:
    """Gaussian elimination with partial pivoting (deterministic floats)."""
    n = len(rhs)
    a = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(a[r][col]))
        if abs(a[pivot][col]) < 1e-12:
            raise ValueError("singular normal equations; raise ridge_lambda")
        if pivot != col:
            a[col], a[pivot] = a[pivot], a[col]
        inv = 1.0 / a[col][col]
        for r in range(col + 1, n):
            factor = a[r][col] * inv
            if factor == 0.0:
                continue
            for c in range(col, n + 1):
                a[r][c] -= factor * a[col][c]
    out = [0.0] * n
    for r in range(n - 1, -1, -1):
        acc = a[r][n]
        for c in range(r + 1, n):
            acc -= a[r][c] * out[c]
        out[r] = acc / a[r][r]
    return out


class ThroughputModel:
    """Ridge fit of the (t, N, context) → throughput surface."""

    def __init__(self, ridge_lambda: float = 1e-3) -> None:
        if ridge_lambda <= 0:
            raise ValueError("ridge_lambda must be positive")
        self.ridge_lambda = ridge_lambda
        self.weights: Optional[List[float]] = None
        self.envelope: Optional[Envelope] = None
        self.n_samples = 0
        #: root-mean-square *relative* error of the fit on its own training
        #: set (0.1 = typical prediction within ~10%); the policy's
        #: confidence seam refuses models that fit their own data poorly
        self.fit_rmse_rel = 0.0

    @property
    def fitted(self) -> bool:
        return self.weights is not None

    # -- fitting -------------------------------------------------------------------
    def fit(self, samples: Sequence[PerfSample]) -> "ThroughputModel":
        """Closed-form ridge solve; samples are sorted first so the fit is
        independent of harvest order."""
        ordered = sorted_samples(samples)
        if len(ordered) < 4:
            raise ValueError(f"need >= 4 samples to fit, got {len(ordered)}")
        kinds = tuple(sorted({s.backend_kind for s in ordered}))
        dim = feature_dim(kinds)
        rows = [
            feature_vector(s.threads, s.prefetch_depth, s.context, kinds)
            for s in ordered
        ]
        targets = [math.log(s.throughput) for s in ordered]

        # Normal equations: (XᵀX + λI) w = Xᵀy.
        xtx = [[0.0] * dim for _ in range(dim)]
        xty = [0.0] * dim
        for row, y in zip(rows, targets):
            for i, xi in enumerate(row):
                if xi == 0.0:
                    continue
                xty[i] += xi * y
                xtx_i = xtx[i]
                for j, xj in enumerate(row):
                    if xj != 0.0:
                        xtx_i[j] += xi * xj
        for i in range(dim):
            xtx[i][i] += self.ridge_lambda
        self.weights = _solve(xtx, xty)

        kind_ranges: Dict[str, Tuple[int, int, int, int]] = {}
        for kind in kinds:
            of_kind = [s for s in ordered if s.backend_kind == kind]
            kind_ranges[kind] = (
                min(s.threads for s in of_kind),
                max(s.threads for s in of_kind),
                min(s.prefetch_depth for s in of_kind),
                max(s.prefetch_depth for s in of_kind),
            )
        self.envelope = Envelope(
            kinds=kinds,
            min_threads=min(s.threads for s in ordered),
            max_threads=max(s.threads for s in ordered),
            min_depth=min(s.prefetch_depth for s in ordered),
            max_depth=max(s.prefetch_depth for s in ordered),
            min_batch=min(s.batch_size for s in ordered),
            max_batch=max(s.batch_size for s in ordered),
            min_lookahead=min(s.lookahead_epochs for s in ordered),
            max_lookahead=max(s.lookahead_epochs for s in ordered),
            kind_ranges=kind_ranges,
        )
        self.n_samples = len(ordered)
        sq = 0.0
        for sample, row in zip(ordered, rows):
            pred = math.exp(sum(w * x for w, x in zip(self.weights, row)))
            rel = pred / sample.throughput - 1.0
            sq += rel * rel
        self.fit_rmse_rel = math.sqrt(sq / len(ordered))
        return self

    # -- queries -------------------------------------------------------------------
    def _require_fit(self) -> Tuple[List[float], Envelope]:
        if self.weights is None or self.envelope is None:
            raise ValueError("model is not fitted; call fit() or load()")
        return self.weights, self.envelope

    def predict(
        self, threads: int, prefetch_depth: int, context: WorkloadContext
    ) -> float:
        """Predicted throughput (bytes/s) for one settings/context query."""
        weights, envelope = self._require_fit()
        row = feature_vector(threads, prefetch_depth, context, envelope.kinds)
        return math.exp(sum(w * x for w, x in zip(weights, row)))

    def in_envelope(self, context: WorkloadContext) -> bool:
        _, envelope = self._require_fit()
        return envelope.contains(context)

    def argmax_settings(
        self,
        context: WorkloadContext,
        grid_threads: Optional[Sequence[int]] = None,
        grid_depths: Optional[Sequence[int]] = None,
        resource_slack: float = 0.02,
    ) -> Tuple[int, int, float]:
        """The predicted-optimal (t, N) over the feasible grid.

        Returns ``(threads, depth, predicted_throughput)``.  Among grid
        points within ``resource_slack`` of the predicted peak, the
        *leanest* one wins (smallest t, then smallest N): a thread that
        buys under 2% predicted throughput is a thread wasted — the same
        trade the reactive tuner's ``min_marginal_gain`` encodes.

        The default grids span the knob range *this kind's* training data
        covered, so the model is never asked to extrapolate the surface it
        jumps on — not even when another kind was swept wider.
        """
        weights, envelope = self._require_fit()
        if not envelope.contains(context):
            raise ValueError(
                f"context {context!r} outside the training envelope; the "
                "caller must fall back to reactive control instead"
            )
        if not 0.0 <= resource_slack < 1.0:
            raise ValueError("resource_slack must be in [0, 1)")
        min_t, max_t, min_d, max_d = envelope.kind_ranges[context.backend_kind]
        threads_grid = list(
            grid_threads if grid_threads is not None else range(min_t, max_t + 1)
        )
        if grid_depths is not None:
            depths_grid = list(grid_depths)
        else:
            depths_grid, depth = [], min_d
            while depth <= max_d:
                depths_grid.append(depth)
                depth *= 2
        if not threads_grid or not depths_grid:
            raise ValueError("argmax grids must be non-empty")

        scored: List[Tuple[int, int, float]] = []
        best = 0.0
        for t in sorted(threads_grid):
            for n in sorted(depths_grid):
                pred = self.predict(t, n, context)
                scored.append((t, n, pred))
                if pred > best:
                    best = pred
        floor = best * (1.0 - resource_slack)
        for t, n, pred in scored:  # ascending (t, N): first hit is leanest
            if pred >= floor:
                return (t, n, pred)
        raise AssertionError("unreachable: the peak itself clears the floor")

    # -- serialization ----------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        weights, envelope = self._require_fit()
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "ridge_throughput_model",
            "ridge_lambda": self.ridge_lambda,
            "weights": list(weights),
            "envelope": envelope.to_dict(),
            "n_samples": self.n_samples,
            "fit_rmse_rel": self.fit_rmse_rel,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "ThroughputModel":
        if doc.get("kind") != "ridge_throughput_model":
            raise ModelSchemaError(
                f"not a throughput model document (kind={doc.get('kind')!r})"
            )
        version = doc.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ModelSchemaError(
                f"model schema version {version!r} does not match supported "
                f"version {SCHEMA_VERSION}; re-fit the model from samples"
            )
        model = cls(ridge_lambda=float(doc["ridge_lambda"]))  # type: ignore[arg-type]
        model.weights = [float(w) for w in doc["weights"]]  # type: ignore[union-attr]
        model.envelope = Envelope.from_dict(doc["envelope"])  # type: ignore[arg-type]
        model.n_samples = int(doc["n_samples"])  # type: ignore[arg-type]
        model.fit_rmse_rel = float(doc["fit_rmse_rel"])  # type: ignore[arg-type]
        return model

    def save(self, path: str) -> None:
        """Versioned JSON dump; two saves of one fit are byte-identical."""
        with open(path, "w") as fh:
            fh.write(json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":")))
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "ThroughputModel":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


__all__ = ["Envelope", "ModelSchemaError", "ThroughputModel"]
