"""Feature engineering for the (t, N) → throughput performance surface.

The control plane's telemetry already labels every observation with the
full tuning context — producer threads *t*, prefetch-buffer depth *N*,
batch size, backend kind, and lookahead horizon (see the
``control.decision`` instants and the metrics JSONL export).  This module
fixes the *vocabulary*: one :class:`PerfSample` record per observation,
one :class:`WorkloadContext` describing the workload-side features, and
the engineered regression basis :func:`feature_vector` the ridge model
fits over.

The basis is chosen for the physics of the storage curve, not generality:
fetch throughput versus thread count is concave and saturating (paper
Fig. 3 — each extra thread buys less), so per-backend-kind terms in
``ln t``, ``(ln t)²`` and ``1/t`` capture the knee, and ``ln N`` /
``(ln N)²`` capture the buffer's starvation threshold.  Everything here is
dependency-free, pure-float, and deterministic — a fit on the same samples
is byte-identical on every platform the test suite runs on.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

#: Version stamp written into every serialized artifact (samples JSONL and
#: fitted models).  Loading a mismatched version fails loudly — silently
#: reinterpreting features across schema generations is how a learned
#: controller goes quietly wrong.
SCHEMA_VERSION = 1

#: Where a training sample came from: a seeded offline sweep trial, or
#: telemetry harvested from a control plane's monitoring history.
SAMPLE_SOURCES = ("sweep", "telemetry")


@dataclass(frozen=True)
class WorkloadContext:
    """The workload-side half of the feature vector.

    The tuning knobs (t, N) vary per observation; these describe what the
    observations were collected *under* and must match between training
    data and prediction queries for the model to be trustworthy — the
    envelope check in :meth:`~repro.perfmodel.model.ThroughputModel.
    in_envelope` enforces exactly that.
    """

    backend_kind: str
    batch_size: int
    lookahead_epochs: int = 0

    def __post_init__(self) -> None:
        if not self.backend_kind:
            raise ValueError("backend_kind must be a non-empty string")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.lookahead_epochs < 0:
            raise ValueError("lookahead_epochs must be >= 0")


@dataclass(frozen=True)
class PerfSample:
    """One observed point on the (t, N) → throughput surface."""

    threads: int
    prefetch_depth: int
    batch_size: int
    backend_kind: str
    lookahead_epochs: int
    #: delivered fetch throughput in bytes per (simulated or wall) second
    throughput: float
    source: str = "sweep"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ValueError("threads must be >= 1")
        if self.prefetch_depth < 1:
            raise ValueError("prefetch_depth must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.throughput <= 0:
            raise ValueError("throughput must be positive")
        if self.source not in SAMPLE_SOURCES:
            raise ValueError(
                f"unknown source {self.source!r}; expected one of {SAMPLE_SOURCES}"
            )

    @property
    def context(self) -> WorkloadContext:
        return WorkloadContext(
            backend_kind=self.backend_kind,
            batch_size=self.batch_size,
            lookahead_epochs=self.lookahead_epochs,
        )

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, row: Dict[str, object]) -> "PerfSample":
        return cls(**row)  # type: ignore[arg-type]


#: Deterministic ordering for sample collections: sorting before export
#: makes the JSONL byte-identical regardless of harvest order.
def sample_sort_key(sample: PerfSample) -> Tuple:
    return (
        sample.backend_kind,
        sample.batch_size,
        sample.lookahead_epochs,
        sample.threads,
        sample.prefetch_depth,
        sample.source,
        sample.seed,
        sample.throughput,
    )


def sorted_samples(samples: Iterable[PerfSample]) -> List[PerfSample]:
    return sorted(samples, key=sample_sort_key)


# -- the regression basis -------------------------------------------------------
#: per-backend-kind basis terms over the tuning knobs
_KIND_TERMS = 6
#: global workload terms appended after the per-kind blocks
_GLOBAL_TERMS = 2


def feature_dim(kinds: Sequence[str]) -> int:
    return _KIND_TERMS * len(kinds) + _GLOBAL_TERMS


def feature_vector(
    threads: int,
    prefetch_depth: int,
    context: WorkloadContext,
    kinds: Sequence[str],
) -> List[float]:
    """The engineered basis row for one (t, N, context) query.

    ``kinds`` is the model's fitted backend-kind alphabet (sorted at fit
    time); each kind owns a block of six terms — intercept, ``ln t``,
    ``(ln t)²``, ``1/t``, ``ln N``, ``(ln N)²`` — so the storage curves of
    a POSIX SSD and an object store are fitted independently while sharing
    the two global workload terms (``ln batch``, lookahead).  A query for
    a kind outside the alphabet raises: that is an envelope violation the
    policy must catch *before* asking for predictions.
    """
    if context.backend_kind not in kinds:
        raise ValueError(
            f"backend kind {context.backend_kind!r} outside the fitted "
            f"alphabet {list(kinds)}"
        )
    lt = math.log(float(threads))
    ln = math.log(float(prefetch_depth))
    row = [0.0] * feature_dim(kinds)
    base = kinds.index(context.backend_kind) * _KIND_TERMS
    row[base] = 1.0
    row[base + 1] = lt
    row[base + 2] = lt * lt
    row[base + 3] = 1.0 / float(threads)
    row[base + 4] = ln
    row[base + 5] = ln * ln
    row[-2] = math.log(float(context.batch_size))
    row[-1] = float(context.lookahead_epochs)
    return row


# -- JSONL import/export ---------------------------------------------------------
def write_samples_jsonl(samples: Iterable[PerfSample], path: str) -> int:
    """Write samples as deterministic JSONL (sorted rows, sorted keys).

    The file is the training-data interchange format: one header row with
    the schema version, then one row per sample.  Two writes of the same
    sample set are byte-identical.
    """
    ordered = sorted_samples(samples)
    with open(path, "w") as fh:
        fh.write(
            json.dumps(
                {"schema_version": SCHEMA_VERSION, "kind": "perf_samples"},
                sort_keys=True,
                separators=(",", ":"),
            )
        )
        fh.write("\n")
        for sample in ordered:
            fh.write(json.dumps(sample.to_dict(), sort_keys=True, separators=(",", ":")))
            fh.write("\n")
    return len(ordered)


def read_samples_jsonl(path: str) -> List[PerfSample]:
    """Load a samples JSONL written by :func:`write_samples_jsonl`.

    Raises :class:`ValueError` on a missing/mismatched schema header so a
    stale file from a different schema generation cannot silently train a
    model.
    """
    with open(path) as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty samples file")
    header = json.loads(lines[0])
    if header.get("kind") != "perf_samples":
        raise ValueError(f"{path}: not a perf-samples file (header {header!r})")
    version = header.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: samples schema version {version!r} does not match "
            f"supported version {SCHEMA_VERSION}; re-run the sweep/harvest"
        )
    return [PerfSample.from_dict(json.loads(line)) for line in lines[1:]]


__all__ = [
    "PerfSample",
    "SAMPLE_SOURCES",
    "SCHEMA_VERSION",
    "WorkloadContext",
    "feature_dim",
    "feature_vector",
    "read_samples_jsonl",
    "sample_sort_key",
    "sorted_samples",
    "write_samples_jsonl",
]
