"""The seeded offline sweep: measure the (t, N) → throughput surface.

Each trial is one short PRISMA-over-TF training run pinned at a static
(t, N) with :class:`~repro.core.StaticPolicy` — no tuner moving the knobs
mid-measurement — over a backend built purely from
:class:`~repro.storage.backend.BackendConfig`, so the same grid runs
against a POSIX block device and an S3-like object store by changing one
config field.  A fresh :class:`~repro.simcore.kernel.Simulator` and
seeded RNG per trial make the whole sweep byte-deterministic: same seed,
same grid → the same JSONL, bit for bit.

This is the *offline* half of the training-data pipeline; the online half
(:func:`~repro.perfmodel.dataset.samples_from_history`) harvests the same
rows from a running control plane's telemetry.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core import PrismaConfig, StaticPolicy, build_prisma
from ..core.integrations import PrismaTensorFlowPipeline
from ..dataset.catalog import DatasetCatalog
from ..dataset.shuffle import EpochShuffler
from ..dataset.synthetic import uniform_sizes
from ..frameworks.models import LENET, GpuEnsemble, ModelProfile
from ..frameworks.training import Trainer, TrainingConfig
from ..simcore.kernel import Simulator
from ..simcore.random import RandomStreams
from ..storage.backend import BackendConfig, build_backend
from ..storage.posix import PosixLayer
from .features import PerfSample

KiB = 1024

#: The default sweep grid.  Threads span the autotune policy's feasible
#: range; depths are octave-spaced because the buffer's effect on
#: starvation is logarithmic (doubling a big buffer matters far less than
#: doubling a small one).
DEFAULT_THREADS = (1, 2, 3, 4, 6, 8)
DEFAULT_DEPTHS = (64, 256, 1024)


def run_sweep_trial(
    backend_config: BackendConfig,
    threads: int,
    prefetch_depth: int,
    *,
    seed: int = 0,
    n_files: int = 192,
    file_size: int = 64 * KiB,
    batch_size: int = 32,
    epochs: int = 2,
    lookahead_epochs: int = 0,
    model: ModelProfile = LENET,
) -> PerfSample:
    """One static-(t, N) training run; returns its measured sample.

    Throughput is delivered backend read bytes over total simulated run
    time — the same quantity the telemetry harvest computes from
    ``Δbytes_fetched / Δt``, integrated over the whole run.
    """
    streams = RandomStreams(seed)
    sim = Simulator()
    backend = build_backend(sim, backend_config, streams=streams)
    catalog = DatasetCatalog("/data/sweep", uniform_sizes(n_files, n_files * file_size))
    catalog.materialize(backend)
    posix = PosixLayer(sim, backend)
    stage, _prefetcher, controller = build_prisma(
        sim,
        posix,
        PrismaConfig(
            policy=StaticPolicy(producers=threads, buffer_capacity=prefetch_depth),
            producers=threads,
            buffer_capacity=prefetch_depth,
            max_producers=max(threads, 8),
            lookahead_epochs=lookahead_epochs,
        ),
    )
    train_src = PrismaTensorFlowPipeline(
        sim, catalog, EpochShuffler(n_files, streams.spawn("shuffle")),
        batch_size, stage, model,
    )
    trainer = Trainer(
        sim, model, GpuEnsemble(sim), train_src,
        TrainingConfig(epochs=epochs, global_batch=batch_size, validate=False),
        setup=f"sweep/{backend_config.kind}/t{threads}/N{prefetch_depth}",
    )
    result = trainer.run_to_completion()
    controller.stop()
    if result.total_time <= 0:
        raise RuntimeError("sweep trial finished with zero simulated time")
    return PerfSample(
        threads=threads,
        prefetch_depth=prefetch_depth,
        batch_size=batch_size,
        backend_kind=backend_config.kind,
        lookahead_epochs=lookahead_epochs,
        throughput=float(backend.bytes_read()) / result.total_time,
        source="sweep",
        seed=seed,
    )


def run_offline_sweep(
    backend_configs: Sequence[BackendConfig],
    *,
    threads_grid: Sequence[int] = DEFAULT_THREADS,
    depths_grid: Sequence[int] = DEFAULT_DEPTHS,
    seed: int = 0,
    n_files: int = 192,
    file_size: int = 64 * KiB,
    batch_size: int = 32,
    epochs: int = 2,
    lookahead_epochs: int = 0,
    model: ModelProfile = LENET,
) -> List[PerfSample]:
    """The full grid over every backend config, in deterministic order."""
    samples: List[PerfSample] = []
    for backend_config in backend_configs:
        for t in sorted(threads_grid):
            for n in sorted(depths_grid):
                samples.append(
                    run_sweep_trial(
                        backend_config, t, n,
                        seed=seed, n_files=n_files, file_size=file_size,
                        batch_size=batch_size, epochs=epochs,
                        lookahead_epochs=lookahead_epochs, model=model,
                    )
                )
    return samples


def default_backend_configs() -> List[BackendConfig]:
    """The two deployments the acceptance gate compares: POSIX + object."""
    return [BackendConfig(kind="posix"), BackendConfig(kind="object")]


__all__ = [
    "DEFAULT_DEPTHS",
    "DEFAULT_THREADS",
    "default_backend_configs",
    "run_offline_sweep",
    "run_sweep_trial",
]
