"""``repro.perfmodel`` — the learned performance model behind predictive control.

ROADMAP item 1 made concrete: the control plane's telemetry already emits
``(t, N, batch size, backend kind, lookahead) → throughput`` observations;
this package turns them into a model the control plane can *query* —

* :mod:`~repro.perfmodel.features` — the sample schema
  (:class:`PerfSample`), the engineered regression basis, and the
  deterministic JSONL interchange format;
* :mod:`~repro.perfmodel.dataset` — harvesting samples from
  :class:`~repro.core.control.monitor.MetricsHistory` telemetry;
* :mod:`~repro.perfmodel.model` — the dependency-free ridge
  :class:`ThroughputModel` with ``fit``/``predict``/``argmax_settings``
  and versioned JSON serialization;
* :mod:`~repro.perfmodel.sweep` — the seeded offline sweep runner that
  measures the surface directly (lazy import: it pulls in the full
  experiment stack, which the model/policy layers must not depend on).

The consumer is :class:`~repro.core.control.policy.PredictivePolicy`,
which jumps to ``argmax_settings`` and refines locally instead of
hill-climbing from scratch.
"""

from .dataset import (
    context_from_decision_args,
    merge_samples,
    samples_from_history,
    settings_grid,
)
from .features import (
    SAMPLE_SOURCES,
    SCHEMA_VERSION,
    PerfSample,
    WorkloadContext,
    feature_dim,
    feature_vector,
    read_samples_jsonl,
    sample_sort_key,
    sorted_samples,
    write_samples_jsonl,
)
from .model import Envelope, ModelSchemaError, ThroughputModel

#: names served lazily from :mod:`~repro.perfmodel.sweep` (PEP 562) — the
#: sweep imports ``repro.core``/experiment machinery, which would create an
#: import cycle if loaded eagerly here (``repro.core.control.policy``
#: imports this package for the model types).
_SWEEP_EXPORTS = (
    "DEFAULT_DEPTHS",
    "DEFAULT_THREADS",
    "default_backend_configs",
    "run_offline_sweep",
    "run_sweep_trial",
)

__all__ = [
    "Envelope",
    "ModelSchemaError",
    "PerfSample",
    "SAMPLE_SOURCES",
    "SCHEMA_VERSION",
    "ThroughputModel",
    "WorkloadContext",
    "context_from_decision_args",
    "feature_dim",
    "feature_vector",
    "merge_samples",
    "read_samples_jsonl",
    "sample_sort_key",
    "samples_from_history",
    "settings_grid",
    "sorted_samples",
    "write_samples_jsonl",
    *_SWEEP_EXPORTS,
]


def __getattr__(name: str):
    if name in _SWEEP_EXPORTS:
        from . import sweep

        return getattr(sweep, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
