"""Dataset catalogs: the file-level view of a training dataset.

A :class:`DatasetCatalog` is an ordered collection of sample files with
sizes (backed by NumPy arrays — ImageNet has 1.28 M entries and per-object
Python records would dominate memory).  Catalogs know how to materialize
themselves into a simulated filesystem and expose the *filenames list*
abstraction PRISMA shares with the DL framework (paper §IV: "a filenames
list, populated by the DL framework at the beginning of the training phase,
is shared with PRISMA so it knows in advance which files will be
requested").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class SampleInfo:
    """One sample file (materialized view of a catalog row)."""

    index: int
    path: str
    size: int


class DatasetCatalog:
    """An ordered, immutable list of sample files.

    Paths are generated lazily from a prefix + index to avoid storing one
    Python string per sample; sizes live in a single int64 array.
    """

    def __init__(self, prefix: str, sizes: Sequence[int] | np.ndarray, name: str = "dataset") -> None:
        self.prefix = prefix
        self.name = name
        self._sizes = np.asarray(sizes, dtype=np.int64)
        if self._sizes.ndim != 1:
            raise ValueError("sizes must be one-dimensional")
        if len(self._sizes) == 0:
            raise ValueError("catalog must contain at least one sample")
        if (self._sizes < 0).any():
            raise ValueError("sizes must be non-negative")

    # -- core accessors -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sizes)

    def path(self, index: int) -> str:
        if not 0 <= index < len(self._sizes):
            raise IndexError(index)
        return f"{self.prefix}/{index:08d}"

    def size(self, index: int) -> int:
        return int(self._sizes[index])

    def __getitem__(self, index: int) -> SampleInfo:
        return SampleInfo(index, self.path(index), self.size(index))

    def __iter__(self) -> Iterator[SampleInfo]:
        for i in range(len(self)):
            yield self[i]

    @property
    def sizes(self) -> np.ndarray:
        """All sizes (read-only view)."""
        view = self._sizes.view()
        view.flags.writeable = False
        return view

    def total_bytes(self) -> int:
        return int(self._sizes.sum())

    def mean_size(self) -> float:
        return float(self._sizes.mean())

    def filenames(self) -> List[str]:
        """The full filenames list (PRISMA's shared prefetch order input)."""
        return [self.path(i) for i in range(len(self))]

    # -- materialization -----------------------------------------------------------
    def materialize(self, fs) -> None:
        """Register every file of this catalog in a (simulated) filesystem.

        ``fs`` is duck-typed: anything exposing ``create(path, size)`` works
        (local :class:`~repro.storage.Filesystem` or the distributed PFS).
        """
        for i in range(len(self._sizes)):
            fs.create(self.path(i), int(self._sizes[i]))

    # -- derivation -------------------------------------------------------------
    def subset(self, count: int, name: Optional[str] = None) -> "DatasetCatalog":
        """The first ``count`` samples as a new catalog (same prefix)."""
        if not 1 <= count <= len(self):
            raise ValueError(f"count must be in [1, {len(self)}], got {count}")
        return DatasetCatalog(self.prefix, self._sizes[:count].copy(), name or f"{self.name}[:{count}]")

    def __repr__(self) -> str:
        return (
            f"<DatasetCatalog {self.name!r} n={len(self)} "
            f"total={self.total_bytes() / 2**30:.2f} GiB>"
        )


@dataclass(frozen=True)
class TrainValSplit:
    """A dataset with distinct training and validation catalogs."""

    train: DatasetCatalog
    validation: DatasetCatalog

    def materialize(self, fs) -> None:
        self.train.materialize(fs)
        self.validation.materialize(fs)

    def total_bytes(self) -> int:
        return self.train.total_bytes() + self.validation.total_bytes()
