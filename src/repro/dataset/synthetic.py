"""Synthetic dataset generators.

The paper trains on ImageNet ILSVRC-2012: 1,281,167 training images
(≈138 GiB) and 50,000 validation images (≈6 GiB).  We generate catalogs with
the same file count and total size; per-file sizes follow a clipped
log-normal (JPEG size distributions are right-skewed).  Only the file-size
distribution and access order touch the I/O path, so this is a faithful
substitute for the real archive.

``scale`` divides the *file counts* while keeping per-file sizes, producing
self-similar smaller workloads: every throughput-governed duration shrinks
by ``scale``, so simulated times multiply back by ``scale`` to compare with
the paper (see :mod:`repro.experiments.config`).
"""

from __future__ import annotations

import numpy as np

from ..simcore.random import RandomStreams
from .catalog import DatasetCatalog, TrainValSplit

#: ILSVRC-2012 constants (paper §V "Dataset, models, and DL frameworks").
IMAGENET_TRAIN_FILES = 1_281_167
IMAGENET_TRAIN_BYTES = 138 * 2**30
IMAGENET_VAL_FILES = 50_000
IMAGENET_VAL_BYTES = 6 * 2**30

#: Log-normal shape for JPEG file sizes (dimensionless sigma of log-size).
_SIZE_SIGMA = 0.45
#: Clip sizes to [mean/8, mean*8] to avoid pathological tails.
_CLIP_FACTOR = 8.0


def lognormal_sizes(
    rng: np.random.Generator,
    count: int,
    total_bytes: int,
    sigma: float = _SIZE_SIGMA,
) -> np.ndarray:
    """``count`` right-skewed sizes summing (exactly) to ``total_bytes``."""
    if count < 1:
        raise ValueError("count must be >= 1")
    if total_bytes < count:
        raise ValueError("total_bytes must allow >= 1 byte per file")
    mean = total_bytes / count
    raw = rng.lognormal(mean=0.0, sigma=sigma, size=count)
    raw = np.clip(raw * mean, mean / _CLIP_FACTOR, mean * _CLIP_FACTOR)
    # Rescale to hit the requested total exactly.  Integer rounding and the
    # 1-byte floor leave a residual; positive residual lands in the last
    # file, negative residual is shaved off the largest files (never below
    # 1 byte — solvable because total_bytes >= count).
    sizes = np.floor(raw * (total_bytes / raw.sum())).astype(np.int64)
    sizes = np.maximum(sizes, 1)
    residual = total_bytes - int(sizes.sum())
    if residual > 0:
        sizes[-1] += residual
    elif residual < 0:
        for idx in np.argsort(sizes)[::-1]:
            take = min(int(sizes[idx]) - 1, -residual)
            sizes[idx] -= take
            residual += take
            if residual == 0:
                break
    assert int(sizes.sum()) == total_bytes
    return sizes


def uniform_sizes(count: int, total_bytes: int) -> np.ndarray:
    """All files the same size (± rounding); for analytic cross-checks."""
    if count < 1:
        raise ValueError("count must be >= 1")
    base = total_bytes // count
    sizes = np.full(count, base, dtype=np.int64)
    sizes[-1] += total_bytes - base * count
    return sizes


def imagenet_like(
    streams: RandomStreams,
    scale: int = 1,
    size_distribution: str = "lognormal",
) -> TrainValSplit:
    """An ImageNet-shaped train/validation split, optionally scaled down.

    ``scale=1`` is the full 1.28 M-file dataset; ``scale=100`` keeps 1/100 of
    the files (and of the bytes) with identical per-file statistics.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    n_train = max(IMAGENET_TRAIN_FILES // scale, 1)
    n_val = max(IMAGENET_VAL_FILES // scale, 1)
    train_bytes = max(IMAGENET_TRAIN_BYTES // scale, n_train)
    val_bytes = max(IMAGENET_VAL_BYTES // scale, n_val)

    if size_distribution == "lognormal":
        train_sizes = lognormal_sizes(streams.fresh("dataset.train"), n_train, train_bytes)
        val_sizes = lognormal_sizes(streams.fresh("dataset.val"), n_val, val_bytes)
    elif size_distribution == "uniform":
        train_sizes = uniform_sizes(n_train, train_bytes)
        val_sizes = uniform_sizes(n_val, val_bytes)
    else:
        raise ValueError(f"unknown size_distribution {size_distribution!r}")

    return TrainValSplit(
        train=DatasetCatalog("/data/imagenet/train", train_sizes, name=f"imagenet-train/{scale}"),
        validation=DatasetCatalog("/data/imagenet/val", val_sizes, name=f"imagenet-val/{scale}"),
    )


def tiny_dataset(streams: RandomStreams, n_train: int = 64, n_val: int = 16, mean_size: int = 64 * 1024) -> TrainValSplit:
    """A CI-sized dataset for unit/integration tests."""
    train_sizes = lognormal_sizes(streams.fresh("dataset.tiny.train"), n_train, n_train * mean_size)
    val_sizes = lognormal_sizes(streams.fresh("dataset.tiny.val"), n_val, n_val * mean_size)
    return TrainValSplit(
        train=DatasetCatalog("/data/tiny/train", train_sizes, name="tiny-train"),
        validation=DatasetCatalog("/data/tiny/val", val_sizes, name="tiny-val"),
    )
