"""Storage formats: file-per-sample vs. record-sharded layouts.

TensorFlow deployments often pack samples into TFRecord shards (paper §II
cites "optimized data formats" as one of the framework-intrinsic
optimizations).  Sharding changes the I/O request profile — fewer, larger,
more sequential reads — which the format-ablation benchmark explores.

:func:`shard_catalog` converts a file-per-sample catalog into a sharded one
plus an index mapping each sample to ``(shard, offset, length)``, so
pipelines can read either layout through the same filesystem API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .catalog import DatasetCatalog


@dataclass(frozen=True)
class ShardEntry:
    """Location of one sample inside a shard file."""

    shard_index: int
    offset: int
    length: int


@dataclass(frozen=True)
class ShardedDataset:
    """A record-sharded layout of an underlying sample catalog."""

    shards: DatasetCatalog
    index: List[ShardEntry]
    samples_per_shard: int

    def locate(self, sample_index: int) -> ShardEntry:
        return self.index[sample_index]

    def shard_path(self, sample_index: int) -> str:
        return self.shards.path(self.index[sample_index].shard_index)

    def __len__(self) -> int:
        return len(self.index)


#: Per-record framing overhead of a TFRecord (length + 2×CRC32 + header).
RECORD_OVERHEAD_BYTES = 16


def shard_catalog(
    catalog: DatasetCatalog,
    samples_per_shard: int = 1024,
    prefix: str | None = None,
) -> ShardedDataset:
    """Pack ``catalog``'s samples into fixed-count shards (TFRecord-like).

    Samples are packed in catalog order; each record adds
    :data:`RECORD_OVERHEAD_BYTES` of framing, matching TFRecord's layout.
    """
    if samples_per_shard < 1:
        raise ValueError("samples_per_shard must be >= 1")
    prefix = prefix or f"{catalog.prefix}-shards"
    sizes = catalog.sizes
    n = len(sizes)
    n_shards = (n + samples_per_shard - 1) // samples_per_shard

    shard_sizes = np.zeros(n_shards, dtype=np.int64)
    index: List[ShardEntry] = []
    for shard in range(n_shards):
        lo = shard * samples_per_shard
        hi = min(lo + samples_per_shard, n)
        offset = 0
        for i in range(lo, hi):
            length = int(sizes[i]) + RECORD_OVERHEAD_BYTES
            index.append(ShardEntry(shard, offset, length))
            offset += length
        shard_sizes[shard] = offset

    shards = DatasetCatalog(prefix, shard_sizes, name=f"{catalog.name}-sharded")
    return ShardedDataset(shards=shards, index=index, samples_per_shard=samples_per_shard)


def sequentiality(requests: List[Tuple[str, int]]) -> float:
    """Fraction of consecutive requests that hit the same file.

    A crude locality metric for comparing layouts: file-per-sample random
    access scores ~0; sharded in-order access scores ~1.
    """
    if len(requests) < 2:
        return 1.0
    same = sum(1 for a, b in zip(requests, requests[1:]) if a[0] == b[0])
    return same / (len(requests) - 1)
