"""Per-epoch shuffling shared between the DL framework and PRISMA.

The paper requires random sample order per epoch for model accuracy (§II),
and PRISMA requires knowing that order *in advance* (§IV: the framework's
shuffled filenames list is shared with the data plane, "performed
identically to the original shuffle mechanism of the DL framework").

:class:`EpochShuffler` provides exactly that contract: given a dataset size
and a seed, ``order(epoch)`` is a deterministic permutation — the framework
consumes it to issue reads, and PRISMA consumes the *same* permutation to
enqueue prefetches, without any coordination at run time.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from ..simcore.random import RandomStreams
from .catalog import DatasetCatalog


class EpochShuffler:
    """Deterministic per-epoch permutations of ``[0, n)``.

    Permutations for distinct epochs are independent streams derived from a
    single root seed, so epoch k's order never depends on whether epoch j
    was generated first.
    """

    def __init__(self, n: int, streams: RandomStreams, name: str = "shuffle") -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self.name = name
        self._streams = streams

    def order(self, epoch: int) -> np.ndarray:
        """The sample-index permutation for ``epoch`` (int64 array)."""
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        rng = self._streams.fresh(f"{self.name}.epoch{epoch}")
        return rng.permutation(self.n).astype(np.int64)

    def iter_epochs(self, epochs: int) -> Iterator[np.ndarray]:
        for e in range(epochs):
            yield self.order(e)


class SequentialOrder:
    """No shuffling — in-order access; for ablations and analytic checks."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n

    def order(self, epoch: int) -> np.ndarray:
        return np.arange(self.n, dtype=np.int64)

    def iter_epochs(self, epochs: int) -> Iterator[np.ndarray]:
        for e in range(epochs):
            yield self.order(e)


def shuffled_filenames(catalog: DatasetCatalog, shuffler: EpochShuffler, epoch: int) -> List[str]:
    """The shuffled filenames list for one epoch (PRISMA's §IV input file)."""
    return [catalog.path(int(i)) for i in shuffler.order(epoch)]


def batches_from_order(order: Sequence[int] | np.ndarray, batch_size: int, drop_remainder: bool = False) -> List[np.ndarray]:
    """Split a sample order into consecutive batches.

    Mirrors both frameworks' batching of the shuffled stream; with
    ``drop_remainder`` the trailing partial batch is discarded (tf.data's
    ``drop_remainder=True``).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    arr = np.asarray(order, dtype=np.int64)
    full = len(arr) // batch_size
    batches = [arr[i * batch_size : (i + 1) * batch_size] for i in range(full)]
    tail = arr[full * batch_size :]
    if len(tail) and not drop_remainder:
        batches.append(tail)
    return batches
