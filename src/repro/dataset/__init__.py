"""``repro.dataset`` — dataset substrate.

Catalogs of sample files (:mod:`.catalog`), ImageNet-shaped synthetic
generators with scaling presets (:mod:`.synthetic`), the shared per-epoch
shuffle contract between frameworks and PRISMA (:mod:`.shuffle`), and
record-sharded layouts (:mod:`.formats`).
"""

from .catalog import DatasetCatalog, SampleInfo, TrainValSplit
from .formats import (
    RECORD_OVERHEAD_BYTES,
    ShardedDataset,
    ShardEntry,
    sequentiality,
    shard_catalog,
)
from .shuffle import EpochShuffler, SequentialOrder, batches_from_order, shuffled_filenames
from .synthetic import (
    IMAGENET_TRAIN_BYTES,
    IMAGENET_TRAIN_FILES,
    IMAGENET_VAL_BYTES,
    IMAGENET_VAL_FILES,
    imagenet_like,
    lognormal_sizes,
    tiny_dataset,
    uniform_sizes,
)

__all__ = [
    "DatasetCatalog",
    "EpochShuffler",
    "IMAGENET_TRAIN_BYTES",
    "IMAGENET_TRAIN_FILES",
    "IMAGENET_VAL_BYTES",
    "IMAGENET_VAL_FILES",
    "RECORD_OVERHEAD_BYTES",
    "SampleInfo",
    "SequentialOrder",
    "ShardEntry",
    "ShardedDataset",
    "TrainValSplit",
    "batches_from_order",
    "imagenet_like",
    "lognormal_sizes",
    "sequentiality",
    "shard_catalog",
    "shuffled_filenames",
    "tiny_dataset",
    "uniform_sizes",
]
