"""Framework-agnostic training-loop driver.

The :class:`Trainer` reproduces the paper's methodology (§V): a fixed number
of epochs, each consisting of a training phase over the full training set
followed by a validation phase, on a synchronous multi-GPU engine.  Batches
come from a :class:`DataSource` — the abstraction both framework simulators
(and their PRISMA-backed variants) implement — so every experimental setup
runs under the *identical* outer loop and differences are attributable to
the data path alone.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..simcore.event import Event
from .models import GpuEnsemble, ModelProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator


class DataSource(abc.ABC):
    """A stream of batches for one phase of training.

    Contract: ``begin_epoch`` arms the source for a new pass;
    ``next_batch()`` yields an event whose value is the number of samples in
    the batch, or ``None`` when the epoch is exhausted; ``end_epoch`` lets
    the source tear down per-epoch machinery.
    """

    @abc.abstractmethod
    def begin_epoch(self, epoch: int) -> None:
        """Prepare to serve one full pass of the dataset."""

    @abc.abstractmethod
    def next_batch(self) -> Event:
        """Event valued with the batch's sample count, or None at end."""

    def end_epoch(self) -> None:  # noqa: B027 - optional hook
        """Per-epoch cleanup (optional)."""


@dataclass(frozen=True)
class TrainingConfig:
    """Methodology parameters (paper §V defaults)."""

    epochs: int = 10
    global_batch: int = 256
    validate: bool = True

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.global_batch < 1:
            raise ValueError("global_batch must be >= 1")


@dataclass
class EpochStats:
    """Timing breakdown of one epoch."""

    epoch: int
    train_time: float
    validation_time: float
    train_batches: int
    validation_batches: int

    @property
    def total(self) -> float:
        return self.train_time + self.validation_time


@dataclass
class TrainingResult:
    """Outcome of a full training run."""

    model: str
    setup: str
    config: TrainingConfig
    epoch_stats: List[EpochStats] = field(default_factory=list)
    total_time: float = 0.0
    gpu_utilization: float = 0.0
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def epoch_times(self) -> List[float]:
        return [e.total for e in self.epoch_stats]

    def mean_epoch_time(self) -> float:
        if not self.epoch_stats:
            return 0.0
        return self.total_time / len(self.epoch_stats)

    def summary(self) -> str:
        return (
            f"{self.model}/{self.setup}: total={self.total_time:.1f}s "
            f"({self.mean_epoch_time():.1f}s/epoch, "
            f"gpu_util={self.gpu_utilization:.0%})"
        )


class Trainer:
    """Runs the paper's training methodology over any :class:`DataSource`."""

    def __init__(
        self,
        sim: "Simulator",
        model: ModelProfile,
        gpus: GpuEnsemble,
        train_source: DataSource,
        config: TrainingConfig,
        validation_source: Optional[DataSource] = None,
        setup: str = "unnamed",
        checkpointer=None,
    ) -> None:
        self.sim = sim
        self.model = model
        self.gpus = gpus
        self.train_source = train_source
        self.validation_source = validation_source
        self.config = config
        self.setup = setup
        #: optional :class:`~.checkpoint.CheckpointWriter` hooked per step
        self.checkpointer = checkpointer
        if config.validate and validation_source is None:
            raise ValueError("validate=True requires a validation_source")

    # -- phases ---------------------------------------------------------------
    def _run_phase(self, source: DataSource, epoch: int, training: bool):
        """Generator: one full pass; returns (duration, batch_count)."""
        start = self.sim.now
        source.begin_epoch(epoch)
        batches = 0
        while True:
            batch = yield source.next_batch()
            if batch is None:
                break
            batches += 1
            if training:
                yield self.gpus.train_step(self.model, batch)
                if self.checkpointer is not None:
                    blocking = self.checkpointer.on_step()
                    if blocking is not None:
                        # Synchronous checkpoint: the optimizer state must
                        # be quiescent, so finish queued compute first.
                        yield self.gpus.drain()
                        yield blocking
            else:
                yield self.gpus.validation_step(self.model, batch)
        yield self.gpus.drain()
        if training and self.checkpointer is not None:
            yield self.checkpointer.drain()
        source.end_epoch()
        return self.sim.now - start, batches

    def _run(self, result: TrainingResult):
        start = self.sim.now
        for epoch in range(self.config.epochs):
            train_time, train_batches = yield self.sim.process(
                self._run_phase(self.train_source, epoch, training=True),
                name=f"train.e{epoch}",
            )
            val_time, val_batches = 0.0, 0
            if self.config.validate:
                assert self.validation_source is not None
                val_time, val_batches = yield self.sim.process(
                    self._run_phase(self.validation_source, epoch, training=False),
                    name=f"val.e{epoch}",
                )
            result.epoch_stats.append(
                EpochStats(epoch, train_time, val_time, train_batches, val_batches)
            )
        result.total_time = self.sim.now - start
        result.gpu_utilization = self.gpus.utilization()
        return result

    # -- entry point ------------------------------------------------------------
    def start(self) -> Event:
        """Launch the training process; the event's value is the result."""
        result = TrainingResult(self.model.name, self.setup, self.config)
        return self.sim.process(self._run(result), name=f"trainer.{self.setup}")

    def run_to_completion(self) -> TrainingResult:
        """Convenience: start and drive the simulator until training ends."""
        done = self.start()
        self.sim.run(until=done)
        return done.value
