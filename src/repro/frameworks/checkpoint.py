"""Model checkpointing: the training loop's write-side storage traffic.

DL jobs periodically persist model + optimizer state.  Checkpoints matter
to the storage layer for two reasons: synchronous ones stall training for
the write, and *any* checkpoint competes with the data path for device
bandwidth — reads slow down exactly while the checkpoint streams out
(another instance of the paper's partial-visibility problem: the framework
schedules the write with no view of the read path it degrades).

:class:`CheckpointWriter` attaches to the :class:`~.training.Trainer`; both
synchronous (blocking) and asynchronous (overlapped snapshot upload)
disciplines are modelled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from ..simcore.event import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator
    from ..storage.filesystem import Filesystem

#: Checkpoint payload per model: FP32 params + Adam moments (~3x params).
CHECKPOINT_BYTES = {
    "lenet": 0.75e6,
    "alexnet": 732e6,
    "resnet50": 306e6,
}


@dataclass(frozen=True)
class CheckpointConfig:
    """Checkpointing policy.

    ``every_steps=0`` disables checkpointing; ``synchronous`` selects
    blocking writes (training waits) vs snapshot-and-continue.
    """

    every_steps: int = 0
    nbytes: float = 0.0
    synchronous: bool = True

    def __post_init__(self) -> None:
        if self.every_steps < 0:
            raise ValueError("every_steps must be >= 0")
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")

    @classmethod
    def for_model(cls, model_name: str, every_steps: int, synchronous: bool = True) -> "CheckpointConfig":
        return cls(
            every_steps=every_steps,
            nbytes=CHECKPOINT_BYTES.get(model_name, 100e6),
            synchronous=synchronous,
        )

    @property
    def enabled(self) -> bool:
        return self.every_steps > 0 and self.nbytes > 0


class CheckpointWriter:
    """Issues checkpoint writes to a filesystem on a step cadence."""

    def __init__(
        self,
        sim: "Simulator",
        fs: "Filesystem",
        config: CheckpointConfig,
        prefix: str = "/ckpt",
    ) -> None:
        self.sim = sim
        self.fs = fs
        self.config = config
        self.prefix = prefix
        self.checkpoints_written = 0
        self.sync_stall_time = 0.0
        self._async_pending: List[Event] = []
        self._global_step = 0

    def on_step(self) -> Optional[Event]:
        """Called once per optimizer step; returns a blocking event or None.

        Synchronous mode returns the write event (the trainer must wait);
        asynchronous mode launches the write and returns None — the trainer
        continues, and :meth:`drain` at end of training joins stragglers.
        """
        self._global_step += 1
        if not self.config.enabled or self._global_step % self.config.every_steps != 0:
            return None
        path = f"{self.prefix}/step{self._global_step:010d}.pt"
        self.fs.create(path, 0)
        started = self.sim.now
        write = self.fs.write(path, int(self.config.nbytes))
        self.checkpoints_written += 1
        if self.config.synchronous:
            write.add_callback(
                lambda ev: self._account_stall(started) if ev.ok else None
            )
            return write
        self._async_pending.append(write)
        return None

    def _account_stall(self, started: float) -> None:
        self.sync_stall_time += self.sim.now - started

    def drain(self) -> Event:
        """Event completing once all in-flight async checkpoints land."""
        pending = [ev for ev in self._async_pending if not ev.processed]
        self._async_pending = []
        return self.sim.all_of(pending)
