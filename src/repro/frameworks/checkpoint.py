"""Model checkpointing: the training loop's write-side storage traffic.

DL jobs periodically persist model + optimizer state.  Checkpoints matter
to the storage layer for two reasons: synchronous ones stall training for
the write, and *any* checkpoint competes with the data path for device
bandwidth — reads slow down exactly while the checkpoint streams out
(another instance of the paper's partial-visibility problem: the framework
schedules the write with no view of the read path it degrades).

:class:`CheckpointWriter` attaches to the :class:`~.training.Trainer` and
writes through any :class:`~repro.storage.backend.StorageBackend` — local
filesystem, distributed PFS, or object store.  Both synchronous (blocking)
and asynchronous (overlapped snapshot upload) disciplines are modelled.
Every write emits a ``ckpt.write`` telemetry span and its ``[start, end)``
burst window is recorded in :attr:`CheckpointWriter.write_windows`, which
is how the write-path experiments measure read-throughput interference
during checkpoint bursts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..simcore.event import Event
from ..storage.backend import validate_byte_count

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator
    from ..storage.backend import StorageBackend

#: Checkpoint payload per model: FP32 params + Adam moments (~3x params).
#: Whole bytes — checkpoint accounting follows the discrete-byte
#: convention (fractional byte counts cannot enter the write path).
CHECKPOINT_BYTES = {
    "lenet": 750_000,
    "alexnet": 732_000_000,
    "resnet50": 306_000_000,
}


@dataclass(frozen=True)
class CheckpointConfig:
    """Checkpointing policy.

    ``every_steps=0`` disables checkpointing; ``synchronous`` selects
    blocking writes (training waits) vs snapshot-and-continue.  ``nbytes``
    is normalized to a whole byte count (integral floats like ``500e6``
    are accepted and coerced; fractional values are rejected).
    """

    every_steps: int = 0
    nbytes: int = 0
    synchronous: bool = True

    def __post_init__(self) -> None:
        if self.every_steps < 0:
            raise ValueError("every_steps must be >= 0")
        object.__setattr__(
            self, "nbytes", validate_byte_count(self.nbytes, "nbytes", allow_zero=True)
        )

    @classmethod
    def for_model(cls, model_name: str, every_steps: int, synchronous: bool = True) -> "CheckpointConfig":
        return cls(
            every_steps=every_steps,
            nbytes=CHECKPOINT_BYTES.get(model_name, 100_000_000),
            synchronous=synchronous,
        )

    @property
    def enabled(self) -> bool:
        return self.every_steps > 0 and self.nbytes > 0


class CheckpointWriter:
    """Issues checkpoint writes to a storage backend on a step cadence."""

    def __init__(
        self,
        sim: "Simulator",
        backend: "StorageBackend",
        config: CheckpointConfig,
        prefix: str = "/ckpt",
    ) -> None:
        self.sim = sim
        self.backend = backend
        self.config = config
        self.prefix = prefix
        self.checkpoints_written = 0
        self.bytes_written = 0
        self.sync_stall_time = 0.0
        #: completed write bursts as ``(start, end)`` simulated times —
        #: the interference-measurement windows of the writes experiment
        self.write_windows: List[Tuple[float, float]] = []
        self._async_pending: List[Event] = []
        self._global_step = 0

    @property
    def fs(self) -> "StorageBackend":
        """Backward-compatible alias (the pre-protocol attribute name)."""
        return self.backend

    def on_step(self) -> Optional[Event]:
        """Called once per optimizer step; returns a blocking event or None.

        Synchronous mode returns the write event (the trainer must wait);
        asynchronous mode launches the write and returns None — the trainer
        continues, and :meth:`drain` at end of training joins stragglers.
        """
        self._global_step += 1
        if not self.config.enabled or self._global_step % self.config.every_steps != 0:
            return None
        path = f"{self.prefix}/step{self._global_step:010d}.pt"
        self.backend.create(path, 0)
        started = self.sim.now
        nbytes = self.config.nbytes
        tel = self.sim.telemetry
        span = None
        if tel is not None:
            span = tel.begin(
                "ckpt.write", "train.ckpt", "storage", lane=True,
                step=self._global_step, bytes=nbytes,
                mode="sync" if self.config.synchronous else "async",
            )
        write = self.backend.write(path, nbytes)
        self.checkpoints_written += 1

        def landed(ev: Event) -> None:
            if span is not None:
                tel.end(span, ok=ev.ok)
            if ev.ok:
                self.bytes_written += nbytes
                self.write_windows.append((started, self.sim.now))
                if self.config.synchronous:
                    self._account_stall(started)

        write.add_callback(landed)
        if self.config.synchronous:
            return write
        self._async_pending.append(write)
        return None

    def _account_stall(self, started: float) -> None:
        self.sync_stall_time += self.sim.now - started

    def drain(self) -> Event:
        """Event completing once all in-flight async checkpoints land."""
        pending = [ev for ev in self._async_pending if not ev.processed]
        self._async_pending = []
        return self.sim.all_of(pending)

    def time_in_windows(self, lo: float, hi: float) -> float:
        """Total simulated time within ``[lo, hi)`` covered by write bursts.

        Overlapping async bursts are merged first, so the result is wall
        coverage (usable as a throughput denominator), not a sum of
        per-write durations.
        """
        covered = 0.0
        last_end = lo
        for start, end in sorted(self.write_windows):
            start, end = max(start, last_end), min(end, hi)
            if end > start:
                covered += end - start
                last_end = end
        return covered
