"""torch.utils.data.DataLoader simulator.

Reproduces the PyTorch setups of the paper's evaluation (§V-B):

* ``num_workers=0`` — the main process loads each batch synchronously
  (read + decode per sample, one file at a time).  GPU compute still
  overlaps, because CUDA launches are asynchronous, but CPU-side loading is
  strictly serial.
* ``num_workers=W`` — W worker *processes*; batches are assigned to workers
  round-robin, each worker keeps up to ``prefetch_factor`` completed batches
  buffered, and the main process consumes batches **in order** (PyTorch's
  default deterministic behaviour: batch *k* must come from worker
  ``k mod W``, even if another worker finished later batches first).

Each worker owns its own storage session, created by ``posix_factory`` —
this is the seam the PRISMA PyTorch binding plugs into: the paper's 35-LoC
integration creates one PRISMA UDS client per worker process (§IV).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from ...dataset.catalog import DatasetCatalog
from ...dataset.shuffle import EpochShuffler, SequentialOrder, batches_from_order
from ...simcore.event import Event, chain_result
from ...simcore.resources import Store
from ...telemetry import TimeWeightedGauge
from ..models import ModelProfile
from ..training import DataSource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...simcore.kernel import Simulator
    from ...storage.posix import PosixLike

#: Factory producing one storage session per worker id (-1 = main process).
PosixFactory = Callable[[int], "PosixLike"]


class TorchDataLoader(DataSource):
    """DataLoader-equivalent batch source over simulated storage."""

    def __init__(
        self,
        sim: "Simulator",
        catalog: DatasetCatalog,
        shuffler: EpochShuffler | SequentialOrder,
        batch_size: int,
        posix_factory: PosixFactory,
        model: ModelProfile,
        num_workers: int = 0,
        prefetch_factor: int = 2,
        drop_last: bool = False,
        name: str = "dataloader",
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        if prefetch_factor < 1:
            raise ValueError("prefetch_factor must be >= 1")
        self.sim = sim
        self.catalog = catalog
        self.shuffler = shuffler
        self.batch_size = batch_size
        self.posix_factory = posix_factory
        self.model = model
        self.num_workers = num_workers
        self.prefetch_factor = prefetch_factor
        self.drop_last = drop_last
        self.name = name

        #: processes currently blocked inside a storage read
        self.active_readers = TimeWeightedGauge(sim, 0, name=f"{name}.active_readers")
        self.samples_read = 0
        self.bytes_read = 0

        # Storage sessions are created once and reused across epochs, like
        # persistent_workers=True (per-epoch re-fork would only add noise).
        self._main_posix = posix_factory(-1)
        self._worker_posix: List["PosixLike"] = [
            posix_factory(w) for w in range(num_workers)
        ]

        # Per-epoch state.
        self._batches: Optional[List[List[int]]] = None
        self._next_seq = 0
        self._worker_out: List[Store] = []

    # -- shared helpers ------------------------------------------------------------
    def _load_sample(self, posix: "PosixLike", idx: int):
        """Read + decode one sample (generator; returns bytes read)."""
        path = self.catalog.path(idx)
        self.active_readers.increment()
        nbytes = yield posix.read_whole(path)
        self.active_readers.decrement()
        cost = self.model.preprocess_time_per_image
        if cost > 0:
            yield self.sim.timeout(cost)
        self.samples_read += 1
        self.bytes_read += nbytes
        return nbytes

    # -- epoch machinery -----------------------------------------------------------
    def begin_epoch(self, epoch: int) -> None:
        order = self.shuffler.order(epoch)
        self._batches = [
            [int(i) for i in b]
            for b in batches_from_order(order, self.batch_size, self.drop_last)
        ]
        self._next_seq = 0
        self._worker_out = []
        if self.num_workers > 0:
            for w in range(self.num_workers):
                out = Store(self.sim, capacity=self.prefetch_factor, name=f"{self.name}.w{w}")
                self._worker_out.append(out)
                self.sim.process(self._worker(w, out), name=f"{self.name}.worker{w}")

    def _worker(self, worker_id: int, out: Store):
        """One DataLoader worker: loads its round-robin share of batches."""
        assert self._batches is not None
        posix = self._worker_posix[worker_id]
        for seq in range(worker_id, len(self._batches), self.num_workers):
            batch = self._batches[seq]
            for idx in batch:
                yield self.sim.process(self._load_sample(posix, idx))
            yield out.put(len(batch))

    # -- DataSource API -----------------------------------------------------------
    def next_batch(self) -> Event:
        assert self._batches is not None, "begin_epoch() not called"
        done = Event(self.sim, name=f"{self.name}.next")
        if self._next_seq >= len(self._batches):
            done.succeed(None)
            return done
        seq = self._next_seq
        self._next_seq += 1

        if self.num_workers == 0:
            batch = self._batches[seq]

            def load_batch():
                for idx in batch:
                    yield self.sim.process(self._load_sample(self._main_posix, idx))
                return len(batch)

            proc = self.sim.process(load_batch(), name=f"{self.name}.load{seq}")
            return chain_result(proc, done)

        # In-order consumption: batch `seq` comes from worker `seq % W`.
        inner = self._worker_out[seq % self.num_workers].get()
        return chain_result(inner, done)

    def end_epoch(self) -> None:
        self._batches = None
        self._worker_out = []
