"""``repro.frameworks.pytorch`` — PyTorch DataLoader simulator.

Provides :class:`TorchDataLoader`, modelling ``torch.utils.data.DataLoader``
with 0..N worker processes, round-robin batch assignment, in-order
consumption, and per-worker storage sessions (the PRISMA client seam).
"""

from .dataloader import PosixFactory, TorchDataLoader

__all__ = ["PosixFactory", "TorchDataLoader"]
