"""``repro.frameworks`` — DL framework simulators.

The compute side of the reproduction: the model zoo and GPU ensemble
(:mod:`.models`), the framework-agnostic training driver (:mod:`.training`),
and the two framework input pipelines (:mod:`.tensorflow`,
:mod:`.pytorch`).
"""

from .checkpoint import CHECKPOINT_BYTES, CheckpointConfig, CheckpointWriter
from .models import (
    ALEXNET,
    LENET,
    MODEL_ZOO,
    RESNET50,
    GpuEnsemble,
    ModelProfile,
    get_model,
)
from .training import (
    DataSource,
    EpochStats,
    Trainer,
    TrainingConfig,
    TrainingResult,
)

__all__ = [
    "ALEXNET",
    "CHECKPOINT_BYTES",
    "CheckpointConfig",
    "CheckpointWriter",
    "DataSource",
    "EpochStats",
    "GpuEnsemble",
    "LENET",
    "MODEL_ZOO",
    "ModelProfile",
    "RESNET50",
    "Trainer",
    "TrainingConfig",
    "TrainingResult",
    "get_model",
]
