"""tf.data-like input pipeline simulator.

Reproduces the two TensorFlow setups of the paper's evaluation (§V-A):

* **TF baseline** — "non-optimized deployment with single-threaded disk
  operations without data prefetching": one reader thread, a sequentially
  small amount of in-flight data (pull-driven stores of depth 1–2), no
  prefetch buffer.
* **TF optimized** — "disk I/O parallelism and prefetching optimizations,
  managed by TensorFlow's auto-tuning mechanism": a pool of reader threads
  (TF allocates its full intra-op budget — the paper observes 30 threads),
  parallel map, and a prefetch stage whose buffer limit is governed by the
  :class:`~repro.frameworks.tensorflow.autotune.PrefetchAutotuner` port.

Stages are connected by bounded stores, exactly like tf.data's internal
element queues::

    readers (xR) -> raw_store -> mappers (xM) -> mapped_store
                 -> batcher -> batch_store[prefetch] -> GetNext()

All file reads go through a :class:`~repro.storage.posix.PosixLike`
``read_whole`` — the single seam where PRISMA's data-plane stage is swapped
in for the storage backend (the paper's 10-LoC TensorFlow integration).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ...dataset.catalog import DatasetCatalog
from ...dataset.shuffle import EpochShuffler, SequentialOrder
from ...simcore.event import Event, chain_result
from ...simcore.resources import Store
from ...telemetry import TimeWeightedGauge
from ..models import ModelProfile
from ..training import DataSource
from .autotune import PrefetchAutotuner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...simcore.kernel import Simulator
    from ...storage.posix import PosixLike

#: Sentinel marking end-of-epoch inside inter-stage stores.
_END = object()


class TFDataPipeline(DataSource):
    """A configurable tf.data-style pipeline serving batches of samples.

    Parameters
    ----------
    reader_threads:
        Parallel file readers (``num_parallel_reads``); 1 for the baseline.
    map_threads:
        Parallel preprocess workers (``map(..., num_parallel_calls)``).
    prefetch:
        ``None`` disables the prefetch stage (baseline: ``GetNext`` pulls
        the next batch synchronously); an integer fixes the buffer size; the
        string ``"autotune"`` enables the :class:`PrefetchAutotuner`.
    stage_depth:
        Capacity of the inter-stage element stores; small values keep the
        baseline pull-like, larger ones let the optimized pipeline run ahead.
    """

    def __init__(
        self,
        sim: "Simulator",
        catalog: DatasetCatalog,
        shuffler: EpochShuffler | SequentialOrder,
        batch_size: int,
        posix: "PosixLike",
        model: ModelProfile,
        reader_threads: int = 1,
        map_threads: int = 4,
        prefetch: int | str | None = None,
        prefetch_max: int = 64,
        stage_depth: int = 2,
        name: str = "tfdata",
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if reader_threads < 1:
            raise ValueError("reader_threads must be >= 1")
        if map_threads < 1:
            raise ValueError("map_threads must be >= 1")
        if stage_depth < 1:
            raise ValueError("stage_depth must be >= 1")
        self.sim = sim
        self.catalog = catalog
        self.shuffler = shuffler
        self.batch_size = batch_size
        self.posix = posix
        self.model = model
        self.reader_threads = reader_threads
        self.map_threads = map_threads
        self.stage_depth = stage_depth
        self.name = name

        self.autotuner: Optional[PrefetchAutotuner] = None
        if prefetch is None:
            self._batch_capacity = 1
        elif prefetch == "autotune":
            self.autotuner = PrefetchAutotuner(max_limit=prefetch_max)
            self._batch_capacity = self.autotuner.buffer_limit
        elif isinstance(prefetch, int):
            if prefetch < 1:
                raise ValueError("prefetch buffer must be >= 1 batch")
            self._batch_capacity = prefetch
        else:
            raise ValueError(f"invalid prefetch spec {prefetch!r}")

        #: threads currently blocked inside a storage read (paper Fig. 3)
        self.active_readers = TimeWeightedGauge(sim, 0, name=f"{name}.active_readers")
        self.samples_read = 0
        self.bytes_read = 0

        # Per-epoch state, rebuilt by begin_epoch.
        self._raw_store: Optional[Store] = None
        self._mapped_store: Optional[Store] = None
        self._batch_store: Optional[Store] = None
        self._epoch_order: Optional[List[int]] = None
        self._cursor = 0

    # -- epoch machinery -----------------------------------------------------------
    def begin_epoch(self, epoch: int) -> None:
        order = self.shuffler.order(epoch)
        self._epoch_order = [int(i) for i in order]
        self._cursor = 0
        n = len(self._epoch_order)
        self._raw_store = Store(self.sim, capacity=self.stage_depth, name=f"{self.name}.raw")
        self._mapped_store = Store(self.sim, capacity=self.stage_depth, name=f"{self.name}.mapped")
        self._batch_store = Store(self.sim, capacity=self._batch_capacity, name=f"{self.name}.batches")
        for r in range(self.reader_threads):
            self.sim.process(self._reader(), name=f"{self.name}.reader{r}")
        for m in range(self.map_threads):
            self.sim.process(self._mapper(), name=f"{self.name}.mapper{m}")
        self.sim.process(self._batcher(n), name=f"{self.name}.batcher")

    def _claim_index(self) -> Optional[int]:
        """Atomically take the next sample index of the epoch order."""
        assert self._epoch_order is not None
        if self._cursor >= len(self._epoch_order):
            return None
        idx = self._epoch_order[self._cursor]
        self._cursor += 1
        return idx

    def _reader(self):
        assert self._raw_store is not None
        while True:
            idx = self._claim_index()
            if idx is None:
                return
            path = self.catalog.path(idx)
            self.active_readers.increment()
            nbytes = yield self.posix.read_whole(path)
            self.active_readers.decrement()
            self.samples_read += 1
            self.bytes_read += nbytes
            yield self._raw_store.put(idx)

    def _mapper(self):
        raw, mapped = self._raw_store, self._mapped_store
        assert raw is not None and mapped is not None
        cost = self.model.preprocess_time_per_image
        while True:
            item = yield raw.get()
            if item is _END:
                yield raw.put(_END)  # re-broadcast so sibling mappers stop
                return
            if cost > 0:
                yield self.sim.timeout(cost)
            yield mapped.put(item)

    def _batcher(self, total_samples: int):
        mapped, batches = self._mapped_store, self._batch_store
        assert mapped is not None and batches is not None
        remaining = total_samples
        while remaining > 0:
            take = min(self.batch_size, remaining)
            for _ in range(take):
                yield mapped.get()
            remaining -= take
            yield batches.put(take)
        yield batches.put(_END)
        # Wake the mappers so they exit instead of idling forever.
        assert self._raw_store is not None
        yield self._raw_store.put(_END)

    # -- DataSource API -----------------------------------------------------------
    def next_batch(self) -> Event:
        assert self._batch_store is not None, "begin_epoch() not called"
        if self.autotuner is not None:
            self.autotuner.record_consumption(self._batch_store.level)
            if self.autotuner.buffer_limit != self._batch_capacity:
                self._batch_capacity = self.autotuner.buffer_limit
                self._batch_store.set_capacity(self._batch_capacity)
        done = Event(self.sim, name=f"{self.name}.next")
        inner = self._batch_store.get()
        return chain_result(inner, done, lambda v: None if v is _END else v)

    def end_epoch(self) -> None:
        self._raw_store = None
        self._mapped_store = None
        self._batch_store = None
        self._epoch_order = None


def tf_baseline(
    sim: "Simulator",
    catalog: DatasetCatalog,
    shuffler: EpochShuffler | SequentialOrder,
    batch_size: int,
    posix: "PosixLike",
    model: ModelProfile,
    name: str = "tf-baseline",
) -> TFDataPipeline:
    """The paper's *TF baseline*: 1 reader, no prefetch."""
    return TFDataPipeline(
        sim,
        catalog,
        shuffler,
        batch_size,
        posix,
        model,
        reader_threads=1,
        map_threads=4,
        prefetch=None,
        stage_depth=2,
        name=name,
    )


#: TF's intra-op thread budget observed by the paper (Fig. 3: "allocates the
#: maximum number of threads (i.e., 30) regardless of whether they are
#: needed").
TF_OPTIMIZED_THREADS = 30


def tf_optimized(
    sim: "Simulator",
    catalog: DatasetCatalog,
    shuffler: EpochShuffler | SequentialOrder,
    batch_size: int,
    posix: "PosixLike",
    model: ModelProfile,
    name: str = "tf-optimized",
) -> TFDataPipeline:
    """The paper's *TF optimized*: parallel I/O + autotuned prefetching."""
    return TFDataPipeline(
        sim,
        catalog,
        shuffler,
        batch_size,
        posix,
        model,
        reader_threads=TF_OPTIMIZED_THREADS,
        map_threads=TF_OPTIMIZED_THREADS,
        prefetch="autotune",
        stage_depth=2 * TF_OPTIMIZED_THREADS,
        name=name,
    )
