"""Port of TensorFlow's prefetch auto-tuner.

This mirrors the algorithm of
``tensorflow/core/kernels/data/prefetch_autotuner.cc`` (the mechanism the
paper cites as [48] and compares PRISMA's control algorithm against):

* the buffer limit starts at 1 in **upswing** mode;
* on every consumption, if the buffer is *full* (size reached the limit) the
  tuner flips to **downswing** — supply has caught up, watch for depletion;
* in downswing, if the buffer *empties*, the consumer outpaced the producer:
  the limit **doubles** and the tuner returns to upswing.

The limit therefore ratchets up in powers of two until the buffer stops
oscillating between full and empty.  Tightly coupled to TF's internals in
the original (the paper's §II "tightly coupled optimizations" critique),
here it is a standalone object usable by any pipeline.
"""

from __future__ import annotations

import enum


class AutotunerMode(enum.Enum):
    DISABLED = "disabled"
    UPSWING = "upswing"
    DOWNSWING = "downswing"


class PrefetchAutotuner:
    """Adaptive buffer-limit controller (TF ``PrefetchAutotuner`` semantics).

    Parameters
    ----------
    initial_limit:
        Starting buffer limit; TF uses 1 for ``AUTOTUNE``.
    max_limit:
        Safety cap on the doubling (TF bounds this by available RAM; the
        simulation uses an explicit element cap).
    enabled:
        ``False`` reproduces a user-specified fixed buffer size (mode
        ``kDisabled`` in TF): the limit never changes.
    """

    def __init__(self, initial_limit: int = 1, max_limit: int = 64, enabled: bool = True) -> None:
        if initial_limit < 1:
            raise ValueError("initial_limit must be >= 1")
        if max_limit < initial_limit:
            raise ValueError("max_limit must be >= initial_limit")
        self._limit = initial_limit
        self.max_limit = max_limit
        self.mode = AutotunerMode.UPSWING if enabled else AutotunerMode.DISABLED
        self.adjustments = 0

    @property
    def buffer_limit(self) -> int:
        return self._limit

    def record_consumption(self, current_buffer_size: int) -> None:
        """Called with the element count observed at each consumer read."""
        if current_buffer_size < 0:
            raise ValueError("buffer size cannot be negative")
        if self.mode is AutotunerMode.DISABLED:
            return
        if self.mode is AutotunerMode.UPSWING:
            if current_buffer_size >= self._limit:
                self.mode = AutotunerMode.DOWNSWING
        elif self.mode is AutotunerMode.DOWNSWING:
            if current_buffer_size == 0:
                if self._limit < self.max_limit:
                    self._limit = min(self._limit * 2, self.max_limit)
                    self.adjustments += 1
                self.mode = AutotunerMode.UPSWING

    def __repr__(self) -> str:
        return (
            f"<PrefetchAutotuner limit={self._limit} mode={self.mode.value} "
            f"adjustments={self.adjustments}>"
        )
