"""Record-sharded input pipeline (TFRecord-style).

The paper's §II lists "optimized data formats" (TFRecord, [49]) among the
framework-intrinsic storage optimizations that motivate decoupling: packing
samples into large shard files converts millions of small random reads into
few large sequential ones, but requires converting (and re-shuffling) the
dataset offline and is TensorFlow-specific.

:class:`ShardedTFDataPipeline` models that approach: readers claim whole
*shards* (shuffling happens at shard granularity, exactly TFRecord
practice), stream each shard with one large read, then emit its samples
downstream.  The format-ablation benchmark compares it against
file-per-sample — with and without PRISMA — quantifying how much of the
format's benefit the decoupled prefetcher delivers *without* touching the
dataset.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ...dataset.formats import ShardedDataset
from ...dataset.shuffle import EpochShuffler, SequentialOrder
from ...simcore.event import Event, chain_result
from ...simcore.resources import Store
from ...telemetry import TimeWeightedGauge
from ..models import ModelProfile
from ..training import DataSource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...simcore.kernel import Simulator
    from ...storage.posix import PosixLike

_END = object()


class ShardedTFDataPipeline(DataSource):
    """Batches from record shards: shard-granular shuffle, sequential reads."""

    def __init__(
        self,
        sim: "Simulator",
        sharded: ShardedDataset,
        shard_shuffler: EpochShuffler | SequentialOrder,
        batch_size: int,
        posix: "PosixLike",
        model: ModelProfile,
        reader_threads: int = 1,
        map_threads: int = 4,
        prefetch_batches: int = 1,
        name: str = "tfrecord",
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if reader_threads < 1 or map_threads < 1:
            raise ValueError("thread counts must be >= 1")
        if prefetch_batches < 1:
            raise ValueError("prefetch_batches must be >= 1")
        if shard_shuffler.n != len(sharded.shards):
            raise ValueError(
                f"shuffler covers {shard_shuffler.n} items but the dataset "
                f"has {len(sharded.shards)} shards — shuffle shards, not samples"
            )
        self.sim = sim
        self.sharded = sharded
        self.shard_shuffler = shard_shuffler
        self.batch_size = batch_size
        self.posix = posix
        self.model = model
        self.reader_threads = reader_threads
        self.map_threads = map_threads
        self.prefetch_batches = prefetch_batches
        self.name = name

        self.active_readers = TimeWeightedGauge(sim, 0, name=f"{name}.active_readers")
        self.samples_read = 0
        self.bytes_read = 0
        self.shards_read = 0

        self._shard_order: Optional[List[int]] = None
        self._cursor = 0
        self._raw_store: Optional[Store] = None
        self._sample_store: Optional[Store] = None
        self._batch_store: Optional[Store] = None
        # samples per shard, precomputed once
        self._shard_samples: List[int] = [0] * len(sharded.shards)
        for entry in sharded.index:
            self._shard_samples[entry.shard_index] += 1

    # -- epoch machinery -----------------------------------------------------------
    def begin_epoch(self, epoch: int) -> None:
        self._shard_order = [int(i) for i in self.shard_shuffler.order(epoch)]
        self._cursor = 0
        self._raw_store = Store(
            self.sim, capacity=4 * self.batch_size, name=f"{self.name}.raw"
        )
        self._sample_store = Store(
            self.sim, capacity=4 * self.batch_size, name=f"{self.name}.samples"
        )
        self._batch_store = Store(
            self.sim, capacity=self.prefetch_batches, name=f"{self.name}.batches"
        )
        for r in range(self.reader_threads):
            self.sim.process(self._reader(), name=f"{self.name}.reader{r}")
        for m in range(self.map_threads):
            self.sim.process(self._mapper(), name=f"{self.name}.mapper{m}")
        total = len(self.sharded)
        self.sim.process(self._batcher(total), name=f"{self.name}.batcher")

    def _claim_shard(self) -> Optional[int]:
        assert self._shard_order is not None
        if self._cursor >= len(self._shard_order):
            return None
        shard = self._shard_order[self._cursor]
        self._cursor += 1
        return shard

    def _reader(self):
        raw_store = self._raw_store
        assert raw_store is not None
        while True:
            shard = self._claim_shard()
            if shard is None:
                return
            path = self.sharded.shards.path(shard)
            self.active_readers.increment()
            nbytes = yield self.posix.read_whole(path)
            self.active_readers.decrement()
            self.shards_read += 1
            self.bytes_read += nbytes
            # Fan the shard's records out to the parallel decode stage.
            for _ in range(self._shard_samples[shard]):
                self.samples_read += 1
                yield raw_store.put(1)

    def _mapper(self):
        raw_store, sample_store = self._raw_store, self._sample_store
        assert raw_store is not None and sample_store is not None
        cost = self.model.preprocess_time_per_image
        while True:
            item = yield raw_store.get()
            if item is _END:
                yield raw_store.put(_END)  # re-broadcast to sibling mappers
                return
            if cost > 0:
                yield self.sim.timeout(cost)
            yield sample_store.put(1)

    def _batcher(self, total_samples: int):
        sample_store, batch_store = self._sample_store, self._batch_store
        assert sample_store is not None and batch_store is not None
        remaining = total_samples
        while remaining > 0:
            take = min(self.batch_size, remaining)
            for _ in range(take):
                yield sample_store.get()
            remaining -= take
            yield batch_store.put(take)
        yield batch_store.put(_END)
        # Wake the mappers so they exit instead of idling forever.
        assert self._raw_store is not None
        yield self._raw_store.put(_END)

    # -- DataSource API -----------------------------------------------------------
    def next_batch(self) -> Event:
        assert self._batch_store is not None, "begin_epoch() not called"
        done = Event(self.sim, name=f"{self.name}.next")
        inner = self._batch_store.get()
        return chain_result(inner, done, lambda v: None if v is _END else v)

    def end_epoch(self) -> None:
        self._shard_order = None
        self._raw_store = None
        self._sample_store = None
        self._batch_store = None
