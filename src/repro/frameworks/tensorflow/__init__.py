"""``repro.frameworks.tensorflow`` — TensorFlow input-pipeline simulator.

Provides the tf.data-like :class:`TFDataPipeline`, the paper's two setups
(:func:`tf_baseline`, :func:`tf_optimized`), and the
:class:`PrefetchAutotuner` port of TF's ``prefetch_autotuner.cc``.
"""

from .autotune import AutotunerMode, PrefetchAutotuner
from .pipeline import TF_OPTIMIZED_THREADS, TFDataPipeline, tf_baseline, tf_optimized
from .sharded import ShardedTFDataPipeline

__all__ = [
    "AutotunerMode",
    "PrefetchAutotuner",
    "ShardedTFDataPipeline",
    "TFDataPipeline",
    "TF_OPTIMIZED_THREADS",
    "tf_baseline",
    "tf_optimized",
]
