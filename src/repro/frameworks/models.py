"""Model zoo and GPU compute-cost model.

The paper trains LeNet and AlexNet (I/O-bound) and ResNet-50 (compute-bound)
on a 4×V100 node (§V).  Training math is irrelevant to storage behaviour;
what matters is the *rate at which the GPU ensemble consumes batches*, so a
model is characterized by:

* ``step_overhead`` — fixed seconds per optimizer step (kernel launches,
  host/device sync, gradient all-reduce across the 4 GPUs), and
* ``gpu_time_per_image`` — marginal seconds per image on the ensemble.

Step time for a global batch ``B`` is ``step_overhead + B·gpu_time_per_image``
— images/second grows with batch size and saturates at
``1/gpu_time_per_image``, reproducing the paper's observation that the
optimized setups improve with larger batches while the I/O-bound baseline
does not.

``preprocess_time_per_image`` is the CPU-side decode/augment cost, spent in
the framework's input pipeline (tf.data map stage / DataLoader worker), not
on the GPU.

Calibration: the LeNet constants solve the paper's two TF-optimized anchors
(185.1 s/epoch at batch 64, 136.3 s/epoch at batch 256 — both compute-floor
regimes); AlexNet is set so its compute floor sits ≈20 % under the baseline's
I/O ceiling (the paper's AlexNet gain); ResNet-50 uses the well-known ≈1.5 k
images/s FP32 throughput of a 4×V100 server, far below the SSD's delivery
rate, hence compute-bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from ..simcore.event import Event
from ..simcore.resources import Store
from ..telemetry import TimeWeightedGauge

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator


@dataclass(frozen=True)
class ModelProfile:
    """Cost model of one neural network on the reference GPU ensemble."""

    name: str
    step_overhead: float
    gpu_time_per_image: float
    preprocess_time_per_image: float
    #: the paper's workload classification (drives expectations in tests)
    io_bound: bool

    def __post_init__(self) -> None:
        if self.step_overhead < 0 or self.gpu_time_per_image < 0:
            raise ValueError("model costs must be non-negative")
        if self.preprocess_time_per_image < 0:
            raise ValueError("preprocess cost must be non-negative")

    def step_time(self, global_batch: int) -> float:
        """Seconds for one training step on the ensemble."""
        if global_batch < 1:
            raise ValueError("global_batch must be >= 1")
        return self.step_overhead + global_batch * self.gpu_time_per_image

    def validation_step_time(self, global_batch: int) -> float:
        """Forward-only pass ≈ 1/3 of a training step's marginal cost."""
        if global_batch < 1:
            raise ValueError("global_batch must be >= 1")
        return self.step_overhead / 2 + global_batch * self.gpu_time_per_image / 3

    def saturated_images_per_second(self) -> float:
        if self.gpu_time_per_image == 0:
            return float("inf")
        return 1.0 / self.gpu_time_per_image


#: LeNet-5 — tiny network; training is dominated by the input pipeline.
LENET = ModelProfile(
    name="lenet",
    step_overhead=3.25e-3,
    gpu_time_per_image=8.9e-5,
    preprocess_time_per_image=7.0e-5,
    io_bound=True,
)

#: AlexNet — moderate compute; still I/O-bound on a fast node.
ALEXNET = ModelProfile(
    name="alexnet",
    step_overhead=3.6e-3,
    gpu_time_per_image=2.55e-4,
    preprocess_time_per_image=7.0e-5,
    io_bound=True,
)

#: ResNet-50 — ≈1.5k images/s FP32 on 4×V100; compute-bound.
RESNET50 = ModelProfile(
    name="resnet50",
    step_overhead=4.5e-3,
    gpu_time_per_image=6.6e-4,
    preprocess_time_per_image=7.0e-5,
    io_bound=False,
)

MODEL_ZOO: Dict[str, ModelProfile] = {
    m.name: m for m in (LENET, ALEXNET, RESNET50)
}


def get_model(name: str) -> ModelProfile:
    try:
        return MODEL_ZOO[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}"
        ) from None


class GpuEnsemble:
    """The synchronous data-parallel GPU engine (4×V100 on ABCI).

    CUDA launches are asynchronous: the training loop hands a batch to the
    engine and immediately continues fetching the next one while the GPUs
    crunch.  This is modelled with a small submission queue (depth
    ``queue_depth``, default 2 — current step + one queued) drained by a
    single compute process; ``submit`` blocks only when the queue is full,
    which is exactly the back-pressure a real ``loss.backward()`` +
    ``optimizer.step()`` pipeline exerts.
    """

    def __init__(self, sim: "Simulator", n_gpus: int = 4, queue_depth: int = 2, name: str = "gpu") -> None:
        if n_gpus < 1:
            raise ValueError("n_gpus must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.sim = sim
        self.n_gpus = n_gpus
        self.name = name
        self._queue: Store = Store(sim, capacity=queue_depth, name=f"{name}.queue")
        self._idle_event: Optional[Event] = None
        self._in_flight = 0
        self.busy = TimeWeightedGauge(sim, 0, name=f"{name}.busy")
        self.total_compute_time = 0.0
        self.steps_executed = 0
        sim.process(self._engine(), name=f"{name}.engine")

    def _engine(self):
        while True:
            duration = yield self._queue.get()
            self.busy.set(1)
            yield self.sim.timeout(duration)
            self.busy.set(0)
            self.total_compute_time += duration
            self.steps_executed += 1
            self._in_flight -= 1
            if self._in_flight == 0 and self._idle_event is not None:
                self._idle_event.succeed()
                self._idle_event = None

    def submit(self, duration: float) -> Event:
        """Enqueue one step of ``duration`` seconds; event fires on *accept*.

        The returned event triggers when the queue admits the work — not when
        the step finishes — mirroring asynchronous kernel launch.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self._in_flight += 1
        return self._queue.put(duration)

    def train_step(self, model: ModelProfile, global_batch: int) -> Event:
        return self.submit(model.step_time(global_batch))

    def validation_step(self, model: ModelProfile, global_batch: int) -> Event:
        return self.submit(model.validation_step_time(global_batch))

    def drain(self) -> Event:
        """Event that fires once all submitted work has executed."""
        done = Event(self.sim, name=f"{self.name}.drain")
        if self._in_flight == 0:
            done.succeed()
        else:
            if self._idle_event is not None:
                # Chain onto the existing drain waiter.
                self._idle_event.add_callback(
                    lambda _ev: done.succeed() if not done.triggered else None
                )
            else:
                self._idle_event = done
        return done

    def utilization(self) -> float:
        """Fraction of elapsed time the engine was computing."""
        return self.busy.mean()
