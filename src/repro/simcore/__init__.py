"""``repro.simcore`` — a dependency-free discrete-event simulation kernel.

The kernel is the substrate for every simulated component in this
reproduction (storage devices, DL framework pipelines, the PRISMA data and
control planes).  It provides:

* :class:`Simulator` — the slot-scheduled event loop and clock: a FIFO
  slot per timestamp, an immediate queue for the current time, and a heap
  of distinct future timestamps (see DESIGN.md on kernel internals).
* :class:`Process` — generator-based cooperative processes.
* Events: :class:`Event`, :class:`Timeout`, :class:`AnyOf`, :class:`AllOf`.
* Resources: :class:`Store`, :class:`FilterStore`, :class:`KeyedStore`
  (O(1) key-addressed buffering over a :class:`KeyedIndex`),
  :class:`Resource`, :class:`Lock`, :class:`Container`.  Pending
  operations are :class:`RequestEvent`\\ s with an explicit run-queue
  state (``WAITING``/``READY``/``RUNNING``/``CANCELLED``).
* :class:`RandomStreams` — named deterministic RNG streams.

The telemetry primitives live in :mod:`repro.telemetry`.
"""

from .errors import (
    DuplicateKeyError,
    DuplicateRequestError,
    EventAlreadyTriggered,
    Interrupt,
    ProcessError,
    SchedulingError,
    SimulationError,
    StopSimulation,
)
from .event import AllOf, AnyOf, Event, Timeout
from .kernel import Process, Simulator
from .random import RandomStreams
from .resources import (
    CANCELLED,
    READY,
    RUNNING,
    WAITING,
    Container,
    FilterStore,
    KeyedIndex,
    KeyedStore,
    KeyedStoreGet,
    KeyedStorePut,
    Lock,
    RequestEvent,
    Resource,
    ResourceRequest,
    Store,
    StoreGet,
    StorePut,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "CANCELLED",
    "Container",
    "DuplicateKeyError",
    "DuplicateRequestError",
    "Event",
    "EventAlreadyTriggered",
    "FilterStore",
    "Interrupt",
    "KeyedIndex",
    "KeyedStore",
    "KeyedStoreGet",
    "KeyedStorePut",
    "Lock",
    "Process",
    "ProcessError",
    "READY",
    "RUNNING",
    "RandomStreams",
    "RequestEvent",
    "Resource",
    "ResourceRequest",
    "SchedulingError",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Store",
    "StoreGet",
    "StorePut",
    "Timeout",
    "WAITING",
]
