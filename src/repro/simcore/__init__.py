"""``repro.simcore`` — a dependency-free discrete-event simulation kernel.

The kernel is the substrate for every simulated component in this
reproduction (storage devices, DL framework pipelines, the PRISMA data and
control planes).  It provides:

* :class:`Simulator` — the event loop and clock.
* :class:`Process` — generator-based cooperative processes.
* Events: :class:`Event`, :class:`Timeout`, :class:`AnyOf`, :class:`AllOf`.
* Resources: :class:`Store`, :class:`FilterStore`, :class:`Resource`,
  :class:`Lock`, :class:`Container`.
* Telemetry: :class:`Tracer`, :class:`TimeWeightedGauge`, :class:`CounterSet`.
* :class:`RandomStreams` — named deterministic RNG streams.
"""

from .errors import (
    EventAlreadyTriggered,
    Interrupt,
    ProcessError,
    SchedulingError,
    SimulationError,
    StopSimulation,
)
from .event import AllOf, AnyOf, Event, Timeout
from .kernel import Process, Simulator
from .random import RandomStreams
from .resources import (
    Container,
    FilterStore,
    Lock,
    Resource,
    ResourceRequest,
    Store,
    StoreGet,
    StorePut,
)
from .tracing import CounterSet, GaugeSample, TimeWeightedGauge, Tracer, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "CounterSet",
    "Event",
    "EventAlreadyTriggered",
    "FilterStore",
    "GaugeSample",
    "Interrupt",
    "Lock",
    "Process",
    "ProcessError",
    "RandomStreams",
    "Resource",
    "ResourceRequest",
    "SchedulingError",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Store",
    "StoreGet",
    "StorePut",
    "Timeout",
    "TimeWeightedGauge",
    "TraceRecord",
    "Tracer",
]
