"""``repro.simcore`` — a dependency-free discrete-event simulation kernel.

The kernel is the substrate for every simulated component in this
reproduction (storage devices, DL framework pipelines, the PRISMA data and
control planes).  It provides:

* :class:`Simulator` — the event loop and clock.
* :class:`Process` — generator-based cooperative processes.
* Events: :class:`Event`, :class:`Timeout`, :class:`AnyOf`, :class:`AllOf`.
* Resources: :class:`Store`, :class:`FilterStore`, :class:`KeyedStore`
  (O(1) key-addressed buffering over a :class:`KeyedIndex`),
  :class:`Resource`, :class:`Lock`, :class:`Container`.
* :class:`RandomStreams` — named deterministic RNG streams.

The telemetry names that used to live here (``Tracer``,
``TimeWeightedGauge``, ``CounterSet``, …) moved to :mod:`repro.telemetry`;
importing them from ``repro.simcore`` still works for one release but
emits a :class:`DeprecationWarning`.
"""

import warnings

from .errors import (
    DuplicateKeyError,
    DuplicateRequestError,
    EventAlreadyTriggered,
    Interrupt,
    ProcessError,
    SchedulingError,
    SimulationError,
    StopSimulation,
)
from .event import AllOf, AnyOf, Event, Timeout
from .kernel import Process, Simulator
from .random import RandomStreams
from .resources import (
    Container,
    FilterStore,
    KeyedIndex,
    KeyedStore,
    KeyedStoreGet,
    KeyedStorePut,
    Lock,
    Resource,
    ResourceRequest,
    Store,
    StoreGet,
    StorePut,
)
_MOVED_TO_TELEMETRY = ("CounterSet", "GaugeSample", "TimeWeightedGauge", "Tracer", "TraceRecord")


def __getattr__(name):
    if name in _MOVED_TO_TELEMETRY:
        warnings.warn(
            f"repro.simcore.{name} is deprecated; import it from repro.telemetry instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from .. import telemetry

        return getattr(telemetry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "CounterSet",
    "DuplicateKeyError",
    "DuplicateRequestError",
    "Event",
    "EventAlreadyTriggered",
    "FilterStore",
    "GaugeSample",
    "Interrupt",
    "KeyedIndex",
    "KeyedStore",
    "KeyedStoreGet",
    "KeyedStorePut",
    "Lock",
    "Process",
    "ProcessError",
    "RandomStreams",
    "Resource",
    "ResourceRequest",
    "SchedulingError",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Store",
    "StoreGet",
    "StorePut",
    "Timeout",
    "TimeWeightedGauge",
    "TraceRecord",
    "Tracer",
]
