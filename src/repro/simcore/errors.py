"""Exception hierarchy for the discrete-event simulation kernel.

Every error raised by :mod:`repro.simcore` derives from
:class:`SimulationError`, so callers embedding a simulation inside a larger
application can catch one base class.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class SchedulingError(SimulationError):
    """An event was scheduled in an invalid way.

    Examples: negative delay, re-scheduling an already triggered event, or
    scheduling onto a simulator that has been torn down.
    """


class EventAlreadyTriggered(SchedulingError):
    """``succeed``/``fail`` was called on an event that already fired."""


class DuplicateKeyError(SimulationError):
    """A keyed store was asked to admit a key it already holds.

    Keyed stores index exactly one item per key; a second ``put`` for a
    present key fails fast (the event is failed with this error) instead of
    silently shadowing or re-ordering the first item.
    """


class DuplicateRequestError(SimulationError):
    """A second consumer requested a key that can never be delivered again.

    Raised (as a failed event) by evict-on-read buffers when a key is
    requested while another consumer already waits for it, or after it was
    already consumed this epoch — both cases would otherwise block forever
    because the producer stages each file exactly once per epoch.
    """


class StopSimulation(SimulationError):
    """Raised internally to halt :meth:`Simulator.run` early.

    User processes may raise it (or call :meth:`Simulator.stop`) to end the
    run from inside the event loop; ``run()`` catches it and returns.
    """


class Interrupt(SimulationError):
    """Thrown *into* a process that another process interrupted.

    The interrupting party supplies ``cause`` which the victim can inspect::

        try:
            yield sim.timeout(10.0)
        except Interrupt as exc:
            log("interrupted because", exc.cause)
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"


class ProcessError(SimulationError):
    """A process being waited upon terminated with an exception.

    The original exception is available as ``__cause__``.
    """
