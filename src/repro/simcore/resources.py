"""Synchronization and queueing resources built on the event kernel.

Provides the building blocks the storage and framework simulators need:

* :class:`Store` — bounded FIFO of items (producer/consumer buffer).
* :class:`FilterStore` — like ``Store`` but ``get`` takes a predicate; used
  to model keyed buffers (a consumer waits for a *specific* file).
* :class:`Resource` — counted semaphore with FIFO queuing and usage stats.
* :class:`Lock` — a 1-capacity resource with wait-time accounting, so
  contention (e.g., PRISMA's shared-buffer lock under many PyTorch workers)
  can be both *modelled* and *measured*.
* :class:`Container` — continuous level (bytes of memory, tokens).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Optional

from .errors import SimulationError
from .event import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Simulator


class StorePut(Event):
    """Pending ``put`` request; triggers when the item is accepted."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.sim, name=f"put:{store.name}")
        self.item = item


class StoreGet(Event):
    """Pending ``get`` request; triggers with the retrieved item."""

    __slots__ = ("predicate",)

    def __init__(self, store: "Store", predicate: Optional[Callable[[Any], bool]] = None) -> None:
        super().__init__(store.sim, name=f"get:{store.name}")
        self.predicate = predicate


class Store:
    """Bounded FIFO store of discrete items.

    ``put(item)`` returns an event that triggers once capacity allows the
    item in; ``get()`` returns an event that triggers with the oldest item.
    Both queue FIFO, giving fair producer/consumer semantics.

    Stats: ``peak_items`` and time-weighted ``area`` (item-seconds) enable
    occupancy analysis, which PRISMA's control loop consumes.
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf"), name: str = "store") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()
        # occupancy statistics
        self.peak_items = 0
        self._area = 0.0
        self._last_change = sim.now

    # -- statistics -----------------------------------------------------------
    def _account(self) -> None:
        now = self.sim.now
        self._area += len(self.items) * (now - self._last_change)
        self._last_change = now

    def mean_occupancy(self) -> float:
        """Time-averaged number of items since creation."""
        self._account()
        elapsed = self.sim.now  # relative to t=0 by convention
        if elapsed <= 0:
            return float(len(self.items))
        return self._area / elapsed

    @property
    def level(self) -> int:
        return len(self.items)

    def set_capacity(self, capacity: float) -> None:
        """Retarget the capacity at runtime (auto-tuned buffers).

        Raising the capacity admits queued putters immediately; lowering it
        never evicts — the store simply blocks new puts until consumption
        drains below the new limit.
        """
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._dispatch()

    # -- operations -------------------------------------------------------------
    def put(self, item: Any) -> StorePut:
        event = StorePut(self, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self) -> StoreGet:
        event = StoreGet(self)
        self._getters.append(event)
        self._dispatch()
        return event

    def _try_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self._account()
            self.items.append(event.item)
            self.peak_items = max(self.peak_items, len(self.items))
            event.succeed()
            return True
        return False

    def _try_get(self, event: StoreGet) -> bool:
        if self.items:
            self._account()
            event.succeed(self.items.popleft())
            return True
        return False

    def _dispatch(self) -> None:
        """Match queued putters/getters until no progress is possible."""
        progress = True
        while progress:
            progress = False
            while self._putters and self._try_put(self._putters[0]):
                self._putters.popleft()
                progress = True
            while self._getters and self._try_get(self._getters[0]):
                self._getters.popleft()
                progress = True

    def __repr__(self) -> str:
        return (
            f"<Store {self.name!r} {len(self.items)}/{self.capacity} "
            f"putq={len(self._putters)} getq={len(self._getters)}>"
        )


class FilterStore(Store):
    """Store whose ``get`` may demand a specific item via a predicate.

    Getters scan the buffer for the first matching item.  Non-matching
    getters stay queued without blocking others (each getter is evaluated
    independently) — this models a keyed prefetch buffer where consumer *i*
    waits for file *i* regardless of arrival order.
    """

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> StoreGet:  # type: ignore[override]
        event = StoreGet(self, predicate)
        self._getters.append(event)
        self._dispatch()
        return event

    def _try_get(self, event: StoreGet) -> bool:
        if event.predicate is None:
            return super()._try_get(event)
        for idx, item in enumerate(self.items):
            if event.predicate(item):
                self._account()
                del self.items[idx]
                event.succeed(item)
                return True
        return False

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._putters and self._try_put(self._putters[0]):
                self._putters.popleft()
                progress = True
            # Unlike the FIFO store, evaluate *every* getter: a later getter
            # may match while an earlier one keeps waiting.
            remaining: Deque[StoreGet] = deque()
            for getter in self._getters:
                if self._try_get(getter):
                    progress = True
                else:
                    remaining.append(getter)
            self._getters = remaining


class ResourceRequest(Event):
    """Pending acquisition of a :class:`Resource` slot."""

    __slots__ = ("resource", "_issued_at")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim, name=f"req:{resource.name}")
        self.resource = resource
        self._issued_at = resource.sim.now

    # Allow `with (yield res.request()):` style usage in process bodies.
    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.resource.release(self)


class Resource:
    """Counted resource (semaphore) with FIFO queueing and usage metering.

    ``request()`` yields an event; once triggered the caller holds one slot
    until ``release(request)``.  Tracks time-weighted utilization and total
    queue wait, which the experiments use for thread-activity CDFs.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.users: List[ResourceRequest] = []
        self.queue: Deque[ResourceRequest] = deque()
        # metering
        self.total_wait_time = 0.0
        self.total_acquisitions = 0
        self._busy_area = 0.0
        self._last_change = sim.now

    def _account(self) -> None:
        now = self.sim.now
        self._busy_area += len(self.users) * (now - self._last_change)
        self._last_change = now

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def utilization(self) -> float:
        """Mean fraction of capacity in use since creation."""
        self._account()
        elapsed = self.sim.now
        if elapsed <= 0:
            return 0.0
        return self._busy_area / (elapsed * self.capacity)

    def request(self) -> ResourceRequest:
        event = ResourceRequest(self)
        if len(self.users) < self.capacity:
            self._grant(event)
        else:
            self.queue.append(event)
        return event

    def _grant(self, event: ResourceRequest) -> None:
        self._account()
        self.users.append(event)
        self.total_acquisitions += 1
        self.total_wait_time += self.sim.now - event._issued_at
        event.succeed(event)

    def release(self, request: ResourceRequest) -> None:
        if request not in self.users:
            raise SimulationError(
                f"release of {request!r} which does not hold {self.name!r}"
            )
        self._account()  # account the interval *before* shrinking users
        self.users.remove(request)
        if self.queue:
            self._grant(self.queue.popleft())

    def cancel(self, request: ResourceRequest) -> None:
        """Withdraw a queued (not yet granted) request."""
        try:
            self.queue.remove(request)
        except ValueError:
            raise SimulationError(f"{request!r} is not queued on {self.name!r}") from None

    def __repr__(self) -> str:
        return f"<Resource {self.name!r} {self.count}/{self.capacity} queue={len(self.queue)}>"


class Lock(Resource):
    """Binary lock: a capacity-1 resource with a convenience API.

    Usage inside a process::

        req = lock.acquire()
        yield req
        try:
            ...critical section...
        finally:
            lock.release(req)

    ``mean_wait()`` exposes average acquisition latency — the direct
    measurement of synchronization contention.
    """

    def __init__(self, sim: "Simulator", name: str = "lock") -> None:
        super().__init__(sim, capacity=1, name=name)

    def acquire(self) -> ResourceRequest:
        return self.request()

    def mean_wait(self) -> float:
        if self.total_acquisitions == 0:
            return 0.0
        return self.total_wait_time / self.total_acquisitions

    @property
    def locked(self) -> bool:
        return self.count > 0


class Container:
    """Continuous-level resource (e.g. bytes of buffer memory).

    ``put(amount)``/``get(amount)`` return events that trigger once the level
    change fits within ``[0, capacity]``.  Requests are served FIFO per
    direction with opportunistic matching.
    """

    def __init__(
        self,
        sim: "Simulator",
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "container",
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not (0 <= init <= capacity):
            raise ValueError("init must lie within [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._level = float(init)
        self._putters: Deque[tuple[Event, float]] = deque()
        self._getters: Deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        event = Event(self.sim, name=f"cput:{self.name}")
        self._putters.append((event, amount))
        self._dispatch()
        return event

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if amount > self.capacity:
            raise ValueError(f"get({amount}) exceeds capacity {self.capacity}")
        event = Event(self.sim, name=f"cget:{self.name}")
        self._getters.append((event, amount))
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._level += amount
                    event.succeed()
                    self._putters.popleft()
                    progress = True
            if self._getters:
                event, amount = self._getters[0]
                if self._level >= amount:
                    self._level -= amount
                    event.succeed(amount)
                    self._getters.popleft()
                    progress = True

    def __repr__(self) -> str:
        return f"<Container {self.name!r} level={self._level}/{self.capacity}>"
