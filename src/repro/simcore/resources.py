"""Synchronization and queueing resources built on the event kernel.

Provides the building blocks the storage and framework simulators need:

* :class:`Store` — bounded FIFO of items (producer/consumer buffer).
* :class:`FilterStore` — like ``Store`` but ``get`` takes a predicate; kept
  for generic predicates, but each dispatch re-evaluates every queued getter
  against every buffered item — O(getters × items).
* :class:`KeyedStore` — the fast path for key-addressed buffers: items
  indexed by key in a dict with per-key waiter lists, so ``put``/``get`` by
  key are O(1).  PRISMA's prefetch buffer and the page cache ride on this.
* :class:`KeyedIndex` — the synchronous ordered key→item map underneath
  :class:`KeyedStore`, reusable wherever O(1) keyed lookup with FIFO/LRU
  ordering is needed without event semantics.
* :class:`Resource` — counted semaphore with FIFO queuing and usage stats.
* :class:`Lock` — a 1-capacity resource with wait-time accounting, so
  contention (e.g., PRISMA's shared-buffer lock under many PyTorch workers)
  can be both *modelled* and *measured*.
* :class:`Container` — continuous level (bytes of memory, tokens).
"""

from __future__ import annotations

import math
from collections import OrderedDict, deque
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Deque,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from .errors import DuplicateKeyError, SimulationError
from .event import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Simulator


# -- run-queue states ----------------------------------------------------------
#: Request is parked on a resource's waiter list; nothing has been handed
#: to it yet.
WAITING = "waiting"
#: The resource handed the request its result and scheduled it on the
#: kernel's immediate queue; it has not fired yet.
READY = "ready"
#: The request's callbacks are executing (or have executed) — the waiter
#: resumed.
RUNNING = "running"
#: The request was withdrawn (``cancel_get``/``cancel``) before being served.
CANCELLED = "cancelled"


class RequestEvent(Event):
    """An event on a resource's run queue, with an explicit lifecycle state.

    Every pending store/resource operation moves ``WAITING → READY →
    RUNNING`` (or to ``CANCELLED`` when withdrawn): a resource hands its
    result to exactly one waiter, marking it READY as it schedules it on
    the kernel's immediate queue, and the kernel marks it RUNNING when it
    fires.  The states make waiter scheduling observable — diagnostics and
    tests can distinguish "parked" from "woken but not yet resumed" —
    without any extra queue structure beyond the per-key waiter lists.
    """

    __slots__ = ("state",)

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        super().__init__(sim, name)
        self.state = WAITING

    def succeed(self, value: Any = None) -> "Event":
        Event.succeed(self, value)
        self.state = READY
        return self

    def fail(self, exception: BaseException) -> "Event":
        Event.fail(self, exception)
        self.state = READY
        return self

    def _process(self) -> None:
        self.state = RUNNING
        Event._process(self)


def _normalize_item_capacity(capacity: float) -> float:
    """Validate a discrete-store capacity and normalize it to an int.

    Discrete stores count items, so a finite capacity must be a whole
    number; ``float("inf")`` (unbounded) is kept as-is.  Rejects zero,
    negatives, NaN, and fractional floats like ``2.5``.
    """
    if isinstance(capacity, bool) or not isinstance(capacity, (int, float)):
        raise ValueError(f"capacity must be a number, got {capacity!r}")
    if math.isnan(capacity) or capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    if math.isinf(capacity):
        return float("inf")
    if capacity != int(capacity):
        raise ValueError(f"item capacity must be integral, got {capacity}")
    return int(capacity)


class StorePut(RequestEvent):
    """Pending ``put`` request; triggers when the item is accepted."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.sim, name=store._put_name)
        self.item = item


class StoreGet(RequestEvent):
    """Pending ``get`` request; triggers with the retrieved item."""

    __slots__ = ("predicate",)

    def __init__(self, store: "Store", predicate: Optional[Callable[[Any], bool]] = None) -> None:
        super().__init__(store.sim, name=store._get_name)
        self.predicate = predicate


class Store:
    """Bounded FIFO store of discrete items.

    ``put(item)`` returns an event that triggers once capacity allows the
    item in; ``get()`` returns an event that triggers with the oldest item.
    Both queue FIFO, giving fair producer/consumer semantics.

    Stats: ``peak_items`` and time-weighted ``area`` (item-seconds) enable
    occupancy analysis, which PRISMA's control loop consumes.
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf"), name: str = "store") -> None:
        self.sim = sim
        self.capacity = _normalize_item_capacity(capacity)
        self.name = name
        # Interned request-event names: computed once per store instead of
        # one f-string per put/get on the hot path.
        self._put_name = "put:" + name
        self._get_name = "get:" + name
        self.items: Deque[Any] = deque()
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()
        # occupancy statistics
        self.peak_items = 0
        self._area = 0.0
        self._last_change = sim.now

    # -- statistics -----------------------------------------------------------
    def _account(self) -> None:
        now = self.sim.now
        self._area += self.level * (now - self._last_change)
        self._last_change = now

    def mean_occupancy(self) -> float:
        """Time-averaged number of items since creation."""
        self._account()
        elapsed = self.sim.now  # relative to t=0 by convention
        if elapsed <= 0:
            return float(self.level)
        return self._area / elapsed

    @property
    def level(self) -> int:
        return len(self.items)

    def set_capacity(self, capacity: float) -> None:
        """Retarget the capacity at runtime (auto-tuned buffers).

        Raising the capacity admits queued putters immediately; lowering it
        never evicts — the store simply blocks new puts until consumption
        drains below the new limit.
        """
        self.capacity = _normalize_item_capacity(capacity)
        self._dispatch()

    # -- operations -------------------------------------------------------------
    def put(self, item: Any) -> StorePut:
        event = StorePut(self, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self) -> StoreGet:
        event = StoreGet(self)
        self._getters.append(event)
        self._dispatch()
        return event

    def _try_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self._account()
            self.items.append(event.item)
            self.peak_items = max(self.peak_items, len(self.items))
            event.succeed()
            return True
        return False

    def _try_get(self, event: StoreGet) -> bool:
        if self.items:
            self._account()
            event.succeed(self.items.popleft())
            return True
        return False

    def _dispatch(self) -> None:
        """Match queued putters/getters until no progress is possible."""
        progress = True
        while progress:
            progress = False
            while self._putters and self._try_put(self._putters[0]):
                self._putters.popleft()
                progress = True
            while self._getters and self._try_get(self._getters[0]):
                self._getters.popleft()
                progress = True

    def __repr__(self) -> str:
        return (
            f"<Store {self.name!r} {len(self.items)}/{self.capacity} "
            f"putq={len(self._putters)} getq={len(self._getters)}>"
        )


class FilterStore(Store):
    """Store whose ``get`` may demand a specific item via a predicate.

    Getters scan the buffer for the first matching item.  Non-matching
    getters stay queued without blocking others (each getter is evaluated
    independently) — this models a keyed prefetch buffer where consumer *i*
    waits for file *i* regardless of arrival order.
    """

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> StoreGet:  # type: ignore[override]
        event = StoreGet(self, predicate)
        self._getters.append(event)
        self._dispatch()
        return event

    def _try_get(self, event: StoreGet) -> bool:
        if event.predicate is None:
            return super()._try_get(event)
        for idx, item in enumerate(self.items):
            if event.predicate(item):
                self._account()
                del self.items[idx]
                event.succeed(item)
                return True
        return False

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._putters and self._try_put(self._putters[0]):
                self._putters.popleft()
                progress = True
            # Unlike the FIFO store, evaluate *every* getter: a later getter
            # may match while an earlier one keeps waiting.
            remaining: Deque[StoreGet] = deque()
            for getter in self._getters:
                if self._try_get(getter):
                    progress = True
                else:
                    remaining.append(getter)
            self._getters = remaining


class KeyedIndex:
    """Synchronous, insertion-ordered ``key -> item`` map with O(1) ops.

    The storage layer shared by :class:`KeyedStore` (event-based keyed
    buffer) and the OS page-cache model: a dict for O(1) lookup plus
    ordering hooks (``touch`` for LRU recency, ``pop_oldest`` for FIFO/LRU
    eviction).  Holds exactly one item per key; re-inserting a present key
    raises :class:`~repro.simcore.errors.DuplicateKeyError`.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._entries)

    def keys(self):
        return self._entries.keys()

    def items(self):
        return self._entries.items()

    def put(self, key: Hashable, item: Any) -> None:
        if key in self._entries:
            raise DuplicateKeyError(f"key {key!r} already present in index")
        self._entries[key] = item

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Peek at the item for ``key`` without removing it."""
        return self._entries.get(key, default)

    def pop(self, key: Hashable) -> Any:
        """Remove and return the item for ``key`` (KeyError if absent)."""
        return self._entries.pop(key)

    def discard(self, key: Hashable) -> Any:
        """Remove the item for ``key`` if present; returns it or ``None``."""
        return self._entries.pop(key, None)

    def touch(self, key: Hashable) -> None:
        """Mark ``key`` most-recently-used (moves it to the eviction tail)."""
        self._entries.move_to_end(key)

    def pop_oldest(self) -> Tuple[Hashable, Any]:
        """Remove and return the (key, item) at the eviction head."""
        return self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:
        return f"<KeyedIndex {len(self._entries)} keys>"


class KeyedStorePut(RequestEvent):
    """Pending keyed ``put``; triggers when the item is admitted.

    Fails with :class:`DuplicateKeyError` if the key is already buffered —
    a keyed store holds exactly one item per key.
    """

    __slots__ = ("key", "item")

    def __init__(self, store: "KeyedStore", key: Hashable, item: Any) -> None:
        super().__init__(store.sim, name=store._put_name)
        self.key = key
        self.item = item


class KeyedStoreGet(RequestEvent):
    """Pending keyed ``get``; triggers with the item for its key."""

    __slots__ = ("key",)

    def __init__(self, store: "KeyedStore", key: Optional[Hashable]) -> None:
        super().__init__(store.sim, name=store._get_name)
        self.key = key


class KeyedStore(Store):
    """Bounded store addressed by key: O(1) put, O(1) get-by-key.

    This replaces :class:`FilterStore` on PRISMA's hot path.  Where the
    filter store re-evaluates every queued getter against every buffered
    item on each dispatch (O(getters × items) — quadratic across an epoch),
    the keyed store holds items in a :class:`KeyedIndex` and parks each
    getter on a *per-key* waiter list, so an insert wakes exactly the
    consumers of that key.

    Semantics:

    * ``put(key, item)`` queues FIFO behind earlier putters and blocks
      (event-wise) while the store is at capacity — producer fairness is
      identical to :class:`Store`.  A put for a key that is already
      buffered fails with :class:`DuplicateKeyError` instead of silently
      shadowing the first item.
    * ``get(key)`` triggers immediately when the key is buffered (evicting
      the item) or parks on the key's waiter list until a producer delivers
      it.  Waiters for the same key are served FIFO.
    * ``get()`` (no key) takes the oldest buffered item, FIFO.

    Keys must be hashable and not ``None`` (``None`` selects the any-key
    FIFO path).
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf"), name: str = "kstore") -> None:
        super().__init__(sim, capacity, name)
        self._put_name = "kput:" + name
        self._get_name = "kget:" + name
        self.index = KeyedIndex()
        self._waiters: Dict[Hashable, Deque[KeyedStoreGet]] = {}
        self._any_waiters: Deque[KeyedStoreGet] = deque()

    # -- introspection ---------------------------------------------------------
    @property
    def level(self) -> int:
        return len(self.index)

    def contains(self, key: Hashable) -> bool:
        return key in self.index

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Item buffered for ``key`` (without consuming it), else default."""
        return self.index.get(key, default)

    def waiting(self, key: Hashable) -> int:
        """Number of getters currently parked on ``key``."""
        return len(self._waiters.get(key, ()))

    def waiting_keys(self) -> List[Hashable]:
        """Keys with at least one parked getter (diagnostics)."""
        return list(self._waiters)

    # -- operations ------------------------------------------------------------
    def put(self, key: Hashable, item: Any = None) -> KeyedStorePut:  # type: ignore[override]
        event = KeyedStorePut(self, key, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self, key: Optional[Hashable] = None) -> KeyedStoreGet:  # type: ignore[override]
        event = KeyedStoreGet(self, key)
        if key is None:
            if self.index:
                self._account()
                _, item = self.index.pop_oldest()
                event.succeed(item)
                self._dispatch()  # a slot freed: admit a queued putter
            else:
                self._any_waiters.append(event)
        else:
            if key in self.index:
                self._account()
                event.succeed(self.index.pop(key))
                self._dispatch()
            else:
                self._waiters.setdefault(key, deque()).append(event)
        return event

    def discard(self, key: Hashable) -> Any:
        """Drop a buffered item without an event (invalidation hook)."""
        if key not in self.index:
            return None
        self._account()
        item = self.index.pop(key)
        self._dispatch()
        return item

    def cancel_get(self, event: KeyedStoreGet) -> None:
        """Withdraw a parked (not yet served) getter."""
        if event.key is None:
            try:
                self._any_waiters.remove(event)
            except ValueError:
                pass
            else:
                event.state = CANCELLED
                return
        else:
            waiters = self._waiters.get(event.key)
            if waiters is not None:
                try:
                    waiters.remove(event)
                except ValueError:
                    pass
                else:
                    if not waiters:
                        del self._waiters[event.key]
                    event.state = CANCELLED
                    return
        raise SimulationError(f"{event!r} is not waiting on {self.name!r}")

    # -- dispatch --------------------------------------------------------------
    def _try_put(self, event: KeyedStorePut) -> bool:  # type: ignore[override]
        if event.key in self.index:
            # Consumed from the queue but failed: one item per key.
            event.fail(
                DuplicateKeyError(
                    f"put({event.key!r}) on {self.name!r}: key already buffered"
                )
            )
            return True
        if self.level >= self.capacity:
            return False
        self._account()
        self.index.put(event.key, event.item)
        self.peak_items = max(self.peak_items, self.level)
        event.succeed()
        self._serve_waiters(event.key)
        return True

    def _serve_waiters(self, key: Hashable) -> None:
        """Hand a just-inserted key to its first parked getter, if any."""
        waiters = self._waiters.get(key)
        if waiters:
            waiter = waiters.popleft()
            if not waiters:
                del self._waiters[key]
            self._account()
            waiter.succeed(self.index.pop(key))
            return
        if self._any_waiters:
            waiter = self._any_waiters.popleft()
            self._account()
            _, item = self.index.pop_oldest()
            waiter.succeed(item)

    def _dispatch(self) -> None:
        # Waiter hand-off happens inside _try_put (an insert wakes exactly
        # the consumers of that key), so dispatch only admits putters; each
        # hand-off frees a slot, letting the loop admit the next putter.
        while self._putters and self._try_put(self._putters[0]):
            self._putters.popleft()

    def __repr__(self) -> str:
        waiting = sum(len(w) for w in self._waiters.values()) + len(self._any_waiters)
        return (
            f"<KeyedStore {self.name!r} {self.level}/{self.capacity} "
            f"putq={len(self._putters)} waiters={waiting}>"
        )


class ResourceRequest(RequestEvent):
    """Pending acquisition of a :class:`Resource` slot."""

    __slots__ = ("resource", "_issued_at")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim, name=resource._req_name)
        self.resource = resource
        self._issued_at = resource.sim.now

    # Allow `with (yield res.request()):` style usage in process bodies.
    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.resource.release(self)


class Resource:
    """Counted resource (semaphore) with FIFO queueing and usage metering.

    ``request()`` yields an event; once triggered the caller holds one slot
    until ``release(request)``.  Tracks time-weighted utilization and total
    queue wait, which the experiments use for thread-activity CDFs.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._req_name = "req:" + name
        self.users: List[ResourceRequest] = []
        self.queue: Deque[ResourceRequest] = deque()
        # metering
        self.total_wait_time = 0.0
        self.total_acquisitions = 0
        self._busy_area = 0.0
        self._last_change = sim.now

    def _account(self) -> None:
        now = self.sim.now
        self._busy_area += len(self.users) * (now - self._last_change)
        self._last_change = now

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def utilization(self) -> float:
        """Mean fraction of capacity in use since creation."""
        self._account()
        elapsed = self.sim.now
        if elapsed <= 0:
            return 0.0
        return self._busy_area / (elapsed * self.capacity)

    def request(self) -> ResourceRequest:
        event = ResourceRequest(self)
        if len(self.users) < self.capacity:
            self._grant(event)
        else:
            self.queue.append(event)
        return event

    def _grant(self, event: ResourceRequest) -> None:
        self._account()
        self.users.append(event)
        self.total_acquisitions += 1
        self.total_wait_time += self.sim.now - event._issued_at
        event.succeed(event)

    def release(self, request: ResourceRequest) -> None:
        if request not in self.users:
            raise SimulationError(
                f"release of {request!r} which does not hold {self.name!r}"
            )
        self._account()  # account the interval *before* shrinking users
        self.users.remove(request)
        if self.queue:
            self._grant(self.queue.popleft())

    def cancel(self, request: ResourceRequest) -> None:
        """Withdraw a queued (not yet granted) request."""
        try:
            self.queue.remove(request)
        except ValueError:
            raise SimulationError(f"{request!r} is not queued on {self.name!r}") from None
        request.state = CANCELLED

    def __repr__(self) -> str:
        return f"<Resource {self.name!r} {self.count}/{self.capacity} queue={len(self.queue)}>"


class Lock(Resource):
    """Binary lock: a capacity-1 resource with a convenience API.

    Usage inside a process::

        req = lock.acquire()
        yield req
        try:
            ...critical section...
        finally:
            lock.release(req)

    ``mean_wait()`` exposes average acquisition latency — the direct
    measurement of synchronization contention.
    """

    def __init__(self, sim: "Simulator", name: str = "lock") -> None:
        super().__init__(sim, capacity=1, name=name)

    def acquire(self) -> ResourceRequest:
        return self.request()

    def mean_wait(self) -> float:
        if self.total_acquisitions == 0:
            return 0.0
        return self.total_wait_time / self.total_acquisitions

    @property
    def locked(self) -> bool:
        return self.count > 0


class Container:
    """Continuous-level resource (e.g. bytes of buffer memory).

    ``put(amount)``/``get(amount)`` return events that trigger once the level
    change fits within ``[0, capacity]``.  Requests are served FIFO per
    direction with opportunistic matching.
    """

    def __init__(
        self,
        sim: "Simulator",
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "container",
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not (0 <= init <= capacity):
            raise ValueError("init must lie within [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._put_name = "cput:" + name
        self._get_name = "cget:" + name
        self._level = float(init)
        self._putters: Deque[tuple[Event, float]] = deque()
        self._getters: Deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        event = Event(self.sim, name=self._put_name)
        self._putters.append((event, amount))
        self._dispatch()
        return event

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if amount > self.capacity:
            raise ValueError(f"get({amount}) exceeds capacity {self.capacity}")
        event = Event(self.sim, name=self._get_name)
        self._getters.append((event, amount))
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._level += amount
                    event.succeed()
                    self._putters.popleft()
                    progress = True
            if self._getters:
                event, amount = self._getters[0]
                if self._level >= amount:
                    self._level -= amount
                    event.succeed(amount)
                    self._getters.popleft()
                    progress = True

    def __repr__(self) -> str:
        return f"<Container {self.name!r} level={self._level}/{self.capacity}>"
