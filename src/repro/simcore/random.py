"""Deterministic, named RNG streams for simulations.

A single experiment seed fans out into independent per-component streams
(``streams.stream("shuffle.epoch3")``), so adding a new random consumer never
perturbs the draws of existing ones — the standard trick for reproducible
parallel simulation.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RandomStreams:
    """Factory of independent named :class:`numpy.random.Generator` streams.

    Each stream is seeded by ``SHA-256(root_seed || name)`` so streams are
    statistically independent and stable across processes and platforms.
    """

    def __init__(self, root_seed: int = 0) -> None:
        if root_seed < 0:
            raise ValueError("root_seed must be non-negative")
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def seed_for(self, name: str) -> int:
        """The derived 64-bit seed for a stream name (pure function)."""
        digest = hashlib.sha256(f"{self.root_seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def stream(self, name: str) -> np.random.Generator:
        """The (cached) generator for ``name``; same name → same object."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(self.seed_for(name))
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """A brand-new generator for ``name`` (not cached, state reset)."""
        return np.random.default_rng(self.seed_for(name))

    def spawn(self, name: str) -> "RandomStreams":
        """A child stream-factory rooted at a derived seed."""
        return RandomStreams(self.seed_for(name) % (2**63))
