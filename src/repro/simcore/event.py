"""Events: the unit of coordination in the simulation kernel.

An :class:`Event` is a one-shot occurrence that processes may wait on by
``yield``-ing it.  Events carry a *value* (delivered to every waiter) or an
exception (re-raised in every waiter).  They are deliberately minimal — all
higher-level synchronization (timeouts, stores, locks, process joins) is built
from this single primitive, mirroring the architecture of SimPy while staying
dependency-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional

from .errors import EventAlreadyTriggered

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Simulator

#: Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class Event:
    """A one-shot occurrence with a value or an exception.

    Lifecycle::

        e = Event(sim)        # pending
        e.succeed(value)      # triggered OK   -> waiters resume with value
        e.fail(exc)           # triggered FAIL -> waiters get exc re-raised

    Once triggered an event is immutable; triggering twice raises
    :class:`EventAlreadyTriggered`.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_scheduled", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        #: Callables invoked with this event when it is processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._scheduled = False
        self.name = name

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` has been called."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event left the queue)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully (not failed)."""
        if not self.triggered:
            raise ValueError(f"{self!r} has not been triggered")
        return self._exception is None

    @property
    def value(self) -> Any:
        """The success value, or raise the failure exception."""
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise ValueError(f"{self!r} has no value yet")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger successfully with ``value`` and enqueue for processing."""
        if self._value is not _PENDING or self._exception is not None:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._value = value
        self.sim._enqueue_now(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger with an exception; waiters will have it re-raised."""
        if self._value is not _PENDING or self._exception is not None:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._value = None
        self.sim._enqueue_now(self)
        return self

    # -- waiting ------------------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn(event)`` to run when the event is processed.

        If the event was already processed the callback runs immediately —
        this keeps late joiners correct.
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def _process(self) -> None:
        """Run callbacks (kernel-internal)."""
        callbacks, self.callbacks = self.callbacks, None
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state} at t={self.sim.now:.6g}>"


def chain_result(
    inner: Event, done: Event, transform: Optional[Callable[[Any], Any]] = None
) -> Event:
    """Forward ``inner``'s outcome to ``done`` when it settles.

    The canonical glue between an internal event and a caller-facing one:
    success forwards the value (optionally mapped through ``transform``),
    failure forwards the exception.  Returns ``done`` so call sites can
    build and forward in one expression.
    """

    def _settle(ev: Event) -> None:
        if ev.ok:
            done.succeed(ev.value if transform is None else transform(ev.value))
        else:
            done.fail(ev.exception)

    inner.add_callback(_settle)
    return done


class Timeout(Event):
    """An event that triggers automatically after ``delay`` sim-time units.

    The timeout only *triggers* (becomes observable via :attr:`triggered`)
    when the clock reaches it — not at construction — so condition events
    like :class:`AnyOf` see an accurate picture of which waits completed.
    """

    __slots__ = ("delay", "_pending_value")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            from .errors import SchedulingError

            raise SchedulingError(f"negative timeout delay: {delay}")
        # Note: no formatted per-instance name — timeouts are the kernel's
        # highest-volume allocation and the f-string dominated their cost;
        # __repr__ renders the delay lazily instead.
        super().__init__(sim)
        self.delay = float(delay)
        self._pending_value = value
        self.sim._enqueue_at(self.sim.now + self.delay, self)

    def _process(self) -> None:
        self._value = self._pending_value
        callbacks, self.callbacks = self.callbacks, None
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<Timeout({self.delay:g}) {state} at t={self.sim.now:.6g}>"


class AnyOf(Event):
    """Triggers as soon as *any* of the given events triggers.

    Value is a dict mapping the events that have triggered so far to their
    values (like SimPy's condition value).
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: List[Event]) -> None:
        super().__init__(sim, name="any_of")
        self.events = list(events)
        if not self.events:
            self._value = {}
            sim._enqueue_now(self)
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.exception)  # propagate first failure
            return
        self.succeed({e: e._value for e in self.events if e.triggered and e.ok})


class AllOf(Event):
    """Triggers once *all* of the given events have triggered.

    Value is a dict of event -> value for every child.
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: List[Event]) -> None:
        super().__init__(sim, name="all_of")
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            self._value = {}
            sim._enqueue_now(self)
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({e: e._value for e in self.events})
