"""Deprecated home of the telemetry primitives — use :mod:`repro.telemetry`.

Everything that used to live here (``Tracer``, ``TraceRecord``,
``TimeWeightedGauge``, ``GaugeSample``, ``CounterSet``) moved into the
unified :mod:`repro.telemetry` subsystem.  This module remains as an
import-compatible shim for one release: attribute access resolves to the
new home and emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from typing import List

_MOVED = ("Tracer", "TraceRecord", "TimeWeightedGauge", "GaugeSample", "CounterSet")


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.simcore.tracing.{name} is deprecated; "
            f"import it from repro.telemetry instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from .. import telemetry

        return getattr(telemetry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> List[str]:
    return sorted(list(globals()) + list(_MOVED))
