"""Reference kernel: the pre-slot-scheduler ``(time, sequence)`` heap.

This module preserves the previous generation of the event loop — one
global binary heap ordered by ``(time, sequence)``, a bootstrap
:class:`~repro.simcore.event.Event` per process, per-timeout formatted
names — exactly as it shipped before the slot scheduler landed in
:mod:`repro.simcore.kernel`.  It exists for two consumers:

* ``tests/test_simcore_scheduler.py`` — the determinism property suite
  runs randomized scenarios against both kernels and asserts identical
  event-firing order (the ``(time, slot-FIFO)`` contract equals the old
  ``(time, sequence)`` contract).
* ``benchmarks/bench_simcore.py`` — the BENCH_simcore events/sec gate
  measures the production kernel against this one on the same machine,
  so the ≥1.5× speedup floor is independent of runner hardware.

It shares :mod:`repro.simcore.event` and :mod:`repro.simcore.resources`
with the production kernel — only the scheduler and process-switch code
differ — and is **not** part of the public API.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from .errors import Interrupt, ProcessError, SchedulingError, StopSimulation
from .event import AllOf, AnyOf, Event, Timeout

ProcessGenerator = Generator[Event, Any, Any]


class HeapProcess(Event):
    """The previous process implementation: bootstrap via a full Event."""

    __slots__ = ("generator", "_waiting_on", "_interrupts", "_started")

    def __init__(
        self, sim: "HeapSimulator", generator: ProcessGenerator, name: str = ""
    ) -> None:
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        self._interrupts: List[Interrupt] = []
        self._started = False
        # Bootstrap: a dedicated Event carrying the first resume.
        boot = Event(sim, name=f"boot:{self.name}")
        boot.add_callback(self._resume)
        boot.succeed(None)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        if not self.is_alive:
            raise SchedulingError(f"cannot interrupt dead process {self.name!r}")
        self._interrupts.append(Interrupt(cause))
        target = self._waiting_on
        if target is not None:
            self._waiting_on = None
            if target.callbacks is not None and self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
            wake = Event(self.sim, name=f"interrupt:{self.name}")
            wake.add_callback(self._resume)
            wake.succeed(None)

    def _resume(self, event: Optional[Event]) -> None:
        self._waiting_on = None
        self.sim._active_process = self
        try:
            while True:
                if self._interrupts and self._started:
                    exc: BaseException = self._interrupts.pop(0)
                    target = self.generator.throw(exc)
                elif event is not None and event._exception is not None:
                    target = self.generator.throw(event._exception)
                else:
                    target = self.generator.send(event._value if event is not None else None)
                    self._started = True
                if not isinstance(target, Event):
                    raise TypeError(
                        f"process {self.name!r} yielded {target!r}; processes "
                        "must yield Event instances"
                    )
                if self._interrupts:
                    event = None
                    continue
                if target.processed:
                    event = target
                    continue
                self._waiting_on = target
                target.add_callback(self._resume)
                return
        except StopIteration as stop:
            self.succeed(stop.value)
        except StopSimulation:
            raise
        except BaseException as exc:  # noqa: BLE001
            err = ProcessError(f"process {self.name!r} failed: {exc!r}")
            err.__cause__ = exc
            had_joiners = bool(self.callbacks)
            self.fail(err)
            if not had_joiners:
                self.sim._defunct.append(err)
        finally:
            self.sim._active_process = None


class HeapSimulator:
    """The previous simulator: one global ``(time, sequence, event)`` heap.

    API-compatible with :class:`repro.simcore.kernel.Simulator` for
    everything the differential tests and the benchmark workload touch.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now: float = float(start_time)
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[HeapProcess] = None
        self._defunct: List[ProcessError] = []
        self._stopping = False
        self.events_processed = 0
        self.telemetry: Optional[Any] = None

    # -- scheduling primitives -------------------------------------------------
    def _enqueue_at(self, time: float, event: Event) -> None:
        if time < self.now:
            raise SchedulingError(f"cannot schedule at t={time} before now={self.now}")
        if event._scheduled:
            raise SchedulingError(f"{event!r} is already scheduled")
        event._scheduled = True
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1

    def _enqueue_now(self, event: Event) -> None:
        self._enqueue_at(self.now, event)

    # -- event factories -------------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        t = Timeout(self, delay, value)
        # Replicate the old per-timeout formatted name (part of the
        # allocation cost the slot kernel removed).
        t.name = f"timeout({delay:g})"
        return t

    def process(self, generator: ProcessGenerator, name: str = "") -> HeapProcess:
        return HeapProcess(self, generator, name=name)

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> Timeout:
        delay = max(float(time) - self.now, 0.0)
        ev = self.timeout(delay)
        ev.add_callback(lambda _ev: fn(*args))
        return ev

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, list(events))

    @property
    def active_process(self) -> Optional[HeapProcess]:
        return self._active_process

    def stop(self) -> None:
        self._stopping = True

    # -- event loop -------------------------------------------------------------
    def peek(self) -> float:
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        if not self._heap:
            raise SchedulingError("step() on an empty event queue")
        time, _, event = heapq.heappop(self._heap)
        self.now = time
        event._process()
        self.events_processed += 1
        if self._defunct:
            raise self._defunct.pop(0)

    def run(self, until: Optional[Any] = None) -> Any:
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self.now:
                raise SchedulingError(f"run(until={stop_time}) is in the past")

        self._stopping = False
        try:
            while self._heap:
                if stop_event is not None and stop_event.triggered:
                    return stop_event.value
                if stop_time is not None and self.peek() > stop_time:
                    self.now = stop_time
                    return None
                if self._stopping:
                    return None
                self.step()
        except StopSimulation:
            return None
        if stop_event is not None:
            if stop_event.triggered:
                return stop_event.value
            raise SchedulingError(
                "run(until=event) exhausted the queue before the event fired"
            )
        if stop_time is not None:
            self.now = stop_time
        return None
