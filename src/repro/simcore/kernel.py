"""The simulation kernel: event loop, processes, and the simulator facade.

The kernel implements cooperative, generator-based processes scheduled by a
*slot* scheduler.  Time is a float in *seconds* by convention of this
repository (storage latencies are microseconds = 1e-6).

Scheduler layout (the hot path of every benchmark in this repository):

* ``_now_queue`` — a FIFO of the events at the **current** timestamp.  All
  immediate scheduling (``succeed``/``fail`` via ``_enqueue_now``,
  zero-delay timeouts, process bootstraps, interrupt wake-ups) appends
  here directly and never touches the heap.
* ``_slots`` — ``time -> deque`` for strictly-future timestamps.  Events
  scheduled at the same future time share one slot deque in scheduling
  order, so the heap holds one entry per *distinct* timestamp instead of
  one per event.
* ``_times`` — a binary heap of the distinct future timestamps.

Determinism contract: events fire in ``(time, slot-FIFO)`` order — the
clock advances through timestamps in ascending order, and all events at
one timestamp fire in the order they were scheduled.  This is exactly the
ordering of the previous ``(time, sequence)`` heap (kept as a reference
implementation in :mod:`repro.simcore._heapkernel` for differential
testing), so whole experiments replay bit-identically across both.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, Iterable, List, Optional

from .errors import (
    Interrupt,
    ProcessError,
    SchedulingError,
    StopSimulation,
)
from .event import AllOf, AnyOf, Event, Timeout

#: Type alias for process generator functions.
ProcessGenerator = Generator[Event, Any, Any]


class _Resume:
    """A queue entry that resumes a process directly — no Event needed.

    Process bootstraps and interrupt wake-ups used to allocate a full
    :class:`Event` (callbacks list, formatted name, triggered-state
    bookkeeping) whose only purpose was to call ``process._resume`` once.
    This replaces them with the smallest thing the scheduler can hold: an
    object whose ``_process`` resumes the generator with ``None``.
    """

    __slots__ = ("process",)

    def __init__(self, process: "Process") -> None:
        self.process = process

    def _process(self) -> None:
        self.process._resume(None)


class Process(Event):
    """A running process; it is also an event that triggers on termination.

    A process wraps a generator that yields :class:`Event` instances.  When a
    yielded event triggers, the process resumes with the event's value (or the
    event's exception thrown in).  When the generator returns, the process
    event succeeds with the return value; if it raises, the process fails.

    Waiting on a process (``yield other_process``) therefore joins it.
    """

    __slots__ = ("generator", "_waiting_on", "_interrupts", "_started")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = "") -> None:
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        #: The event this process is currently suspended on (None if runnable).
        self._waiting_on: Optional[Event] = None
        self._interrupts: List[Interrupt] = []
        #: Interrupts may only be *delivered* once the generator has reached
        #: its first yield — throwing into an unstarted generator would
        #: raise at the def line, outside any try/except in the body.
        self._started = False
        # Bootstrap: resume the generator at time `now` via the immediate
        # queue — same FIFO position a bootstrap Event used to get.
        sim._now_queue.append(_Resume(self))

    @property
    def is_alive(self) -> bool:
        """True until the underlying generator has finished."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a dead process is an error.  Interrupting a process that
        is already scheduled to resume queues the interrupt to be delivered
        at that resumption.
        """
        if not self.is_alive:
            raise SchedulingError(f"cannot interrupt dead process {self.name!r}")
        self._interrupts.append(Interrupt(cause))
        target = self._waiting_on
        if target is not None:
            # Detach from the event we were waiting on, resume immediately.
            self._waiting_on = None
            if target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
            self.sim._now_queue.append(_Resume(self))

    # -- kernel internals ----------------------------------------------------
    def _resume(self, event: Optional[Event]) -> None:
        """Advance the generator with the outcome of ``event``."""
        self._waiting_on = None
        sim = self.sim
        sim._active_process = self
        gen = self.generator
        interrupts = self._interrupts
        try:
            while True:
                if interrupts and self._started:
                    target = gen.throw(interrupts.pop(0))
                elif event is not None and event._exception is not None:
                    target = gen.throw(event._exception)
                else:
                    target = gen.send(event._value if event is not None else None)
                    self._started = True
                # The generator yielded `target`; decide whether to suspend.
                if not isinstance(target, Event):
                    raise TypeError(
                        f"process {self.name!r} yielded {target!r}; processes "
                        "must yield Event instances"
                    )
                if interrupts:
                    # An interrupt arrived before the process could suspend:
                    # deliver it at this yield point.
                    event = None
                    continue
                callbacks = target.callbacks
                if callbacks is None:
                    # Already-processed event: continue synchronously.
                    event = target
                    continue
                self._waiting_on = target
                callbacks.append(self._resume)
                return
        except StopIteration as stop:
            self.succeed(stop.value)
        except StopSimulation:
            raise
        except BaseException as exc:  # noqa: BLE001 - process bodies may raise anything
            # Process died: propagate to joiners, or abort the run when nobody
            # is listening (silent failures hide bugs).
            self._exception_terminate(exc)
        finally:
            sim._active_process = None

    def _exception_terminate(self, exc: BaseException) -> None:
        err = ProcessError(f"process {self.name!r} failed: {exc!r}")
        err.__cause__ = exc
        had_joiners = bool(self.callbacks)
        self.fail(err)
        if not had_joiners:
            # No joiner will ever observe this failure — crash the simulation
            # so the bug surfaces instead of silently losing a process.
            self.sim._defunct.append(err)


class Simulator:
    """Discrete-event simulator facade.

    Typical use::

        sim = Simulator()

        def worker(sim, wid):
            yield sim.timeout(1.0)
            return wid * 2

        p = sim.process(worker(sim, 21))
        sim.run()
        assert p.value == 42
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now: float = float(start_time)
        #: FIFO of events at the current timestamp (the active slot).
        self._now_queue: Deque[Any] = deque()
        #: Future timestamp -> FIFO slot of its events, in scheduling order.
        self._slots: Dict[float, Deque[Any]] = {}
        #: Heap of the distinct future timestamps with a pending slot.
        self._times: List[float] = []
        self._active_process: Optional[Process] = None
        self._defunct: List[ProcessError] = []
        self._stopping = False
        #: Events processed since construction (``run`` + ``step``); the
        #: denominator of the BENCH_simcore events/sec metric.
        self.events_processed = 0
        #: observability hook — a :class:`repro.telemetry.Telemetry` hub, or
        #: None (the default: instrumented layers skip all recording).  Set
        #: via ``Telemetry.attach(sim)``, never assigned directly.
        self.telemetry: Optional[Any] = None

    # -- telemetry hooks -------------------------------------------------------
    def span_begin(self, name: str, track: str, cat: str = "misc", **args: Any) -> Optional[Any]:
        """Open a telemetry span at the current sim time (None when untraced).

        Convenience for call sites that don't want to touch the hub API;
        hot paths should load ``sim.telemetry`` once and call it directly.
        """
        tel = self.telemetry
        if tel is None:
            return None
        return tel.begin(name, track, cat, **args)

    def span_end(self, span: Optional[Any], **args: Any) -> None:
        """Close a span from :meth:`span_begin` (no-op on None)."""
        tel = self.telemetry
        if tel is not None and span is not None:
            tel.end(span, **args)

    # -- scheduling primitives (kernel-internal) ------------------------------
    def _enqueue_at(self, time: float, event: Event) -> None:
        if event._scheduled:
            raise SchedulingError(f"{event!r} is already scheduled")
        if time <= self.now:
            if time < self.now:
                raise SchedulingError(
                    f"cannot schedule at t={time} before now={self.now}"
                )
            # Current-timestamp fast path: straight onto the active slot.
            event._scheduled = True
            self._now_queue.append(event)
            return
        event._scheduled = True
        slot = self._slots.get(time)
        if slot is None:
            self._slots[time] = slot = deque()
            heapq.heappush(self._times, time)
        slot.append(event)

    def _enqueue_now(self, event: Event) -> None:
        """Schedule at the current time — the no-heap immediate path."""
        if event._scheduled:
            raise SchedulingError(f"{event!r} is already scheduled")
        event._scheduled = True
        self._now_queue.append(event)

    # -- event factories -------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """A fresh untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event triggering ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process from a generator; returns its join-event."""
        return Process(self, generator, name=name)

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> Timeout:
        """Run ``fn(*args)`` at absolute simulated ``time`` (clamped to now).

        The scheduling primitive of the fault-injection subsystem: a
        :class:`~repro.faults.FaultPlan` is a list of absolute-time actions,
        and ``at`` turns each one into a kernel event without the caller
        writing a one-shot generator per action.  Returns the underlying
        :class:`Timeout` so callers may join or inspect it.
        """
        delay = max(float(time) - self.now, 0.0)
        ev = self.timeout(delay)
        ev.add_callback(lambda _ev: fn(*args))
        return ev

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, list(events))

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing (None outside process context)."""
        return self._active_process

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopping = True

    # -- event loop -------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` if the queue is empty."""
        if self._now_queue:
            return self.now
        times = self._times
        return times[0] if times else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        q = self._now_queue
        if not q:
            times = self._times
            if not times:
                raise SchedulingError("step() on an empty event queue")
            t = heapq.heappop(times)
            self._now_queue = q = self._slots.pop(t)
            self.now = t
        q.popleft()._process()
        self.events_processed += 1
        if self._defunct:
            raise self._defunct.pop(0)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, ``until`` time passes, or event fires.

        ``until`` may be:

        * ``None`` — run until no events remain.
        * a float — run until simulated time reaches it (clock is advanced to
          exactly ``until`` even if no event lands there).
        * an :class:`Event` — run until it triggers; returns its value.
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self.now:
                raise SchedulingError(f"run(until={stop_time}) is in the past")

        self._stopping = False
        if stop_event is None and stop_time is None:
            return self._run_to_exhaustion()
        try:
            while self._now_queue or self._times:
                if stop_event is not None and stop_event.triggered:
                    return stop_event.value
                if stop_time is not None and self.peek() > stop_time:
                    self.now = stop_time
                    return None
                if self._stopping:
                    return None
                self.step()
        except StopSimulation:
            return None
        if stop_event is not None:
            if stop_event.triggered:
                return stop_event.value
            raise SchedulingError(
                "run(until=event) exhausted the queue before the event fired"
            )
        if stop_time is not None:
            self.now = stop_time
        return None

    def _run_to_exhaustion(self) -> None:
        """The hot loop for ``run()`` with no stop condition.

        Drains the active slot FIFO, then advances the clock to the next
        slot, with everything the per-event path needs held in locals.
        """
        times = self._times
        slots = self._slots
        defunct = self._defunct
        pop_time = heapq.heappop
        processed = 0
        try:
            while True:
                q = self._now_queue
                if not q:
                    if not times:
                        return None
                    t = pop_time(times)
                    self._now_queue = q = slots.pop(t)
                    self.now = t
                while q:
                    q.popleft()._process()
                    processed += 1
                    if defunct:
                        raise defunct.pop(0)
                    if self._stopping:
                        return None
        except StopSimulation:
            return None
        finally:
            self.events_processed += processed
