"""Canonical kernel workloads: the substrate for BENCH_simcore and profiling.

:func:`canonical_mixed_workload` exercises every scheduler path the real
benchmarks hit — keyed producer/consumer hand-offs (the prefetch buffer
shape), quantized same-timestamp timeout batches (device-model shape),
short-lived process fan-out/fan-in (RPC/serve shape), zero-delay
ping-pong (control-plane shape), timeout races (retry shape), and a
contended :class:`~repro.simcore.resources.Resource` — using only the
public facade, so it runs unchanged on the production slot kernel and on
the reference heap kernel (:mod:`repro.simcore._heapkernel`).

Everything is seeded and quantized: two runs on the same kernel fire the
same events in the same order, which the benchmark asserts via the
returned fingerprint.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from .random import RandomStreams
from .resources import KeyedStore, Resource

#: Delay grid (seconds).  Coarse quantization forces heavy timestamp
#: sharing, the case the slot scheduler is built for.
_GRID = 0.001


def canonical_mixed_workload(sim: Any, scale: int = 4) -> List[Tuple[str, float, int]]:
    """Build the canonical mixed workload on ``sim``; returns the trace log.

    ``sim`` is any kernel facade (``Simulator`` or ``HeapSimulator``).
    The caller runs ``sim.run()``; afterwards the returned ``log`` — a
    list of ``(tag, sim_time, detail)`` rows appended in execution order —
    fingerprints the exact event-firing order for determinism checks.
    """
    streams = RandomStreams(0x5EED)
    rng = streams.stream("simcore-bench")
    log: List[Tuple[str, float, int]] = []

    # 1. keyed pipeline: producers hand samples to key-addressed consumers.
    store = KeyedStore(sim, capacity=32, name="pipe")
    n_keys = 96 * scale
    keys = list(range(n_keys))
    delays = [int(rng.integers(1, 5)) * _GRID for _ in keys]

    def producer(sim, chunk):
        for k in chunk:
            yield sim.timeout(delays[k])
            yield store.put(k, k * 2)

    def consumer(sim, chunk):
        total = 0
        for k in chunk:
            item = yield store.get(k)
            total += item
        log.append(("pipe", sim.now, total))
        return total

    for part in range(6):
        chunk = keys[part::6]
        sim.process(producer(sim, chunk))
        sim.process(consumer(sim, chunk))

    # 2. device-shaped slot batches: many tickers on one quantized grid.
    def ticker(sim, n, tid):
        for _ in range(n):
            yield sim.timeout(_GRID)
        log.append(("tick", sim.now, tid))

    for tid in range(8 * scale):
        sim.process(ticker(sim, 60, tid))

    # 3. fan-out/fan-in process churn (bootstrap + join cost).
    def child(sim, d):
        yield sim.timeout(d)
        return d

    def fanout(sim, rounds, fid):
        for r in range(rounds):
            kids = [sim.process(child(sim, (i % 3) * _GRID)) for i in range(8)]
            yield sim.all_of(kids)
        log.append(("fan", sim.now, fid))

    for fid in range(3 * scale):
        sim.process(fanout(sim, 12, fid))

    # 4. zero-delay ping-pong: the immediate-queue fast path.
    def pingpong(sim, n, pid):
        for _ in range(n):
            yield sim.timeout(0.0)
        log.append(("ping", sim.now, pid))

    for pid in range(4 * scale):
        sim.process(pingpong(sim, 120, pid))

    # 5. timeout races (RPC-retry shape): event vs deadline via any_of.
    def racer(sim, n, rid):
        wins = 0
        for i in range(n):
            ev = sim.event()
            sim.at(sim.now + _GRID / 2, ev.succeed, i)
            result = yield sim.any_of([ev, sim.timeout(_GRID * 2)])
            wins += 1 if ev in result else 0
        log.append(("race", sim.now, wins))

    for rid in range(3 * scale):
        sim.process(racer(sim, 30, rid))

    # 6. contended resource (semaphore queue churn).
    lanes = Resource(sim, capacity=4, name="lanes")

    def worker(sim, n, wid):
        for _ in range(n):
            req = lanes.request()
            yield req
            yield sim.timeout(_GRID)
            lanes.release(req)
        log.append(("lane", sim.now, wid))

    for wid in range(12 * scale):
        sim.process(worker(sim, 25, wid))

    return log
