"""PRISMA ↔ PyTorch integration (paper §IV).

The paper: *"because PyTorch uses processes instead of threads, we
implemented an inter-process communication client-server through UNIX
Domain Sockets.  For each spawned process, a PRISMA client instance is
created to intercept all read invocations and submit them to the server to
be handled.  This required changing 35 LoC."*

Model:

* :class:`PrismaUDSServer` — one dispatch loop (epoll-style) in the PRISMA
  process.  Every request pays a serialized per-message service cost
  (socket read, demux, buffer bookkeeping); the possibly-blocking buffer
  wait itself is handed to a helper so one cold request cannot head-of-line
  block the others.  This serialized per-request cost is the
  *consumer/producer synchronization* the paper identifies as PRISMA's
  bottleneck beyond 8 workers (§V-B).
* :class:`PrismaTorchClient` — the per-worker client; a
  :class:`~repro.storage.posix.PosixLike`, so it drops into
  :class:`~repro.frameworks.pytorch.TorchDataLoader`'s ``posix_factory``
  unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from ...simcore.event import Event, chain_result
from ...simcore.resources import Store
from ...telemetry import CounterSet, TimeWeightedGauge
from ...storage.posix import BadFileDescriptor, PosixLike
from ..stage import PrismaStage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...simcore.kernel import Simulator

#: Serialized server-side cost per request: socket read + demux + reply
#: write on one core (epoll loop).  ~25 µs is a measured UDS round-trip
#: handling cost for small messages on a Xeon of the paper's vintage.
SERVER_SERVICE_TIME = 25e-6
#: Client-side cost to marshal/send a request and unmarshal the reply.
CLIENT_OVERHEAD = 8e-6


class PrismaUDSServer:
    """The PRISMA-side endpoint of the UNIX-domain-socket protocol."""

    def __init__(
        self,
        sim: "Simulator",
        stage: PrismaStage,
        service_time: float = SERVER_SERVICE_TIME,
        name: str = "prisma.uds",
    ) -> None:
        if service_time < 0:
            raise ValueError("service_time must be non-negative")
        self.sim = sim
        self.stage = stage
        self.service_time = service_time
        self.name = name
        self._requests: Store = Store(sim, name=f"{name}.reqs")
        self.counters = CounterSet()
        #: requests currently queued or being handled (contention signal)
        self.backlog = TimeWeightedGauge(sim, 0, name=f"{name}.backlog")
        sim.process(self._dispatch_loop(), name=f"{name}.loop")

    def submit(self, path: str) -> Event:
        """Client entry point: request one whole-file read."""
        reply = Event(self.sim, name=f"{self.name}.reply")
        self.counters.add("requests")
        self.backlog.increment()
        self._requests.put((path, reply))
        return reply

    def _dispatch_loop(self):
        while True:
            path, reply = yield self._requests.get()
            # Serialized portion: one message handled at a time.
            if self.service_time > 0:
                yield self.sim.timeout(self.service_time)
            # The (possibly blocking) buffer fetch runs off-loop so a
            # not-yet-produced sample doesn't stall every other worker.
            self.sim.process(self._fulfil(path, reply), name=f"{self.name}.fulfil")

    def _fulfil(self, path: str, reply: Event):
        try:
            nbytes = yield self.stage.read_whole(path)
        except Exception as exc:  # noqa: BLE001 - surface to the client
            self.backlog.decrement()
            reply.fail(exc)
            return
        self.counters.add("served")
        self.counters.add("bytes", nbytes)
        self.backlog.decrement()
        reply.succeed(nbytes)


class PrismaTorchClient(PosixLike):
    """Per-worker PRISMA client (the paper's per-process client instance).

    Data reads travel over the socket to the server; metadata operations
    (``open``/``fstat``/``close``) are resolved locally against the shared
    catalog of sizes, mirroring the prototype where only ``read`` is
    intercepted (§IV: "PRISMA's POSIX interface exposes a single read
    method").
    """

    def __init__(
        self,
        sim: "Simulator",
        server: PrismaUDSServer,
        size_lookup,
        worker_id: int = -1,
        client_overhead: float = CLIENT_OVERHEAD,
    ) -> None:
        if client_overhead < 0:
            raise ValueError("client_overhead must be non-negative")
        self.sim = sim
        self.server = server
        self.size_lookup = size_lookup
        self.worker_id = worker_id
        self.client_overhead = client_overhead
        self._next_fd = 1
        self._open: Dict[int, str] = {}
        self.counters = CounterSet()

    # -- metadata (local) ---------------------------------------------------------
    def open(self, path: str) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self._open[fd] = path
        return fd

    def close(self, fd: int) -> None:
        if fd not in self._open:
            raise BadFileDescriptor(fd)
        del self._open[fd]

    def fstat_size(self, fd: int) -> int:
        if fd not in self._open:
            raise BadFileDescriptor(fd)
        return int(self.size_lookup(self._open[fd]))

    # -- data path (over the socket) -----------------------------------------------
    def _request(self, path: str) -> Event:
        done = Event(self.sim, name=f"uds.client{self.worker_id}")

        def round_trip():
            if self.client_overhead > 0:
                yield self.sim.timeout(self.client_overhead)
            nbytes = yield self.server.submit(path)
            if self.client_overhead > 0:
                yield self.sim.timeout(self.client_overhead)
            self.counters.add("reads")
            return nbytes

        proc = self.sim.process(round_trip(), name=f"uds.rt{self.worker_id}")
        return chain_result(proc, done)

    def pread(self, fd: int, length: int, offset: int) -> Event:
        if fd not in self._open:
            raise BadFileDescriptor(fd)
        # The prototype protocol carries whole samples; partial reads are
        # satisfied by clamping the reply (training never issues them).
        path = self._open[fd]
        done = Event(self.sim, name="uds.pread")
        inner = self._request(path)
        return chain_result(inner, done, lambda nbytes: min(nbytes, length))

    def read(self, fd: int, length: int) -> Event:
        return self.pread(fd, length, 0)

    def read_whole(self, path: str) -> Event:
        return self._request(path)


class PrismaTorchDataLoader:
    """Factory helper: a DataLoader whose epoch list is shared with PRISMA.

    Subclasses :class:`TorchDataLoader` lazily (import here avoids a cycle)
    and mirrors the job-script change of the paper: at the start of every
    epoch the shuffled filenames list is written for the data plane.
    """

    def __new__(cls, sim, catalog, shuffler, batch_size, stage, server, model, **kwargs):
        from ...frameworks.pytorch.dataloader import TorchDataLoader

        class _Bound(TorchDataLoader):
            def begin_epoch(self, epoch: int) -> None:
                super().begin_epoch(epoch)
                order = self.shuffler.order(epoch)
                stage.load_epoch(self.catalog.path(int(i)) for i in order)

        factory = make_torch_posix_factory(
            sim, server, lambda path: catalog.size(_index_of(catalog, path))
        )
        return _Bound(
            sim, catalog, shuffler, batch_size, factory, model, **kwargs
        )


def _index_of(catalog, path: str) -> int:
    """Recover a sample index from its generated path."""
    return int(path.rsplit("/", 1)[1])


def make_torch_posix_factory(sim: "Simulator", server: PrismaUDSServer, size_lookup):
    """``posix_factory`` for :class:`TorchDataLoader`: one client per worker.

    This function *is* the integration: the 35-LoC change swaps PyTorch's
    direct ``open``/``read`` for these client instances.
    """

    def factory(worker_id: int) -> PrismaTorchClient:
        return PrismaTorchClient(sim, server, size_lookup, worker_id=worker_id)

    return factory


def integration_loc() -> int:
    """Lines a PyTorch integrator writes (paper: 35 LoC).

    Counted over the protocol pieces an integrator must add to PyTorch
    (client class data path + factory), excluding comments and docstrings.
    """
    import inspect

    def count(obj) -> int:
        src = inspect.getsource(obj).splitlines()
        total = 0
        in_doc = False
        for line in src:
            stripped = line.strip()
            if stripped.startswith(('"""', "'''")):
                if not (len(stripped) > 3 and stripped.endswith(('"""', "'''"))):
                    in_doc = not in_doc
                continue
            if in_doc or not stripped or stripped.startswith("#"):
                continue
            total += 1
        return total

    return count(PrismaTorchClient._request) + count(PrismaTorchClient.pread) + count(
        PrismaTorchClient.read
    ) + count(PrismaTorchClient.read_whole) + count(make_torch_posix_factory)
