"""``repro.core.integrations`` — PRISMA bindings for the DL frameworks.

The two integrations the paper evaluates: TensorFlow (POSIX-backend ``pread``
substitution, §IV "10 LoC") and PyTorch (UNIX-domain-socket client/server,
one client per worker process, §IV "35 LoC").
"""

from .tf_binding import PrismaTensorFlowPipeline
from .tf_binding import integration_loc as tf_integration_loc
from .torch_binding import (
    CLIENT_OVERHEAD,
    SERVER_SERVICE_TIME,
    PrismaTorchClient,
    PrismaTorchDataLoader,
    PrismaUDSServer,
    make_torch_posix_factory,
)
from .torch_binding import integration_loc as torch_integration_loc

__all__ = [
    "CLIENT_OVERHEAD",
    "PrismaTensorFlowPipeline",
    "PrismaTorchClient",
    "PrismaTorchDataLoader",
    "PrismaUDSServer",
    "SERVER_SERVICE_TIME",
    "make_torch_posix_factory",
    "tf_integration_loc",
    "torch_integration_loc",
]
