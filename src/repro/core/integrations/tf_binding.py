"""PRISMA ↔ TensorFlow integration (paper §IV).

The paper: *"we extended the existing POSIX file system backend and replaced
the ``pread`` invocation with ``Prisma.read`` … This only required changing
10 LoC."*  Because :class:`~repro.core.stage.PrismaStage` implements the
same :class:`~repro.storage.posix.PosixLike` surface the pipeline already
consumes, the integration is exactly that substitution plus sharing the
shuffled filenames list at the start of each epoch.

The substance of the integration — the lines a TensorFlow maintainer would
actually change — lives in :func:`_prisma_read_seam` and
:func:`_share_filenames_seam`, kept deliberately minimal so the
``integration_loc`` benchmark can verify the paper's 10-LoC claim against
this codebase.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...dataset.catalog import DatasetCatalog
from ...dataset.shuffle import EpochShuffler, SequentialOrder
from ...frameworks.models import ModelProfile
from ...frameworks.tensorflow.pipeline import TFDataPipeline
from ..stage import PrismaStage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...simcore.kernel import Simulator


# --- the 10 LoC seam --------------------------------------------------------------
def _prisma_read_seam(stage: PrismaStage):
    """The TF POSIX-backend patch: route ``pread`` through PRISMA."""
    # file_system_posix.cc: `pread(fd, buf, n, off)` becomes:
    return stage  # the stage *is* the file system now
    # (open/close/fstat pass through; only the data path is intercepted)


def _share_filenames_seam(stage: PrismaStage, epoch_paths):
    """The job-script addition: hand PRISMA the epoch's shuffled list."""
    stage.load_epoch(epoch_paths)


# --- the user-facing binding ----------------------------------------------------
class PrismaTensorFlowPipeline(TFDataPipeline):
    """A *vanilla* (baseline) TF pipeline whose storage backend is PRISMA.

    Matches the paper's setup exactly: PRISMA is integrated with the
    **non-optimized** TensorFlow — single reader, no framework prefetching —
    and all acceleration comes from the data plane underneath it.
    """

    def __init__(
        self,
        sim: "Simulator",
        catalog: DatasetCatalog,
        shuffler: EpochShuffler | SequentialOrder,
        batch_size: int,
        stage: PrismaStage,
        model: ModelProfile,
        name: str = "tf-prisma",
    ) -> None:
        super().__init__(
            sim,
            catalog,
            shuffler,
            batch_size,
            posix=_prisma_read_seam(stage),
            model=model,
            reader_threads=1,
            map_threads=4,
            prefetch=None,
            stage_depth=2,
            name=name,
        )
        self.stage = stage
        # The integration knows the consumer-side batch size; labelling the
        # stage here completes the control.decision feature vector.
        stage.feature_labels["batch_size"] = batch_size

    def begin_epoch(self, epoch: int) -> None:
        super().begin_epoch(epoch)
        assert self._epoch_order is not None
        _share_filenames_seam(
            self.stage, (self.catalog.path(i) for i in self._epoch_order)
        )


def integration_loc() -> int:
    """Count the changed lines of the TensorFlow seam (paper: 10 LoC)."""
    import inspect

    lines = 0
    for fn in (_prisma_read_seam, _share_filenames_seam):
        src = inspect.getsource(fn).splitlines()
        lines += sum(
            1
            for line in src
            if line.strip() and not line.strip().startswith(("#", '"""', "'''"))
        )
    return lines
