"""Live PRISMA: real producer threads prefetching real files.

This is the deployable counterpart of the simulated data plane — the same
architecture (FIFO filename queue → up to *t* producer threads → bounded
in-memory buffer → evict-on-read consumers) running on actual OS threads
and actual ``open()``/``read()`` syscalls.

It reuses the *identical* control-plane types as the simulation
(:class:`~repro.core.optimization.MetricsSnapshot`,
:class:`~repro.core.optimization.TuningSettings`, every
:class:`~repro.core.control.policy.ControlPolicy`): the decoupling argument
of the paper made concrete — the control logic doesn't care whether the
data plane is simulated or live.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Iterable, List, Optional, Set

from ..optimization import MetricsSnapshot, TuningSettings
from ..prefetcher import _validate_lookahead
from ..schedule import LookaheadSchedule
from .buffer import BufferClosed, LiveBuffer


class LivePrefetcher:
    """Parallel file prefetcher over the local filesystem.

    Thread model: a dynamic pool of daemon producer threads; each loops
    {dequeue path, read file, insert into buffer}.  The control plane (or
    the user) retargets ``t`` via :meth:`set_producers` — surplus threads
    retire after their current file; deficit spawns fresh ones.
    """

    def __init__(
        self,
        producers: int = 2,
        buffer_capacity: int = 64,
        max_producers: int = 16,
        read_chunk: int = 1 << 20,
        lookahead_epochs: int = 0,
        name: str = "live.prefetch",
    ) -> None:
        if producers < 1:
            raise ValueError("producers must be >= 1")
        if max_producers < producers:
            raise ValueError("max_producers must be >= producers")
        if read_chunk < 1:
            raise ValueError("read_chunk must be >= 1")
        self.name = name
        self.buffer = LiveBuffer(buffer_capacity)
        self.max_producers = max_producers
        self.read_chunk = read_chunk
        self._lock = threading.Lock()
        self._queue: Deque[str] = deque()
        self._covered: Set[str] = set()
        self._target = producers
        self._threads: List[threading.Thread] = []
        self._live = 0
        self._next_id = 0
        self._closed = False
        # metrics (under _lock)
        self.bytes_fetched = 0
        self.files_fetched = 0
        self.read_errors = 0
        # clairvoyant lookahead — same API as the simulated prefetcher
        self.lookahead_epochs = _validate_lookahead(lookahead_epochs)
        self._schedule: Optional[LookaheadSchedule] = None
        self._staged_ahead: Set[str] = set()
        self.lookahead_fetches = 0
        #: workload feature labels merged into control.decision telemetry
        #: (same contract as :attr:`~repro.core.stage.PrismaStage.
        #: feature_labels`); callers label backend kind / batch size so
        #: live telemetry harvests into the same training rows as sim
        self.feature_labels: dict = {"lookahead_epochs": self.lookahead_epochs}

    def install_schedule(self, schedule: LookaheadSchedule) -> None:
        """Install the clairvoyant oracle (shared with the simulated plane)."""
        with self._lock:
            self._schedule = schedule

    # -- epoch lifecycle ------------------------------------------------------------
    def load_epoch(self, paths: Iterable[str]) -> None:
        """Install the shuffled filenames list and (re)start producers."""
        paths = list(paths)
        with self._lock:
            if self._closed:
                raise RuntimeError("prefetcher is closed")
            if self._queue:
                raise ValueError(
                    f"{len(self._queue)} paths still pending from the previous epoch"
                )
            if self._schedule is not None:
                if self._schedule.epochs_started >= self._schedule.n_epochs:
                    self._schedule = None  # horizon exhausted: go reactive
                else:
                    self._schedule.start_epoch(paths)
            # Paths fetched across the epoch boundary stay covered but are
            # not re-enqueued (they are already staged in the buffer).
            prestaged = self._staged_ahead.intersection(paths)
            self._queue.extend(p for p in paths if p not in prestaged)
            self._covered = set(paths)
            self._staged_ahead.difference_update(prestaged)
        self._spawn_up_to_target()

    def covers(self, path: str) -> bool:
        with self._lock:
            return path in self._covered

    @property
    def queue_remaining(self) -> int:
        with self._lock:
            return len(self._queue)

    # -- producer management -----------------------------------------------------
    @property
    def target_producers(self) -> int:
        with self._lock:
            return self._target

    @property
    def live_producers(self) -> int:
        with self._lock:
            return self._live

    def set_producers(self, t: int) -> None:
        if not 1 <= t <= self.max_producers:
            raise ValueError(f"producers must be in [1, {self.max_producers}]")
        with self._lock:
            self._target = t
        self._spawn_up_to_target()

    def _peek_lookahead_locked(self) -> Optional[str]:
        """The claimable cross-epoch path, if any; caller holds ``_lock``.

        Same protocol as the simulated plane: stop (rather than skip) when
        the next scheduled path is still buffered for the live epoch, and
        respect buffer slack.
        """
        if self._schedule is None or self.lookahead_epochs < 1:
            return None
        if self.buffer.level >= self.buffer.capacity:
            return None
        path = self._schedule.peek_ahead(self.lookahead_epochs)
        if path is None or self.buffer.contains(path):
            return None
        return path

    def _lookahead_ready_locked(self) -> bool:
        return self._peek_lookahead_locked() is not None

    def _claim_lookahead_locked(self) -> Optional[str]:
        """Claim the next cross-epoch path (advances the fetch clock)."""
        path = self._peek_lookahead_locked()
        if path is None:
            return None
        assert self._schedule is not None
        self._schedule.mark_fetched(path)
        self._staged_ahead.add(path)
        self.lookahead_fetches += 1
        return path

    def _spawn_up_to_target(self) -> None:
        to_start: List[threading.Thread] = []
        with self._lock:
            while (
                self._live < self._target
                and (self._queue or self._lookahead_ready_locked())
                and not self._closed
            ):
                thread = threading.Thread(
                    target=self._producer_loop,
                    name=f"prisma-producer-{self._next_id}",
                    daemon=True,
                )
                self._next_id += 1
                self._live += 1
                self._threads.append(thread)
                to_start.append(thread)
        for thread in to_start:
            thread.start()

    def _retire(self) -> None:
        self._live -= 1  # caller holds the lock

    def _producer_loop(self) -> None:
        # The exit decision and the live-count decrement happen in ONE
        # critical section: were they separate, two threads could both see
        # "live > target" after a shrink and both retire, leaving zero
        # producers and a consumer blocked forever.
        while True:
            with self._lock:
                if self._closed or self._live > self._target:
                    self._retire()
                    return
                if self._queue:
                    path = self._queue.popleft()
                    if self._schedule is not None:
                        self._schedule.mark_fetched(path)
                else:
                    claimed = self._claim_lookahead_locked()
                    if claimed is None:
                        self._retire()
                        return
                    path = claimed
            try:
                payload: object = self._read_file(path)
            except OSError as exc:
                with self._lock:
                    self.read_errors += 1
                # Deliver the failure to the waiting consumer instead of
                # leaving it blocked on a sample that will never arrive.
                payload = exc
            try:
                self.buffer.insert(path, payload)  # type: ignore[arg-type]
            except BufferClosed:
                with self._lock:
                    self._retire()
                return
            if not isinstance(payload, Exception):
                with self._lock:
                    self.bytes_fetched += len(payload)
                    self.files_fetched += 1

    def _read_file(self, path: str) -> bytes:
        chunks = []
        with open(path, "rb") as fh:
            while True:
                chunk = fh.read(self.read_chunk)
                if not chunk:
                    break
                chunks.append(chunk)
        return b"".join(chunks)

    # -- consumer side ------------------------------------------------------------
    def read(self, path: str, timeout: Optional[float] = None) -> bytes:
        """Serve one whole-file read.

        Covered paths come from the buffer (blocking until prefetched);
        uncovered paths (e.g. validation files) fall through to a direct
        read, exactly like the stage's fallback path in the simulation.
        """
        if self.covers(path):
            data = self.buffer.take(path, timeout=timeout)
            # The take evicted a sample, opening slack: resume cross-epoch
            # fetching if producers retired against a full buffer.
            if self.lookahead_epochs > 0:
                self._spawn_up_to_target()
            if isinstance(data, Exception):
                raise data  # a producer's read failure, delivered here
            return data
        return self._read_file(path)

    # -- control interface ----------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            bytes_fetched = self.bytes_fetched
            files_fetched = self.files_fetched
            read_errors = self.read_errors
            live = self._live
            remaining = len(self._queue)
            lookahead = self.lookahead_fetches
        return MetricsSnapshot(
            time=time.monotonic(),
            requests=self.buffer.hits + self.buffer.waits,
            hits=self.buffer.hits,
            waits=self.buffer.waits,
            buffer_level=self.buffer.level,
            buffer_capacity=self.buffer.capacity,
            producers_allocated=live,
            producers_active=live,
            bytes_fetched=bytes_fetched,
            queue_remaining=remaining,
            files_fetched=files_fetched,
            read_errors=read_errors,
            lookahead_fetches=lookahead,
        )

    def apply_settings(self, settings: TuningSettings) -> None:
        if settings.producers is not None:
            self.set_producers(settings.producers)
        if settings.buffer_capacity is not None:
            self.buffer.set_capacity(settings.buffer_capacity)
        lookahead = settings.extra.get("lookahead_epochs")
        if lookahead is not None:
            with self._lock:
                self.lookahead_epochs = _validate_lookahead(lookahead)
            self._spawn_up_to_target()

    # The kernel's StagePort surface: same shape as the simulated
    # PrismaStage, so one ControlCycle drives either data plane.
    def control_snapshot(self) -> List[MetricsSnapshot]:
        return [self.snapshot()]

    def control_apply(self, settings: TuningSettings) -> None:
        self.apply_settings(settings)

    def control_features(self) -> dict:
        """Workload feature labels for control-plane telemetry (a copy)."""
        with self._lock:
            return dict(self.feature_labels)

    # -- lifecycle --------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._queue.clear()
        self.buffer.close()
        for thread in list(self._threads):
            if thread.is_alive():
                thread.join(timeout=2.0)

    def __enter__(self) -> "LivePrefetcher":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
