"""Thread-safe prefetch buffer for the live (real-threads) PRISMA.

Same semantics as the simulated :class:`~repro.core.buffer.PrefetchBuffer` —
bounded capacity, path-keyed, evict-on-read, blocking on both sides — but
implemented with a condition variable for real producer/consumer threads.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional


class BufferClosed(RuntimeError):
    """The buffer was shut down while a thread was blocked on it."""


class LiveBuffer:
    """Bounded, path-keyed, thread-safe sample buffer."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._items: Dict[str, bytes] = {}
        self._cond = threading.Condition()
        self._closed = False
        #: paths a consumer is currently blocked on.  Inserts of demanded
        #: paths bypass the capacity check: otherwise a producer holding the
        #: demanded sample can starve behind a sibling whose fresh inserts
        #: always win the race for freed slots (hot-thread lock acquisition
        #: beats a woken waiter), deadlocking the whole pipeline.  The
        #: buffer may transiently exceed capacity by at most the number of
        #: concurrently demanded paths (≤ consumer count).
        self._demanded: Dict[str, int] = {}
        # statistics (guarded by the same lock)
        self.hits = 0
        self.waits = 0
        self.inserts = 0
        self.peak_level = 0

    # -- capacity --------------------------------------------------------------
    @property
    def capacity(self) -> int:
        with self._cond:
            return self._capacity

    def set_capacity(self, capacity: int) -> None:
        """Control-plane knob; growing wakes blocked producers."""
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        with self._cond:
            self._capacity = capacity
            self._cond.notify_all()

    @property
    def level(self) -> int:
        with self._cond:
            return len(self._items)

    # -- producer side ------------------------------------------------------------
    def insert(self, path: str, data: bytes, timeout: Optional[float] = None) -> None:
        """Stage a sample; blocks while the buffer is at capacity.

        Demanded paths (a consumer is blocked on them) are admitted even at
        capacity — see ``_demanded`` for why this is required for liveness.
        """
        with self._cond:
            while (
                len(self._items) >= self._capacity
                and path not in self._demanded
                and not self._closed
            ):
                if not self._cond.wait(timeout=timeout):
                    raise TimeoutError(f"insert({path!r}) timed out")
            if self._closed:
                raise BufferClosed("insert on closed buffer")
            self._items[path] = data
            self.inserts += 1
            self.peak_level = max(self.peak_level, len(self._items))
            self._cond.notify_all()

    # -- consumer side ------------------------------------------------------------
    def take(self, path: str, timeout: Optional[float] = None) -> bytes:
        """Consume (and evict) the sample for ``path``; blocks until present."""
        with self._cond:
            if path in self._items:
                self.hits += 1
            else:
                self.waits += 1
            self._demanded[path] = self._demanded.get(path, 0) + 1
            self._cond.notify_all()  # let a blocked producer of `path` in
            try:
                while path not in self._items and not self._closed:
                    if not self._cond.wait(timeout=timeout):
                        raise TimeoutError(f"take({path!r}) timed out")
            finally:
                count = self._demanded.get(path, 0) - 1
                if count <= 0:
                    self._demanded.pop(path, None)
                else:
                    self._demanded[path] = count
            if self._closed and path not in self._items:
                raise BufferClosed("take on closed buffer")
            data = self._items.pop(path)
            self._cond.notify_all()
            return data

    def contains(self, path: str) -> bool:
        with self._cond:
            return path in self._items

    # -- lifecycle --------------------------------------------------------------
    def close(self) -> None:
        """Release every blocked thread with :class:`BufferClosed`."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def hit_rate(self) -> float:
        with self._cond:
            total = self.hits + self.waits
            return self.hits / total if total > 0 else 0.0
