"""Framework adapters for the live PRISMA session.

The paper's integrations patch the framework's storage calls; these
adapters do the equivalent for real Python training code without patching
anything:

* :class:`PrismaFileDataset` — a map-style dataset (``__len__`` /
  ``__getitem__``) over a list of files whose reads are served by a
  :class:`~repro.core.live.dataloader.LivePrisma` session.  Drop it where a
  ``torch.utils.data.Dataset`` of raw files would go (with
  ``num_workers=0`` — the session's producer threads replace loader
  workers, which is exactly PRISMA's PyTorch pitch).
* :class:`EpochBatchIterator` — a minimal shuffling, batching loader over
  such a dataset, for scripts with no framework at all.

Neither imports torch; they follow its protocols structurally.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from .dataloader import LivePrisma

#: Transforms raw file bytes into a training sample (decode/augment).
Transform = Callable[[bytes], object]


class PrismaFileDataset:
    """Map-style dataset over files, served through a live PRISMA session.

    Random access (``dataset[i]``) works — uncovered paths fall back to a
    direct read — but throughput comes from announcing the epoch's access
    order up front via :meth:`set_epoch_order`, which hands PRISMA the
    shuffled filenames list (the paper's §IV shared-list contract).
    """

    def __init__(
        self,
        paths: Sequence[str],
        prisma: LivePrisma,
        transform: Optional[Transform] = None,
    ) -> None:
        if not paths:
            raise ValueError("dataset needs at least one file")
        self.paths: List[str] = list(paths)
        self.prisma = prisma
        self.transform = transform

    def __len__(self) -> int:
        return len(self.paths)

    def __getitem__(self, index: int) -> object:
        data = self.prisma.read(self.paths[index])
        if self.transform is not None:
            return self.transform(data)
        return data

    def set_epoch_order(self, indices: Sequence[int]) -> None:
        """Announce this epoch's access order so producers prefetch it."""
        self.prisma.load_epoch(self.paths[i] for i in indices)


class EpochBatchIterator:
    """Shuffle + batch + prefetch loop over a :class:`PrismaFileDataset`.

    Yields ``(epoch, batch)`` where ``batch`` is a list of samples; the
    shuffle is seeded and per-epoch, mirroring the simulated
    :class:`~repro.dataset.shuffle.EpochShuffler` contract.
    """

    def __init__(
        self,
        dataset: PrismaFileDataset,
        batch_size: int,
        epochs: int,
        seed: int = 0,
        drop_last: bool = False,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.epochs = epochs
        self.seed = seed
        self.drop_last = drop_last

    def _order(self, epoch: int) -> List[int]:
        rng = random.Random(f"{self.seed}:{epoch}")
        indices = list(range(len(self.dataset)))
        rng.shuffle(indices)
        return indices

    def __iter__(self) -> Iterator[Tuple[int, List[object]]]:
        for epoch in range(self.epochs):
            order = self._order(epoch)
            self.dataset.set_epoch_order(order)
            batch: List[object] = []
            for index in order:
                batch.append(self.dataset[index])
                if len(batch) == self.batch_size:
                    yield epoch, batch
                    batch = []
            if batch and not self.drop_last:
                yield epoch, batch
