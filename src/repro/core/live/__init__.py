"""``repro.core.live`` — PRISMA on real threads and real files.

The deployable counterpart of the simulated data plane: a thread-pool
prefetcher (:class:`LivePrefetcher`), a thread-safe buffer
(:class:`LiveBuffer`), a background control loop (:class:`LiveController`
— running the *same* policy classes as the simulation), and the
user-facing session (:class:`LivePrisma`).
"""

from .adapters import EpochBatchIterator, PrismaFileDataset
from .buffer import BufferClosed, LiveBuffer
from .controller import LiveController
from .dataloader import LivePrisma, static_live_prisma
from .prefetcher import LivePrefetcher

__all__ = [
    "BufferClosed",
    "EpochBatchIterator",
    "LiveBuffer",
    "LiveController",
    "LivePrefetcher",
    "LivePrisma",
    "PrismaFileDataset",
    "static_live_prisma",
]
