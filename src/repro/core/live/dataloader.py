"""User-facing live PRISMA session and data-loader adapters.

:class:`LivePrisma` bundles the live data plane and control plane behind
the small API a training script needs::

    with LivePrisma(autotune=True) as prisma:
        for epoch in range(10):
            order = shuffle(all_paths, epoch)
            for path, data in prisma.iter_epoch(order):
                train_on(decode(data))

``iter_epoch`` is the integration point for any framework whose dataset
yields file paths: wrap a PyTorch ``Dataset.__getitem__`` with
:meth:`LivePrisma.read`, or replace a tf.data file reader with it — the
same one-line substitution as the paper's bindings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence, Tuple

from ..control.policy import ControlPolicy, PrismaAutotunePolicy, StaticPolicy
from .controller import LiveController
from .prefetcher import LivePrefetcher

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...telemetry import Telemetry


class LivePrisma:
    """A complete live PRISMA stack: prefetcher + optional auto-tuner."""

    def __init__(
        self,
        producers: int = 2,
        buffer_capacity: int = 64,
        max_producers: int = 16,
        autotune: bool = True,
        control_period: float = 0.1,
        policy: Optional[ControlPolicy] = None,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        self.prefetcher = LivePrefetcher(
            producers=producers,
            buffer_capacity=buffer_capacity,
            max_producers=max_producers,
        )
        self.controller: Optional[LiveController] = None
        if policy is not None or autotune:
            self.controller = LiveController(
                self.prefetcher,
                policy=policy or PrismaAutotunePolicy(),
                period=control_period,
                telemetry=telemetry,
            )
        self._started = False

    # -- lifecycle --------------------------------------------------------------
    def start(self) -> "LivePrisma":
        if self._started:
            return self
        if self.controller is not None:
            self.controller.start()
        self._started = True
        return self

    def close(self) -> None:
        if self.controller is not None:
            self.controller.stop()
        self.prefetcher.close()

    def __enter__(self) -> "LivePrisma":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- data path --------------------------------------------------------------
    def load_epoch(self, paths: Iterable[str]) -> None:
        self.prefetcher.load_epoch(paths)

    def read(self, path: str, timeout: Optional[float] = None) -> bytes:
        return self.prefetcher.read(path, timeout=timeout)

    def iter_epoch(
        self, paths: Sequence[str], timeout: Optional[float] = None
    ) -> Iterator[Tuple[str, bytes]]:
        """Prefetch and yield ``(path, data)`` in the given order."""
        paths = list(paths)
        self.load_epoch(paths)
        for path in paths:
            yield path, self.read(path, timeout=timeout)

    # -- observability -----------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        return self.prefetcher.buffer.hit_rate()

    @property
    def producers(self) -> int:
        return self.prefetcher.target_producers

    def stats(self) -> dict:
        snap = self.prefetcher.snapshot()
        return {
            "producers": snap.producers_allocated,
            "buffer_capacity": snap.buffer_capacity,
            "buffer_level": snap.buffer_level,
            "hit_rate": self.hit_rate,
            "bytes_fetched": snap.bytes_fetched,
            "queue_remaining": snap.queue_remaining,
        }


def static_live_prisma(producers: int, buffer_capacity: int) -> LivePrisma:
    """A manually configured live stack (no auto-tuning) — the strawman."""
    return LivePrisma(
        producers=producers,
        buffer_capacity=buffer_capacity,
        max_producers=max(producers, 1),
        autotune=False,
        policy=StaticPolicy(producers, buffer_capacity),
    )
