"""Live control plane: a background thread running a ControlPolicy.

The exact same :class:`~repro.core.control.policy.ControlPolicy` objects
that tune the simulated data plane drive the live one — the snapshot and
settings types are shared.  The loop is a plain daemon thread waking every
``period`` wall-clock seconds.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from ..control.policy import ControlPolicy, PrismaAutotunePolicy
from ..optimization import MetricsSnapshot
from .prefetcher import LivePrefetcher


class LiveController:
    """Periodic monitor/decide/enforce loop over one live prefetcher."""

    def __init__(
        self,
        prefetcher: LivePrefetcher,
        policy: Optional[ControlPolicy] = None,
        period: float = 0.1,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.prefetcher = prefetcher
        self.policy = policy or PrismaAutotunePolicy()
        self.period = period
        self.history: List[MetricsSnapshot] = []
        self.enforcements = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("controller already started")
        self._thread = threading.Thread(
            target=self._loop, name="prisma-controller", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.period):
            snapshot = self.prefetcher.snapshot()
            previous = self.history[-1] if self.history else None
            self.history.append(snapshot)
            if len(self.history) > 10_000:
                del self.history[:5_000]
            decision = self.policy.decide(snapshot, previous)
            if decision is not None:
                self.prefetcher.apply_settings(decision)
                self.enforcements += 1

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "LiveController":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()
