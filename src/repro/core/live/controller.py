"""Live control plane: the shared control kernel on a wall-clock thread.

The exact same :class:`~repro.core.control.kernel.ControlCycle` that the
simulated :class:`~repro.core.control.controller.Controller` drives from a
kernel process runs here on a plain daemon thread waking every ``period``
wall-clock seconds — the decoupling argument of the paper made concrete.
Through the kernel the live plane gets everything the simulated one has:
:class:`~repro.core.control.kernel.GlobalPolicy` coordination across
several prefetchers, call retries with the shared typed-error taxonomy
(via :class:`~repro.core.control.kernel.DirectTransport`), degraded-mode
edge detection, bounded histories, and Chrome-trace telemetry stamped on a
wall-clock frame.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, List, Optional

from ..control.kernel import ControlCycle, DirectTransport, GlobalPolicy, StagePort
from ..control.monitor import MetricsHistory
from ..control.policy import ControlPolicy, PrismaAutotunePolicy
from ..control.rpc import RetryPolicy
from ..optimization import MetricsSnapshot
from .prefetcher import LivePrefetcher

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...telemetry import Telemetry


class _WallClockFrame:
    """A duck-typed stand-in for a Simulator that a Telemetry hub can attach to.

    The hub only needs two things from whatever it is attached to: a
    ``telemetry`` slot it installs itself into and a ``now`` clock for span
    stamps.  Here ``now`` is wall-clock seconds since the frame was created,
    so live traces start at t=0 like simulated ones.
    """

    def __init__(self) -> None:
        self._t0 = time.monotonic()
        self.telemetry = None

    @property
    def now(self) -> float:
        return time.monotonic() - self._t0


class LiveController:
    """Periodic monitor/decide/enforce loop over live prefetchers.

    A thin driver: owns the wall-clock (daemon thread, one kernel cycle per
    ``period`` seconds) and the in-process transports; delegates the cycle
    itself to the shared :class:`~repro.core.control.kernel.ControlCycle`.

    The single-prefetcher constructor shape is preserved —
    ``LiveController(prefetcher, policy=...)`` — and further stages can be
    attached with :meth:`register` before :meth:`start` (e.g. several
    prefetchers under one ``global_policy``).
    """

    def __init__(
        self,
        prefetcher: Optional[LivePrefetcher] = None,
        policy: Optional[ControlPolicy] = None,
        period: float = 0.1,
        *,
        global_policy: Optional[GlobalPolicy] = None,
        telemetry: Optional["Telemetry"] = None,
        retry_policy: Optional[RetryPolicy] = None,
        name: str = "prisma.live-controller",
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.period = period
        self.name = name
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=3, base_delay=period / 20, max_delay=period / 4, budget=period
        )
        self._frame = _WallClockFrame()
        if telemetry is not None:
            telemetry.attach(self._frame, process=name)
        self.kernel = ControlCycle(
            name,
            clock=lambda: self._frame.now,
            telemetry=lambda: self._frame.telemetry,
            global_policy=global_policy,
        )
        self.prefetcher = prefetcher
        self.policy = policy
        if prefetcher is not None:
            if policy is None and global_policy is None:
                self.policy = policy = PrismaAutotunePolicy()
            self.register(prefetcher, policy)
        #: set if the control thread died on an unexpected error
        self.error: Optional[BaseException] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- kernel accounting, re-exposed -------------------------------------------
    @property
    def global_policy(self) -> Optional[GlobalPolicy]:
        return self.kernel.global_policy

    @property
    def cycles(self) -> int:
        return self.kernel.cycles

    @property
    def enforcements(self) -> int:
        return self.kernel.enforcements

    @property
    def rpc_failures(self) -> int:
        return self.kernel.rpc_failures

    @property
    def last_cycle_time(self) -> float:
        return self.kernel.last_cycle_time

    @property
    def history(self) -> List[MetricsSnapshot]:
        """Snapshot series of the first registered stage (legacy accessor)."""
        regs = self.kernel.registrations()
        return regs[0].history.snapshots() if regs else []

    # -- registration ------------------------------------------------------------
    def register(
        self, port: StagePort, policy: Optional[ControlPolicy] = None
    ) -> MetricsHistory:
        """Attach a live stage; returns its history for later inspection."""
        transport = DirectTransport(
            retry_policy=self.retry_policy, name=f"{self.name}.direct"
        )
        return self.kernel.register(port, policy, transport)

    def history_for(self, stage_name: str) -> MetricsHistory:
        return self.kernel.history_for(stage_name)

    # -- control loop -------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("controller already started")
        self._thread = threading.Thread(
            target=self._loop, name="prisma-controller", daemon=True
        )
        self._thread.start()

    def run_cycle(self) -> None:
        """Run exactly one control cycle on the calling thread.

        Deterministic alternative to :meth:`start` for tests and
        step-driven embeddings (the thread loop is this, on a timer).
        """
        self.kernel.run_inline()
        self.kernel.complete_cycle()

    def _loop(self) -> None:
        while not self._stop.wait(self.period):
            try:
                self.run_cycle()
            except Exception as exc:  # noqa: BLE001 - surfaced via self.error
                # An RpcApplicationError (far-side bug) or anything else
                # unexpected stops the loop; the data plane keeps running
                # on its current knobs.
                self.error = exc
                return

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "LiveController":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()
