"""Clairvoyant lookahead schedule (ROADMAP item 1; Dryden et al.).

The moment a training run fixes its shuffle seed, the access order of
*every* future epoch is known — the per-epoch permutations are pure
functions of ``(seed, epoch)`` (see :class:`~repro.dataset.shuffle.
EpochShuffler`).  A reactive prefetcher throws that information away and
rediscovers each epoch's order from the FIFO filename list; a clairvoyant
one plans against the full horizon:

* the prefetcher keeps fetching **across the epoch boundary** while its
  buffer has slack (the next epoch's prefix is known);
* the tier hierarchy places files by **next-use distance** — promote what
  is needed soonest, evict what is needed farthest in the future (Belady's
  optimal replacement, which is actually realizable here because the future
  is not a guess).

:class:`LookaheadSchedule` is the shared oracle: a window of K epochs of
shuffled filenames flattened into one global access order, a *clock* that
tracks how far the fetch frontier has advanced, and two queries —
``peek_ahead`` (what should be fetched next, beyond the live epoch) and
``next_use_distance`` (how soon a file is needed again).  It is pure data
(no simulator dependency), so the simulated and the live
(:class:`~repro.core.live.LivePrefetcher`) data planes share it unchanged.

Clock protocol: drivers hand each epoch's list to the data plane in
schedule order (``start_epoch`` validates this), and the prefetcher calls
``mark_fetched(path)`` once per dequeue.  Dequeues happen in schedule
order, so each mark matches the clock position exactly and advances it by
one; out-of-band fetches — a crash-requeued path being refetched, an
uncovered validation file — match nothing and leave the clock alone.
"""

from __future__ import annotations

import sys
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence

from ..simcore.random import RandomStreams

__all__ = ["NEVER", "LookaheadSchedule"]

#: Sentinel next-use distance for "not used again within the horizon".
#: An int (not ``inf``) so distance arithmetic stays in integer byte/slot
#: accounting land, and it compares greater than any real distance.
NEVER = sys.maxsize


class LookaheadSchedule:
    """The known access order for the next K epochs, with a fetch clock.

    Parameters
    ----------
    epochs:
        One shuffled filenames list per epoch, oldest first.  Every epoch
        must be a permutation of the same path set (the DL contract: each
        sample is read exactly once per epoch).
    """

    def __init__(self, epochs: Sequence[Sequence[str]], name: str = "prisma.schedule") -> None:
        if not epochs:
            raise ValueError("schedule needs at least one epoch")
        self.name = name
        self._epochs: List[List[str]] = [list(e) for e in epochs]
        first = set(self._epochs[0])
        if len(first) != len(self._epochs[0]):
            raise ValueError(f"{name}: duplicate paths in epoch 0")
        for i, epoch in enumerate(self._epochs[1:], start=1):
            if len(epoch) != len(self._epochs[0]) or set(epoch) != first:
                raise ValueError(
                    f"{name}: epoch {i} is not a permutation of epoch 0's paths"
                )
        self._epoch_len = len(self._epochs[0])
        #: the flattened global access order across all scheduled epochs
        self._order: List[str] = [p for epoch in self._epochs for p in epoch]
        #: path -> global positions of its future uses (ascending)
        self._positions: Dict[str, Deque[int]] = {}
        for pos, path in enumerate(self._order):
            self._positions.setdefault(path, deque()).append(pos)
        #: fetch frontier: every position < clock has been claimed for fetch
        self._clock = 0
        #: epochs handed to the data plane via :meth:`start_epoch`
        self._started = 0

    @classmethod
    def from_seed(
        cls,
        paths: Sequence[str],
        seed: int = 0,
        epochs: int = 1,
        name: str = "prisma.schedule",
        stream_name: str = "shuffle",
    ) -> "LookaheadSchedule":
        """Generate the schedule the seeded shuffle determines.

        Uses the same derived-stream convention as
        :class:`~repro.dataset.shuffle.EpochShuffler` (stream
        ``"<stream_name>.epoch<e>"`` per epoch), so a framework shuffling
        with the same seed produces byte-identical epoch orders.
        """
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        paths = list(paths)
        streams = RandomStreams(seed)
        orders = []
        for e in range(epochs):
            rng = streams.fresh(f"{stream_name}.epoch{e}")
            orders.append([paths[int(i)] for i in rng.permutation(len(paths))])
        return cls(orders, name=name)

    # -- introspection ---------------------------------------------------------
    @property
    def n_epochs(self) -> int:
        return len(self._epochs)

    @property
    def epoch_length(self) -> int:
        return self._epoch_len

    @property
    def clock(self) -> int:
        return self._clock

    @property
    def epochs_started(self) -> int:
        return self._started

    def epoch_order(self, epoch: int) -> List[str]:
        """The shuffled filenames list for ``epoch`` (a copy)."""
        if not 0 <= epoch < len(self._epochs):
            raise IndexError(f"epoch {epoch} outside schedule horizon")
        return list(self._epochs[epoch])

    def covers(self, path: str) -> bool:
        return path in self._positions

    @property
    def remaining(self) -> int:
        """Accesses not yet claimed by the fetch frontier."""
        return len(self._order) - self._clock

    # -- driver protocol -------------------------------------------------------
    def start_epoch(self, paths: Iterable[str]) -> int:
        """Validate and account one epoch handed to the data plane.

        The data plane must receive epochs in schedule order — a diverging
        list means the framework's shuffle and the schedule disagree, and
        every clairvoyant decision after that point would be wrong, so the
        mismatch is rejected loudly.  Returns the epoch index started.
        """
        if self._started >= len(self._epochs):
            raise ValueError(
                f"{self.name}: all {len(self._epochs)} scheduled epochs already started"
            )
        expected = self._epochs[self._started]
        if list(paths) != expected:
            raise ValueError(
                f"{self.name}: epoch {self._started} order diverges from the schedule "
                "(is the framework shuffling with a different seed?)"
            )
        self._started += 1
        return self._started - 1

    def mark_fetched(self, path: str) -> bool:
        """Advance the fetch clock past ``path``'s next scheduled use.

        Returns True when the mark matched the clock position (the normal
        in-order dequeue); out-of-band fetches (crash-requeued retries,
        uncovered paths) return False and leave the clock untouched — their
        scheduled position was already claimed the first time around.
        """
        positions = self._positions.get(path)
        if not positions:
            return False
        while positions and positions[0] < self._clock:
            positions.popleft()
        if positions and positions[0] == self._clock:
            positions.popleft()
            self._clock += 1
            return True
        return False

    def peek_ahead(self, max_epochs: int) -> Optional[str]:
        """The next unfetched path, if it lies beyond the live epoch.

        Returns None while the fetch frontier is still inside the current
        (started) epoch — those fetches belong to the FIFO queue — and when
        the frontier is more than ``max_epochs`` epochs past the live one,
        or past the schedule horizon entirely.
        """
        if max_epochs < 1 or self._clock >= len(self._order):
            return None
        epoch = self._clock // self._epoch_len
        current = self._started - 1
        if epoch <= current or epoch > current + max_epochs:
            return None
        return self._order[self._clock]

    # -- the Belady query ------------------------------------------------------
    def next_use_distance(self, path: str) -> int:
        """Accesses until ``path`` is needed again (:data:`NEVER` if not).

        Distance 0 means "needed right now" (its next scheduled position is
        the fetch frontier).  The tier hierarchy evicts the resident file
        with the *largest* distance and declines to promote files whose
        distance is :data:`NEVER` — Belady's algorithm, realizable because
        the shuffle makes the future access order known.
        """
        positions = self._positions.get(path)
        if not positions:
            return NEVER
        while positions and positions[0] < self._clock:
            positions.popleft()
        if not positions:
            return NEVER
        return positions[0] - self._clock

    def __repr__(self) -> str:
        return (
            f"<LookaheadSchedule {self.name!r} epochs={len(self._epochs)} "
            f"clock={self._clock}/{len(self._order)}>"
        )
