"""Storage-tiering optimization object (the paper's §VII extension).

The paper's future work: *"it would be interesting to explore the impact of
storage tiering policies under different datasets and models."*  Because the
data plane treats optimizations as self-contained objects, tiering slots in
next to (or instead of) the prefetcher with no stage or framework changes —
which is precisely the extensibility claim of §III.

:class:`TieringObject` keeps frequently accessed files on a *fast tier*
(e.g. node-local NVMe or a RAM disk) in front of the slow shared backend:

* a file is **promoted** (copied to the fast tier, in the background) once
  it has been read ``promote_after`` times;
* the fast tier holds at most ``fast_capacity_bytes``; least-recently-used
  files are demoted (dropped — the slow tier remains authoritative);
* both knobs are control-plane tunable via ``TuningSettings.extra``
  (``"promote_after"``, ``"fast_capacity_bytes"``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, Optional

from ..simcore.event import Event
from ..telemetry import CounterSet
from ..storage.filesystem import Filesystem
from .optimization import MetricsSnapshot, OptimizationObject, TuningSettings

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator
    from ..storage.posix import PosixLike


class TieringObject(OptimizationObject):
    """Promote-on-access caching between a fast tier and a slow backend."""

    def __init__(
        self,
        sim: "Simulator",
        backend: "PosixLike",
        fast_fs: Filesystem,
        fast_capacity_bytes: float,
        promote_after: int = 2,
        name: str = "prisma.tiering",
    ) -> None:
        super().__init__(sim, backend, name)
        if fast_capacity_bytes <= 0:
            raise ValueError("fast_capacity_bytes must be positive")
        if promote_after < 1:
            raise ValueError("promote_after must be >= 1")
        self.fast_fs = fast_fs
        self.fast_capacity_bytes = float(fast_capacity_bytes)
        self.promote_after = promote_after
        #: path -> bytes resident on the fast tier (LRU order)
        self._resident: "OrderedDict[str, int]" = OrderedDict()
        self._resident_bytes = 0.0
        self._access_counts: Dict[str, int] = {}
        self._promoting: Dict[str, bool] = {}
        self.counters = CounterSet()

    # -- data path --------------------------------------------------------------
    def serve(self, path: str) -> Optional[Event]:
        if path in self._resident:
            self._resident.move_to_end(path)
            self.counters.add("fast_hits")
            return self.fast_fs.read_file(self._tier_path(path))
        self.counters.add("slow_reads")
        count = self._access_counts.get(path, 0) + 1
        self._access_counts[path] = count
        if count >= self.promote_after and not self._promoting.get(path):
            self._promoting[path] = True
            self.sim.process(self._promote(path), name=f"{self.name}.promote")
        return self.backend.read_whole(path)

    def _tier_path(self, path: str) -> str:
        return f"/fast{path}"

    def _promote(self, path: str):
        """Background copy slow → fast, then mark resident."""
        try:
            nbytes = yield self.backend.read_whole(path)
        except Exception:  # noqa: BLE001 - promotion is best-effort
            self._promoting.pop(path, None)
            return
        if nbytes > self.fast_capacity_bytes:
            self.counters.add("too_large")
            self._promoting.pop(path, None)
            return
        self._evict_for(nbytes)
        tier_path = self._tier_path(path)
        if not self.fast_fs.exists(tier_path):
            self.fast_fs.create(tier_path, 0)
        yield self.fast_fs.write(tier_path, nbytes)
        self._resident[path] = nbytes
        self._resident_bytes += nbytes
        self.counters.add("promotions")
        self._promoting.pop(path, None)

    def _evict_for(self, nbytes: int) -> None:
        while self._resident and self._resident_bytes + nbytes > self.fast_capacity_bytes:
            victim, size = self._resident.popitem(last=False)
            self._resident_bytes -= size
            tier_path = self._tier_path(victim)
            if self.fast_fs.exists(tier_path):
                self.fast_fs.unlink(tier_path)
            self.counters.add("demotions")

    # -- control interface ----------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        hits = self.counters.get("fast_hits")
        misses = self.counters.get("slow_reads")
        return MetricsSnapshot(
            time=self.sim.now,
            requests=hits + misses,
            hits=hits,
            waits=misses,
            buffer_level=len(self._resident),
            buffer_capacity=max(int(self.fast_capacity_bytes), 1),
            bytes_fetched=self.counters.get("promotions"),
            queue_remaining=0,
        )

    def apply_settings(self, settings: TuningSettings) -> None:
        promote_after = settings.extra.get("promote_after")
        if promote_after is not None:
            if int(promote_after) < 1:
                raise ValueError("promote_after must be >= 1")
            self.promote_after = int(promote_after)
        capacity = settings.extra.get("fast_capacity_bytes")
        if capacity is not None:
            if float(capacity) <= 0:
                raise ValueError("fast_capacity_bytes must be positive")
            self.fast_capacity_bytes = float(capacity)
            self._evict_for(0)

    # -- observability -----------------------------------------------------------
    def fast_tier_hit_rate(self) -> float:
        hits = self.counters.get("fast_hits")
        total = hits + self.counters.get("slow_reads")
        return hits / total if total > 0 else 0.0

    @property
    def resident_files(self) -> int:
        return len(self._resident)

    @property
    def resident_bytes(self) -> float:
        return self._resident_bytes
