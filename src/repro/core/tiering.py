"""Storage-tiering optimization objects (the paper's §VII extension).

The paper's future work: *"it would be interesting to explore the impact of
storage tiering policies under different datasets and models."*  Because the
data plane treats optimizations as self-contained objects, tiering slots in
next to (or in front of) the prefetcher with no stage or framework changes —
which is precisely the extensibility claim of §III.

Two policies share one mechanism (:class:`TieringObject` holds the resident
map, integer byte accounting, background promotion, and eviction; the
policy hooks decide *what* to promote and *whom* to evict):

* :class:`TieringObject` — the **reactive** baseline: a file is promoted
  (copied to the fast tier, in the background) once it has been read
  ``promote_after`` times; the least-recently-used resident is demoted when
  the fast tier fills.
* :class:`ClairvoyantTieringObject` — the **schedule-driven** policy
  (ROADMAP item 1): promotions and evictions consult a
  :class:`~repro.core.schedule.LookaheadSchedule`.  A file is promoted on
  its *first* slow read iff it is used again within the lookahead horizon;
  the eviction victim is the resident with the **farthest next use**
  (Belady's optimal replacement — realizable because the seeded shuffle
  makes the future access order known); promotion is declined entirely when
  every resident is needed sooner than the candidate (no cache thrash).

Both tiers sit *under* the prefetcher in the full hierarchy
(RAM buffer → node-local fast tier → backing FS): :meth:`read_whole` lets a
tiering object act as the prefetcher's backend, and :meth:`serve` lets it
catch uncovered (e.g. validation) reads as a stage optimization object.

Two seams added for the cluster-wide cooperative cache (:mod:`repro.cluster`):

* ``promotion_source`` — an alternative byte source for tier fills.  In a
  peer-to-peer deployment the copy comes from the *owning peer's* tier over
  RPC, not from the backing store, so a promotion never re-reads the PFS.
* :meth:`fetch_through` — read-through semantics: a miss fetches from the
  source **exactly once** (concurrent fetches for the same path coalesce
  onto one in-flight read) and admits the bytes inline, which is what makes
  "each sample hits the backing store at most once per epoch cluster-wide"
  an invariant rather than a tendency.

Knobs are control-plane tunable via ``TuningSettings.extra``
(``"promote_after"``, ``"fast_capacity_bytes"``); capacities follow the
discrete-byte convention — integers only, ``float("inf")``/NaN rejected.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Set

from ..simcore.event import Event, chain_result
from ..telemetry import CounterSet
from ..storage.backend import validate_byte_count
from ..storage.filesystem import Filesystem
from .optimization import MetricsSnapshot, OptimizationObject, TuningSettings
from .schedule import NEVER, LookaheadSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator
    from ..storage.backend import SampleSource


def _validate_byte_capacity(value: object, name: str = "fast_capacity_bytes") -> int:
    """Normalize a byte capacity to a positive int.

    Thin wrapper over the protocol-level
    :func:`~repro.storage.backend.validate_byte_count` (kept under its
    historical name for existing callers): byte accounting is integer
    arithmetic, so ``bool``, NaN, infinities, and fractional floats are
    rejected; integral floats (a policy computing ``0.5 * total``) are
    normalized to int.
    """
    return validate_byte_count(value, name)


@dataclass(frozen=True)
class TieringConfig:
    """Validated tier-hierarchy knobs for :class:`~repro.core.PrismaConfig`.

    ``fast_profile`` names a :data:`~repro.storage.device.PROFILES` preset
    for the node-local fast tier.  ``backing_capacity_bytes``, when known,
    lets validation reject a nonsensical hierarchy (a "fast tier" at least
    as large as the backing store needs no tiering at all — and usually
    indicates swapped arguments).
    """

    fast_capacity_bytes: int
    promote_after: int = 2
    clairvoyant: bool = False
    fast_profile: str = "ramdisk"
    backing_capacity_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "fast_capacity_bytes",
            _validate_byte_capacity(self.fast_capacity_bytes, "fast_capacity_bytes"),
        )
        if isinstance(self.promote_after, bool) or not isinstance(self.promote_after, int):
            raise ValueError(f"promote_after must be an int, got {self.promote_after!r}")
        if self.promote_after < 1:
            raise ValueError("promote_after must be >= 1")
        from ..storage.device import PROFILES

        if self.fast_profile not in PROFILES:
            raise ValueError(
                f"unknown fast_profile {self.fast_profile!r}; "
                f"choose one of {sorted(PROFILES)}"
            )
        if self.backing_capacity_bytes is not None:
            object.__setattr__(
                self,
                "backing_capacity_bytes",
                _validate_byte_capacity(
                    self.backing_capacity_bytes, "backing_capacity_bytes"
                ),
            )
            if self.fast_capacity_bytes >= self.backing_capacity_bytes:
                raise ValueError(
                    "fast tier must be smaller than the backing store "
                    f"({self.fast_capacity_bytes} >= {self.backing_capacity_bytes}); "
                    "a fast tier that holds everything is just the backing store"
                )


class TieringObject(OptimizationObject):
    """Two-level tier hierarchy; reactive promote-on-Nth-access policy."""

    def __init__(
        self,
        sim: "Simulator",
        backend: "SampleSource",
        fast_fs: Filesystem,
        fast_capacity_bytes: int,
        promote_after: int = 2,
        name: str = "prisma.tiering",
        promotion_source: Optional[Callable[[str], Event]] = None,
    ) -> None:
        super().__init__(sim, backend, name)
        if promote_after < 1:
            raise ValueError("promote_after must be >= 1")
        self.fast_fs = fast_fs
        self.fast_capacity_bytes = _validate_byte_capacity(fast_capacity_bytes)
        self.promote_after = promote_after
        #: where tier fills read their bytes from; ``None`` means the
        #: backend.  The cluster layer points this at a peer's tier so a
        #: promotion never re-reads the backing store.
        self.promotion_source = promotion_source
        #: path -> bytes resident on the fast tier (LRU order)
        self._resident: "OrderedDict[str, int]" = OrderedDict()
        self._resident_bytes = 0
        self._access_counts: Dict[str, int] = {}
        #: paths with a background promotion in flight (pruned in the
        #: promotion's ``finally`` — crashes and injected faults included)
        self._promoting: Set[str] = set()
        #: path -> in-flight read-through fetch (concurrent requests coalesce)
        self._fetching: Dict[str, Event] = {}
        self.counters = CounterSet()

    # -- data path --------------------------------------------------------------
    def read_whole(self, path: str) -> Event:
        """Serve a whole-file read from the tier hierarchy.

        This is the :class:`~repro.storage.posix.PosixLike` read operation
        the prefetcher's producers use, so a tiering object can sit directly
        under the RAM buffer as the prefetcher's backend.
        """
        tel = self.sim.telemetry
        if path in self._resident:
            self._resident.move_to_end(path)
            self.counters.add("fast_hits")
            if tel is not None:
                tel.registry.counter("prisma.tier_hits_total", object=self.name).inc()
            return self.fast_fs.read_whole(self._tier_path(path))
        self.counters.add("slow_reads")
        if tel is not None:
            tel.registry.counter("prisma.tier_misses_total", object=self.name).inc()
        count = self._access_counts.get(path, 0) + 1
        self._access_counts[path] = count
        if path not in self._promoting and self._should_promote(path, count):
            self._promoting.add(path)
            self.sim.process(self._promote(path), name=f"{self.name}.promote")
        return self.backend.read_whole(path)

    def serve(self, path: str) -> Optional[Event]:
        return self.read_whole(path)

    def fetch_through(self, path: str, admit: bool = True) -> Event:
        """Read-through: a miss reads the source exactly once, then resides.

        The cooperative-cache read operation (:mod:`repro.cluster`): a
        resident path is served from the fast tier; a miss reads the
        promotion source (or backend) **once**, admits the bytes inline
        when ``admit`` is true, and returns the byte count.  Concurrent
        fetches for the same path coalesce onto the single in-flight read —
        the mechanism behind "at most one backing-store read per sample",
        and what makes retried (at-most-once ambiguous) peer requests safe.

        ``admit=False`` reads through without caching — a requester that
        does not own the sample and should not displace its own shard.
        """
        tel = self.sim.telemetry
        if path in self._resident:
            self._resident.move_to_end(path)
            self.counters.add("fast_hits")
            if tel is not None:
                tel.registry.counter("prisma.tier_hits_total", object=self.name).inc()
            return self.fast_fs.read_whole(self._tier_path(path))
        inflight = self._fetching.get(path)
        if inflight is not None:
            self.counters.add("coalesced_fetches")
            done = Event(self.sim, name=f"{self.name}.coalesced:{path}")
            return chain_result(inflight, done)
        self.counters.add("slow_reads")
        if tel is not None:
            tel.registry.counter("prisma.tier_misses_total", object=self.name).inc()
        proc = self.sim.process(self._fetch(path, admit), name=f"{self.name}.fetch")
        self._fetching[path] = proc
        proc.add_callback(lambda _ev: self._fetching.pop(path, None))
        done = Event(self.sim, name=f"{self.name}.fetch:{path}")
        return chain_result(proc, done)

    def _fetch(self, path: str, admit: bool):
        """One coalesced source read, optionally admitted to the fast tier."""
        nbytes = yield self._source_read(path)
        if admit:
            yield from self._admit(path, nbytes)
        return nbytes

    def _source_read(self, path: str) -> Event:
        """Read the bytes a tier fill needs (promotion source or backend)."""
        if self.promotion_source is not None:
            return self.promotion_source(path)
        return self.backend.read_whole(path)

    def _tier_path(self, path: str) -> str:
        return f"/fast{path}"

    # -- policy hooks ----------------------------------------------------------
    def _should_promote(self, path: str, count: int) -> bool:
        """Reactive policy: promote once the access count hits the knob."""
        return count >= self.promote_after

    def _pick_victim(self) -> str:
        """Reactive policy: demote the least-recently-used resident."""
        return next(iter(self._resident))

    def _make_room(self, path: str, nbytes: int) -> bool:
        """Evict until ``nbytes`` fit; return False to abort the promotion."""
        while self._resident and self._resident_bytes + nbytes > self.fast_capacity_bytes:
            self._demote(self._pick_victim())
        return self._resident_bytes + nbytes <= self.fast_capacity_bytes

    # -- promotion / demotion --------------------------------------------------
    def _promote(self, path: str):
        """Background copy slow → fast, then mark resident."""
        try:
            try:
                nbytes = yield self._source_read(path)
            except Exception:  # noqa: BLE001 - promotion is best-effort
                self.counters.add("promotion_failures")
                return
            yield from self._admit(path, nbytes)
        finally:
            # Unconditional: a crash (Interrupt) or injected fault mid-copy
            # must not leave the path stuck in "promotion in flight" forever.
            self._promoting.discard(path)

    def _admit(self, path: str, nbytes: int):
        """Make room, copy onto the fast tier, and mark ``path`` resident.

        Shared tail of background promotion and read-through fetches;
        returns False when the bytes were declined (too large, or eviction
        could not free enough room under the policy).
        """
        if nbytes > self.fast_capacity_bytes:
            self.counters.add("too_large")
            return False
        if not self._make_room(path, nbytes):
            self.counters.add("promotions_declined")
            return False
        tier_path = self._tier_path(path)
        if not self.fast_fs.exists(tier_path):
            self.fast_fs.create(tier_path, 0)
        yield self.fast_fs.write(tier_path, nbytes)
        # A racing promotion/demotion interleaving may have made the
        # path resident meanwhile; replace, never double-count.
        old = self._resident.pop(path, None)
        if old is not None:
            self._resident_bytes -= old
        self._resident[path] = int(nbytes)
        self._resident_bytes += int(nbytes)
        self.counters.add("promotions")
        tel = self.sim.telemetry
        if tel is not None:
            tel.registry.counter(
                "prisma.tier_promotions_total", object=self.name
            ).inc()
        return True

    def _demote(self, victim: str) -> None:
        """Drop one resident file (the slow tier remains authoritative)."""
        size = self._resident.pop(victim)
        self._resident_bytes -= size
        # A demoted file must re-earn promotion: keeping its access count
        # would re-promote it on the very next read, thrashing the tier —
        # and the stale entry is the unbounded-growth leak this fixes.
        self._access_counts.pop(victim, None)
        tier_path = self._tier_path(victim)
        if self.fast_fs.exists(tier_path):
            self.fast_fs.unlink(tier_path)
        self.counters.add("demotions")

    def _evict_for(self, nbytes: int) -> None:
        while self._resident and self._resident_bytes + nbytes > self.fast_capacity_bytes:
            self._demote(self._pick_victim())

    # -- epoch lifecycle --------------------------------------------------------
    def on_epoch(self, paths) -> None:
        """Prune bookkeeping for files that left the dataset.

        Access counts deliberately survive epoch boundaries (a once-per-
        epoch workload needs cross-epoch counting to ever promote), but
        entries for paths no longer in the filenames list are dead weight —
        the second half of the unbounded-growth leak.
        """
        covered = set(paths)
        for path in list(self._access_counts):
            if path not in covered:
                del self._access_counts[path]
        for path in [p for p in self._resident if p not in covered]:
            self._demote(path)

    # -- control interface -------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        hits = self.counters.get("fast_hits")
        misses = self.counters.get("slow_reads")
        return MetricsSnapshot(
            time=self.sim.now,
            requests=hits + misses,
            hits=hits,
            waits=misses,
            buffer_level=len(self._resident),
            buffer_capacity=self.fast_capacity_bytes,
            bytes_fetched=self.counters.get("promotions"),
            queue_remaining=0,
        )

    def apply_settings(self, settings: TuningSettings) -> None:
        promote_after = settings.extra.get("promote_after")
        if promote_after is not None:
            if int(promote_after) < 1:
                raise ValueError("promote_after must be >= 1")
            self.promote_after = int(promote_after)
        capacity = settings.extra.get("fast_capacity_bytes")
        if capacity is not None:
            self.fast_capacity_bytes = _validate_byte_capacity(capacity)
            self._evict_for(0)

    # -- observability -----------------------------------------------------------
    def fast_tier_hit_rate(self) -> float:
        hits = self.counters.get("fast_hits")
        total = hits + self.counters.get("slow_reads")
        return hits / total if total > 0 else 0.0

    @property
    def resident_files(self) -> int:
        return len(self._resident)

    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    @property
    def promotions_in_flight(self) -> int:
        return len(self._promoting)

    @property
    def fetches_in_flight(self) -> int:
        """Read-through fetches currently coalescing concurrent requests."""
        return len(self._fetching)

    @property
    def tracked_access_paths(self) -> int:
        """Size of the access-count table (the leak regression surface)."""
        return len(self._access_counts)


class ClairvoyantTieringObject(TieringObject):
    """Schedule-driven tiering: Belady eviction, next-use-aware promotion.

    Without an installed schedule it behaves like an always-decline cache
    (nothing is promoted); :meth:`install_schedule` — called directly or
    propagated from :meth:`ParallelPrefetcher.install_schedule
    <repro.core.prefetcher.ParallelPrefetcher.install_schedule>` — turns
    the oracle on.
    """

    def __init__(
        self,
        sim: "Simulator",
        backend: "SampleSource",
        fast_fs: Filesystem,
        fast_capacity_bytes: int,
        name: str = "prisma.tiering",
        promotion_source: Optional[Callable[[str], Event]] = None,
    ) -> None:
        super().__init__(
            sim, backend, fast_fs, fast_capacity_bytes, promote_after=1,
            name=name, promotion_source=promotion_source,
        )
        self.schedule: Optional[LookaheadSchedule] = None

    def install_schedule(self, schedule: LookaheadSchedule) -> None:
        self.schedule = schedule

    # -- policy hooks ----------------------------------------------------------
    def _should_promote(self, path: str, count: int) -> bool:
        """Promote on first read iff the schedule shows a future use."""
        return (
            self.schedule is not None
            and self.schedule.next_use_distance(path) != NEVER
        )

    def _pick_victim(self) -> str:
        """Belady: evict the resident whose next use is farthest away."""
        schedule = self.schedule
        assert schedule is not None  # _make_room only runs under a schedule
        victim, farthest = None, -1
        for path in self._resident:
            distance = schedule.next_use_distance(path)
            if distance == NEVER:
                return path  # never used again: the perfect victim
            if distance > farthest:
                victim, farthest = path, distance
        assert victim is not None
        return victim

    def _make_room(self, path: str, nbytes: int) -> bool:
        """Evict farthest-use residents, but never one needed sooner.

        Declining the promotion when every resident's next use is nearer
        than the candidate's is what makes the policy Belady-optimal rather
        than merely Belady-flavored: admitting the candidate anyway would
        evict a file we will stall on sooner.
        """
        if self.schedule is None:
            return False
        distance = self.schedule.next_use_distance(path)
        if distance == NEVER:
            return False
        while self._resident and self._resident_bytes + nbytes > self.fast_capacity_bytes:
            victim = self._pick_victim()
            if self.schedule.next_use_distance(victim) <= distance:
                return False
            self._demote(victim)
        return self._resident_bytes + nbytes <= self.fast_capacity_bytes
