"""Shared-dataset prefetching: one data plane, many jobs (paper §VII).

*"Under shared storage infrastructures it is common to have multiple DL
jobs (that are oblivious of each other) operating concurrently over the
same dataset, leading to resource contention and performance variation.
As such, it would be interesting to explore and introduce performance
isolation and resource fairness policies to these deployments."*

:class:`SharedDatasetPrefetcher` implements the coordination the paper
gestures at (and CoorDL [19] demonstrated): when K jobs train on the same
dataset, give them one prefetcher and one *coordinated* per-epoch shuffle.
Each file is then read from the backend **once** per epoch and served to
all K consumers from memory — K× less device traffic — with eviction
deferred until every registered consumer has taken its copy.

The coordinated order changes nothing statistically: each job still sees a
uniformly shuffled epoch; the jobs simply see the *same* shuffle, which is
the documented CoorDL trade-off.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from ..simcore.event import Event
from ..simcore.resources import FilterStore
from ..telemetry import CounterSet, TimeWeightedGauge
from .buffer import HIT_OVERHEAD, MEMORY_BANDWIDTH
from .filename_queue import FilenameQueue
from .optimization import MetricsSnapshot, OptimizationObject, TuningSettings

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator
    from ..storage.backend import SampleSource


class _SharedBuffer:
    """Path-keyed buffer whose entries survive until ``fanout`` takes each.

    Entries are mutable ``[path, payload, remaining]`` cells; takes
    decrement ``remaining`` *in place* (the slot is only freed when the
    last owed copy is delivered), and consumers of absent paths park on an
    explicit waiter list served directly at insert time.  Re-staging taken
    entries through the store's put queue would instead race producers for
    freed slots — the same starvation-deadlock class the live buffer's
    demanded-path rule guards against.
    """

    def __init__(self, sim: "Simulator", capacity: int, fanout: int, name: str) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.sim = sim
        self.fanout = fanout
        self._store: FilterStore = FilterStore(sim, capacity=capacity, name=name)
        self._waiters: Dict[str, List[Event]] = {}
        self.counters = CounterSet()
        self.occupancy = TimeWeightedGauge(sim, 0, name=f"{name}.occupancy")

    @property
    def capacity(self) -> int:
        return self._store.capacity  # Store normalizes finite capacities to int

    def set_capacity(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._store.set_capacity(capacity)

    @property
    def level(self) -> int:
        return self._store.level

    def _find(self, path: str):
        for item in self._store.items:
            if item[0] == path:
                return item
        return None

    def _release_slot(self, entry) -> None:
        """Pop a fully-consumed entry, freeing its slot for producers."""
        self._store.get(lambda it: it is entry)  # succeeds immediately
        self.occupancy.set(self.level)

    def insert(self, path: str, payload) -> Event:
        self.counters.add("inserts")
        done = Event(self.sim, name="shared.insert")
        inner = self._store.put([path, payload, self.fanout])

        def settled(ev: Event) -> None:
            if not ev.ok:
                done.fail(ev.exception)
                return
            self.occupancy.set(self.level)
            self._serve_waiters(path)
            done.succeed()

        inner.add_callback(settled)
        return done

    def _serve_waiters(self, path: str) -> None:
        waiters = self._waiters.get(path)
        if not waiters:
            return
        entry = self._find(path)
        if entry is None:
            return
        while waiters and entry[2] > 0:
            waiter = waiters.pop(0)
            entry[2] -= 1
            waiter.succeed(entry[1])
        if not waiters:
            del self._waiters[path]
        if entry[2] <= 0:
            self._release_slot(entry)

    def take(self, path: str) -> Event:
        """One consumer's copy of ``path``; value is the payload."""
        done = Event(self.sim, name="shared.take")
        entry = self._find(path)
        if entry is not None:
            self.counters.add("hits")
            entry[2] -= 1
            payload = entry[1]
            if entry[2] <= 0:
                self._release_slot(entry)
            done.succeed(payload)
            return done
        self.counters.add("waits")
        self._waiters.setdefault(path, []).append(done)
        return done

    def hit_rate(self) -> float:
        hits = self.counters.get("hits")
        total = hits + self.counters.get("waits")
        return hits / total if total > 0 else 0.0


class SharedDatasetPrefetcher(OptimizationObject):
    """Read-once, serve-K prefetching for jobs sharing one dataset.

    Jobs register up front (``consumers``); every covered file is fetched
    once per epoch and each consumer receives a memory-served copy.  Knobs
    and metrics match :class:`~repro.core.prefetcher.ParallelPrefetcher`,
    so the same control-plane policies apply unchanged.
    """

    def __init__(
        self,
        sim: "Simulator",
        backend: "SampleSource",
        consumers: int,
        producers: int = 2,
        buffer_capacity: int = 256,
        max_producers: int = 8,
        name: str = "prisma.shared",
    ) -> None:
        super().__init__(sim, backend, name)
        if consumers < 1:
            raise ValueError("consumers must be >= 1")
        if producers < 1:
            raise ValueError("producers must be >= 1")
        if max_producers < producers:
            raise ValueError("max_producers must be >= producers")
        self.consumers = consumers
        self.buffer = _SharedBuffer(
            sim, buffer_capacity, fanout=consumers, name=f"{name}.buffer"
        )
        self.queue = FilenameQueue(name=f"{name}.queue")
        self.max_producers = max_producers
        self._target_producers = producers
        self._live_producers = 0
        self._next_worker_id = 0
        self.active_producers = TimeWeightedGauge(sim, 0, name=f"{name}.active")
        self.allocated_producers = TimeWeightedGauge(sim, 0, name=f"{name}.allocated")
        self.bytes_fetched = 0.0
        self.files_fetched = 0
        self.read_errors = 0

    # -- knobs -----------------------------------------------------------------
    @property
    def target_producers(self) -> int:
        return self._target_producers

    def set_producers(self, t: int) -> None:
        if not 1 <= t <= self.max_producers:
            raise ValueError(f"producers must be in [1, {self.max_producers}]")
        self._target_producers = t
        self._spawn_up_to_target()

    def apply_settings(self, settings: TuningSettings) -> None:
        if settings.producers is not None:
            self.set_producers(settings.producers)
        if settings.buffer_capacity is not None:
            self.buffer.set_capacity(settings.buffer_capacity)

    # -- epoch lifecycle ------------------------------------------------------------
    def on_epoch(self, paths: Iterable[str]) -> None:
        self.queue.load(paths)
        self._spawn_up_to_target()

    def _spawn_up_to_target(self) -> None:
        while self._live_producers < self._target_producers and self.queue.remaining > 0:
            worker_id = self._next_worker_id
            self._next_worker_id += 1
            self._live_producers += 1
            self.allocated_producers.set(self._live_producers)
            self.sim.process(self._producer(worker_id), name=f"{self.name}.p{worker_id}")

    def _producer(self, worker_id: int):
        try:
            while True:
                if self._live_producers > self._target_producers:
                    return
                path = self.queue.next()
                if path is None:
                    return
                self.active_producers.increment()
                try:
                    payload = yield self.backend.read_whole(path)
                except Exception as exc:  # noqa: BLE001 - deliver to consumers
                    self.read_errors += 1
                    payload = exc
                finally:
                    self.active_producers.decrement()
                if not isinstance(payload, Exception):
                    self.bytes_fetched += payload
                    self.files_fetched += 1
                yield self.buffer.insert(path, payload)
        finally:
            self._live_producers -= 1
            self.allocated_producers.set(self._live_producers)

    # -- data path --------------------------------------------------------------
    def serve(self, path: str) -> Optional[Event]:
        if not self.queue.covers(path):
            return None
        fetched = self.buffer.take(path)
        done = Event(self.sim, name=f"{self.name}.serve")

        def after_fetch(ev: Event) -> None:
            if not ev.ok:
                done.fail(ev.exception)
                return
            payload = ev.value
            if isinstance(payload, Exception):
                done.fail(payload)
                return

            def copy_out():
                yield self.sim.timeout(HIT_OVERHEAD + payload / MEMORY_BANDWIDTH)
                return payload

            proc = self.sim.process(copy_out(), name=f"{self.name}.copy")
            proc.add_callback(
                lambda p: done.succeed(p.value) if p.ok else done.fail(p.exception)
            )

        fetched.add_callback(after_fetch)
        return done

    # -- control-plane reporting ------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        hits = self.buffer.counters.get("hits")
        waits = self.buffer.counters.get("waits")
        return MetricsSnapshot(
            time=self.sim.now,
            requests=hits + waits,
            hits=hits,
            waits=waits,
            buffer_level=self.buffer.level,
            buffer_capacity=self.buffer.capacity,
            producers_allocated=self._live_producers,
            producers_active=self.active_producers.value,
            bytes_fetched=self.bytes_fetched,
            queue_remaining=self.queue.remaining,
        )
