"""PRISMA's parallel data-prefetching optimization object (paper §IV).

Up to ``t`` *producer* threads concurrently dequeue filenames from the FIFO
queue, read the files from backend storage, and stage them in the in-memory
:class:`~repro.core.buffer.PrefetchBuffer` (at most ``N`` samples).
Consumers — the DL framework's reader threads or worker processes — are
served from the buffer; a served sample is evicted.

Both knobs are live: the control plane raises/lowers ``t`` (producers park
or spawn between files) and ``N`` (buffer capacity retargets without
eviction).  The number of *consumers* is deliberately unknown to the
prefetcher ("its number is oblivious to PRISMA").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from ..simcore.event import Event
from ..simcore.tracing import TimeWeightedGauge
from .buffer import HIT_OVERHEAD, MEMORY_BANDWIDTH, PrefetchBuffer
from .filename_queue import FilenameQueue
from .optimization import MetricsSnapshot, OptimizationObject, TuningSettings

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator
    from ..storage.posix import PosixLike


class ParallelPrefetcher(OptimizationObject):
    """Parallel read-ahead into a bounded in-memory buffer.

    Parameters
    ----------
    producers:
        Initial *t* — concurrent backend readers.
    buffer_capacity:
        Initial *N* — maximum staged samples.
    max_producers:
        Hard ceiling the control plane may never exceed.
    """

    def __init__(
        self,
        sim: "Simulator",
        backend: "PosixLike",
        producers: int = 2,
        buffer_capacity: int = 256,
        max_producers: int = 16,
        name: str = "prisma.prefetch",
    ) -> None:
        super().__init__(sim, backend, name)
        if producers < 1:
            raise ValueError("producers must be >= 1")
        if max_producers < producers:
            raise ValueError("max_producers must be >= producers")
        self.buffer = PrefetchBuffer(sim, buffer_capacity, name=f"{name}.buffer")
        self.queue = FilenameQueue(name=f"{name}.queue")
        self.max_producers = max_producers
        self._target_producers = producers
        self._live_producers = 0
        self._next_worker_id = 0
        #: producers currently blocked in a backend read (paper Fig. 3 input)
        self.active_producers = TimeWeightedGauge(sim, 0, name=f"{name}.active")
        #: producers alive (reading, inserting, or between files)
        self.allocated_producers = TimeWeightedGauge(sim, 0, name=f"{name}.allocated")
        self.bytes_fetched = 0.0
        self.files_fetched = 0
        self.read_errors = 0

    # -- knobs -----------------------------------------------------------------
    @property
    def target_producers(self) -> int:
        return self._target_producers

    def set_producers(self, t: int) -> None:
        """Retarget *t*; excess producers park after their current file."""
        if not 1 <= t <= self.max_producers:
            raise ValueError(f"producers must be in [1, {self.max_producers}]")
        self._target_producers = t
        self._spawn_up_to_target()

    def apply_settings(self, settings: TuningSettings) -> None:
        if settings.producers is not None:
            self.set_producers(settings.producers)
        if settings.buffer_capacity is not None:
            self.buffer.set_capacity(settings.buffer_capacity)

    # -- epoch lifecycle ------------------------------------------------------------
    def on_epoch(self, paths: Iterable[str]) -> None:
        """Install the shared shuffled filenames list and start prefetching."""
        self.queue.load(paths)
        # New epoch: every path becomes requestable again (the buffer's
        # duplicate-request detection tracks consumption per epoch).
        self.buffer.begin_epoch()
        self._spawn_up_to_target()

    def _spawn_up_to_target(self) -> None:
        while self._live_producers < self._target_producers and self.queue.remaining > 0:
            worker_id = self._next_worker_id
            self._next_worker_id += 1
            self._live_producers += 1
            self.allocated_producers.set(self._live_producers)
            self.sim.process(self._producer(worker_id), name=f"{self.name}.p{worker_id}")

    def _producer(self, worker_id: int):
        """One producer thread: dequeue, read, stage, repeat."""
        try:
            while True:
                # Park when the control plane shrank t below our rank.
                if self._live_producers > self._target_producers:
                    return
                path = self.queue.next()
                if path is None:
                    return  # epoch drained; respawned on next on_epoch()
                self.active_producers.increment()
                try:
                    payload = yield self.backend.read_whole(path)
                except Exception as exc:  # noqa: BLE001 - deliver, don't die
                    # A failed read must reach the consumer waiting for this
                    # path (or it would block forever); stage the exception —
                    # the buffer's documented staged-error contract.
                    self.read_errors += 1
                    payload = exc
                finally:
                    self.active_producers.decrement()
                if not isinstance(payload, Exception):
                    self.bytes_fetched += payload
                    self.files_fetched += 1
                yield self.buffer.insert(path, payload)
        finally:
            self._live_producers -= 1
            self.allocated_producers.set(self._live_producers)

    # -- data path --------------------------------------------------------------
    def serve(self, path: str) -> Optional[Event]:
        """Serve a read from the buffer, or decline for uncovered paths.

        The returned event fails (rather than blocking forever) when the
        buffer rejects the request as a duplicate — a second consumer asking
        for an in-flight or already-evicted path — and when a producer
        staged a backend read failure for this path.
        """
        if not self.queue.covers(path):
            return None  # e.g. validation files: fall through to backend
        hit, fetched = self.buffer.request(path)
        done = Event(self.sim, name=f"{self.name}.serve")

        def after_fetch(ev: Event) -> None:
            if not ev.ok:
                done.fail(ev.exception)
                return
            nbytes = ev.value
            if isinstance(nbytes, Exception):
                # A producer staged its read failure for this path.
                done.fail(nbytes)
                return

            def copy_out():
                yield self.sim.timeout(HIT_OVERHEAD + nbytes / MEMORY_BANDWIDTH)
                return nbytes

            proc = self.sim.process(copy_out(), name=f"{self.name}.copy")
            proc.add_callback(
                lambda p: done.succeed(p.value) if p.ok else done.fail(p.exception)
            )

        fetched.add_callback(after_fetch)
        return done

    # -- control-plane reporting ------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        hits = self.buffer.counters.get("hits")
        waits = self.buffer.counters.get("waits")
        return MetricsSnapshot(
            time=self.sim.now,
            requests=hits + waits,
            hits=hits,
            waits=waits,
            buffer_level=self.buffer.level,
            buffer_capacity=self.buffer.capacity,
            producers_allocated=self._live_producers,
            producers_active=self.active_producers.value,
            bytes_fetched=self.bytes_fetched,
            queue_remaining=self.queue.remaining,
        )
