"""PRISMA's parallel data-prefetching optimization object (paper §IV).

Up to ``t`` *producer* threads concurrently dequeue filenames from the FIFO
queue, read the files from backend storage, and stage them in the in-memory
:class:`~repro.core.buffer.PrefetchBuffer` (at most ``N`` samples).
Consumers — the DL framework's reader threads or worker processes — are
served from the buffer; a served sample is evicted.

Both knobs are live: the control plane raises/lowers ``t`` (producers park
or spawn between files) and ``N`` (buffer capacity retargets without
eviction).  The number of *consumers* is deliberately unknown to the
prefetcher ("its number is oblivious to PRISMA").

Clairvoyant lookahead (ROADMAP item 1): when a
:class:`~repro.core.schedule.LookaheadSchedule` is installed, producers keep
fetching **across the epoch boundary** once the current epoch's FIFO drains
— while the buffer has slack, they claim the next epoch's prefix from the
schedule and stage it early.  ``on_epoch`` then loads the filenames list
with those paths marked *prestaged*, so the new epoch starts with warm
buffer hits instead of a cold ramp.  The ``lookahead_epochs`` knob (also a
``TuningSettings.extra`` key) bounds how far ahead producers may run;
0 disables lookahead entirely.

Fault tolerance (the graceful-degradation half of the data plane):

* **Producer supervision.**  Every producer process is joined by a
  supervisor callback.  A producer that dies abnormally (e.g. a
  fault-injected crash) has its in-flight path *requeued* — the path was
  dequeued but never staged, so without recovery the consumer waiting on
  it would hang forever — and a replacement producer is spawned while work
  remains (``producer_respawns`` counts these).
* **Serve-side retry.**  A staged :class:`TransientReadError` (the
  retryable storage error class) is not surfaced to the consumer
  immediately: the serve path re-reads the file directly from the backend
  with exponential backoff, up to ``max_read_retries`` attempts
  (``serve_retries`` counts attempts).  Fatal errors — wrong path, bad
  descriptor — still fail the serve event at once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Optional, Set

from ..simcore.errors import Interrupt, ProcessError
from ..simcore.event import Event
from ..telemetry import TimeWeightedGauge
from ..storage.filesystem import TransientReadError
from .buffer import HIT_OVERHEAD, MEMORY_BANDWIDTH, PrefetchBuffer
from .filename_queue import FilenameQueue
from .optimization import MetricsSnapshot, OptimizationObject, TuningSettings
from .schedule import LookaheadSchedule


def _validate_lookahead(value: object) -> int:
    """Normalize the ``lookahead_epochs`` knob (int >= 0, bool rejected)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"lookahead_epochs must be an int, got {value!r}")
    if value < 0:
        raise ValueError("lookahead_epochs must be >= 0")
    return value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Process, Simulator
    from ..storage.backend import SampleSource


def _storage_error(exc: BaseException) -> Exception:
    """Unwrap the kernel's ProcessError shroud to the real storage error.

    A backend read that fails inside its own process reaches the producer
    as ``ProcessError(__cause__=<original>)``; classification (transient
    vs fatal) and the staged-error payload must see the original.
    """
    cause = exc.__cause__ if isinstance(exc, ProcessError) else exc
    return cause if isinstance(cause, Exception) else ProcessError(repr(exc))


class ParallelPrefetcher(OptimizationObject):
    """Parallel read-ahead into a bounded in-memory buffer.

    Parameters
    ----------
    producers:
        Initial *t* — concurrent backend readers.
    buffer_capacity:
        Initial *N* — maximum staged samples.
    max_producers:
        Hard ceiling the control plane may never exceed.
    max_read_retries:
        Serve-side retry attempts for staged *transient* read errors
        (0 disables retry and surfaces the staged error directly).
    retry_backoff:
        First retry delay in seconds; doubles per attempt.
    lookahead_epochs:
        How many epochs past the live one producers may fetch ahead when a
        :class:`~repro.core.schedule.LookaheadSchedule` is installed
        (0 disables cross-epoch lookahead).
    """

    def __init__(
        self,
        sim: "Simulator",
        backend: "SampleSource",
        producers: int = 2,
        buffer_capacity: int = 256,
        max_producers: int = 16,
        max_read_retries: int = 2,
        retry_backoff: float = 1e-3,
        lookahead_epochs: int = 0,
        name: str = "prisma.prefetch",
    ) -> None:
        super().__init__(sim, backend, name)
        if producers < 1:
            raise ValueError("producers must be >= 1")
        if max_producers < producers:
            raise ValueError("max_producers must be >= producers")
        if max_read_retries < 0:
            raise ValueError("max_read_retries must be >= 0")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        self.buffer = PrefetchBuffer(sim, buffer_capacity, name=f"{name}.buffer")
        self.queue = FilenameQueue(name=f"{name}.queue")
        self.max_producers = max_producers
        self.max_read_retries = max_read_retries
        self.retry_backoff = retry_backoff
        self._target_producers = producers
        self._live_producers = 0
        self._next_worker_id = 0
        #: live producer processes, for supervision and crash injection
        self._procs: Dict[int, "Process"] = {}
        #: path each producer has dequeued but not yet staged
        self._in_flight: Dict[int, str] = {}
        #: producers currently blocked in a backend read (paper Fig. 3 input)
        self.active_producers = TimeWeightedGauge(sim, 0, name=f"{name}.active")
        #: producers alive (reading, inserting, or between files)
        self.allocated_producers = TimeWeightedGauge(sim, 0, name=f"{name}.allocated")
        self.bytes_fetched = 0.0
        self.files_fetched = 0
        self.read_errors = 0
        self.producer_crashes = 0
        self.producer_respawns = 0
        self.serve_retries = 0
        self.lookahead_epochs = _validate_lookahead(lookahead_epochs)
        #: the clairvoyant oracle (None = reactive per-epoch FIFO only)
        self.schedule: Optional[LookaheadSchedule] = None
        #: next-epoch paths fetched early, pending their epoch's load()
        self._staged_ahead: Set[str] = set()
        self.lookahead_fetches = 0

    def install_schedule(self, schedule: LookaheadSchedule) -> None:
        """Install the clairvoyant oracle, propagating it down the stack.

        A backend that is itself schedule-aware (e.g.
        :class:`~repro.core.tiering.ClairvoyantTieringObject`) receives the
        same schedule, so prefetcher and tier hierarchy plan against one
        shared fetch clock.
        """
        self.schedule = schedule
        propagate = getattr(self.backend, "install_schedule", None)
        if propagate is not None:
            propagate(schedule)

    # -- knobs -----------------------------------------------------------------
    @property
    def target_producers(self) -> int:
        return self._target_producers

    def set_producers(self, t: int) -> None:
        """Retarget *t*; excess producers park after their current file."""
        if not 1 <= t <= self.max_producers:
            raise ValueError(f"producers must be in [1, {self.max_producers}]")
        self._target_producers = t
        self._spawn_up_to_target()

    def apply_settings(self, settings: TuningSettings) -> None:
        if settings.producers is not None:
            self.set_producers(settings.producers)
        if settings.buffer_capacity is not None:
            self.buffer.set_capacity(settings.buffer_capacity)
        lookahead = settings.extra.get("lookahead_epochs")
        if lookahead is not None:
            self.lookahead_epochs = _validate_lookahead(lookahead)
            self._spawn_up_to_target()

    # -- epoch lifecycle ------------------------------------------------------------
    def on_epoch(self, paths: Iterable[str]) -> None:
        """Install the shared shuffled filenames list and start prefetching."""
        paths = list(paths)
        if self.schedule is not None:
            if self.schedule.epochs_started >= self.schedule.n_epochs:
                # Horizon exhausted: degrade gracefully to reactive mode
                # rather than failing the run.
                self.schedule = None
            else:
                self.schedule.start_epoch(paths)
        # Paths fetched across the epoch boundary are already staged: keep
        # them covered but out of the FIFO, or they would be fetched twice.
        prestaged = [p for p in paths if p in self._staged_ahead]
        self.queue.load(paths, prestaged=prestaged)
        self._staged_ahead.difference_update(prestaged)
        # New epoch: every path becomes requestable again (the buffer's
        # duplicate-request detection tracks consumption per epoch).
        self.buffer.begin_epoch()
        self._spawn_up_to_target()

    # -- clairvoyant lookahead ---------------------------------------------------
    def _lookahead_ready(self) -> bool:
        """Whether a producer could claim a cross-epoch fetch right now."""
        return self._peek_lookahead() is not None

    def _peek_lookahead(self) -> Optional[str]:
        if self.schedule is None or self.lookahead_epochs < 1:
            return None
        # Slack rule: never let lookahead compete with the live epoch for
        # buffer space — count staged samples *and* in-flight fetches.
        if self.buffer.level + len(self._in_flight) >= self.buffer.capacity:
            return None
        path = self.schedule.peek_ahead(self.lookahead_epochs)
        if path is None:
            return None
        # Stop (don't skip) on conflict: the path is still buffered or in
        # flight for the *current* epoch.  Skipping would desync the fetch
        # clock; stopping keeps the claimed prefix contiguous, and the
        # serve-path respawn hook retries once the conflict clears.
        if self.buffer.contains(path) or path in self._in_flight.values():
            return None
        return path

    def _claim_lookahead(self) -> Optional[str]:
        """Atomically claim the next cross-epoch path for one producer."""
        path = self._peek_lookahead()
        if path is None:
            return None
        assert self.schedule is not None
        self.schedule.mark_fetched(path)  # claim = advance the fetch clock
        self._staged_ahead.add(path)
        self.lookahead_fetches += 1
        return path

    def _spawn_up_to_target(self) -> None:
        while self._live_producers < self._target_producers and (
            self.queue.remaining > 0 or self._lookahead_ready()
        ):
            worker_id = self._next_worker_id
            self._next_worker_id += 1
            self._live_producers += 1
            self.allocated_producers.set(self._live_producers)
            proc = self.sim.process(
                self._producer(worker_id), name=f"{self.name}.p{worker_id}"
            )
            self._procs[worker_id] = proc
            proc.add_callback(
                lambda p, wid=worker_id: self._on_producer_exit(wid, p)
            )

    # -- fault injection / supervision ------------------------------------------------
    def crash_producer(self, cause: object = "fault-injection") -> bool:
        """Kill one live producer thread (lowest worker id, for determinism).

        Returns whether a producer was actually crashed.  The supervisor
        requeues the victim's in-flight path and respawns a replacement.
        """
        for worker_id in sorted(self._procs):
            proc = self._procs[worker_id]
            if proc.is_alive:
                proc.interrupt(cause)
                return True
        return False

    def _on_producer_exit(self, worker_id: int, proc: Event) -> None:
        """Supervisor: reap a finished producer; recover from crashes."""
        self._procs.pop(worker_id, None)
        if proc.ok:
            return  # normal exit: parked or epoch drained
        self.producer_crashes += 1
        path = self._in_flight.pop(worker_id, None)
        if path is not None:
            if path in self._staged_ahead:
                # A crashed *lookahead* fetch is not requeued into the live
                # epoch (the next load() may arrive while it would still be
                # pending); releasing the claim re-enqueues it normally in
                # its own epoch — its clock position stays claimed, and the
                # late refetch's mark is a no-op by design.
                self._staged_ahead.discard(path)
            else:
                # Dequeued but never staged: put it back or its consumer hangs.
                self.queue.requeue(path)
        if self._live_producers < self._target_producers and (
            self.queue.remaining > 0 or self._lookahead_ready()
        ):
            self.producer_respawns += 1
            self._spawn_up_to_target()

    def _producer(self, worker_id: int):
        """One producer thread: dequeue, read, stage, repeat."""
        try:
            while True:
                # Park when the control plane shrank t below our rank.
                if self._live_producers > self._target_producers:
                    return
                path = self.queue.next()
                if path is not None:
                    if self.schedule is not None:
                        # Dequeues happen in schedule order, so this is the
                        # normal clock advance; crash-requeued refetches
                        # match nothing and leave the clock alone.
                        self.schedule.mark_fetched(path)
                else:
                    path = self._claim_lookahead()
                    if path is None:
                        return  # epoch drained; respawned on next on_epoch()
                self._in_flight[worker_id] = path
                self.active_producers.increment()
                tel = self.sim.telemetry
                fetch = None
                if tel is not None:
                    fetch = tel.begin(
                        "prefetch.fetch", f"{self.name}.p{worker_id}", "prefetcher", path=path
                    )
                try:
                    payload = yield self.backend.read_whole(path)
                except Interrupt:
                    # Crash injection: die without staging; the supervisor
                    # requeues the in-flight path and respawns.
                    if fetch is not None:
                        tel.end(fetch, outcome="crashed")
                    raise
                except Exception as exc:  # noqa: BLE001 - deliver, don't die
                    # A failed read must reach the consumer waiting for this
                    # path (or it would block forever); stage the exception —
                    # the buffer's documented staged-error contract.
                    self.read_errors += 1
                    payload = _storage_error(exc)
                    if fetch is not None:
                        tel.end(fetch, outcome="error", error=type(payload).__name__)
                        tel.registry.counter(
                            "prisma.fetch_errors_total", object=self.name
                        ).inc()
                finally:
                    self.active_producers.decrement()
                if not isinstance(payload, Exception):
                    self.bytes_fetched += payload
                    self.files_fetched += 1
                    if fetch is not None:
                        tel.end(fetch, outcome="ok", bytes=payload)
                insert = self.buffer.insert(path, payload)
                # Commit point: the buffer owns the (queued) insert from
                # here, so a crash past this line loses nothing.
                self._in_flight.pop(worker_id, None)
                yield insert
        finally:
            self._live_producers -= 1
            self.allocated_producers.set(self._live_producers)

    # -- data path --------------------------------------------------------------
    def serve(self, path: str) -> Optional[Event]:
        """Serve a read from the buffer, or decline for uncovered paths.

        The returned event fails (rather than blocking forever) when the
        buffer rejects the request as a duplicate — a second consumer asking
        for an in-flight or already-evicted path — and when a producer
        staged a backend read failure for this path.  *Transient* staged
        errors are first retried directly against the backend.
        """
        if not self.queue.covers(path):
            return None  # e.g. validation files: fall through to backend
        tel = self.sim.telemetry
        serve_span = None
        if tel is not None:
            serve_span = tel.begin(
                "prefetch.serve", f"{self.name}.serve", "prefetcher", lane=True, path=path
            )
        hit, fetched = self.buffer.request(path)
        done = Event(self.sim, name=f"{self.name}.serve")
        if tel is not None:
            serve_span.args["hit"] = hit
            hist = tel.registry.histogram("prisma.serve_latency_seconds", object=self.name)
            start = self.sim.now

            def record_serve(ev: Event) -> None:
                tel.end(serve_span, ok=ev.ok)
                hist.observe(self.sim.now - start)

            done.add_callback(record_serve)

        def after_fetch(ev: Event) -> None:
            if not ev.ok:
                done.fail(ev.exception)
                return
            nbytes = ev.value
            if isinstance(nbytes, Exception):
                # A producer staged its read failure for this path.
                if self.max_read_retries > 0 and isinstance(nbytes, TransientReadError):
                    self.sim.process(
                        self._retry_read(path, nbytes, done),
                        name=f"{self.name}.retry",
                    )
                else:
                    done.fail(nbytes)
                return

            def copy_out():
                yield self.sim.timeout(HIT_OVERHEAD + nbytes / MEMORY_BANDWIDTH)
                return nbytes

            proc = self.sim.process(copy_out(), name=f"{self.name}.copy")
            proc.add_callback(
                lambda p: done.succeed(p.value) if p.ok else done.fail(p.exception)
            )

        fetched.add_callback(after_fetch)
        if self.schedule is not None and self.lookahead_epochs > 0:
            # Each serve evicts a sample, opening buffer slack: resume
            # cross-epoch fetching if producers parked on a full buffer.
            done.add_callback(lambda _ev: self._spawn_up_to_target())
        return done

    def _retry_read(self, path: str, first_exc: Exception, done: Event):
        """Re-read ``path`` from the backend with exponential backoff.

        Degraded-mode data path: the buffered copy was a staged transient
        failure, so the sample is fetched directly (no re-staging — the
        consumer is already waiting on ``done``).
        """
        delay = self.retry_backoff
        exc = first_exc
        for _ in range(self.max_read_retries):
            self.serve_retries += 1
            if delay > 0:
                yield self.sim.timeout(delay)
            delay *= 2
            try:
                nbytes = yield self.backend.read_whole(path)
            except Exception as retry_exc:  # noqa: BLE001 - classified below
                exc = _storage_error(retry_exc)
                if not isinstance(exc, TransientReadError):
                    break  # fatal: no point burning further attempts
                continue
            self.bytes_fetched += nbytes
            self.files_fetched += 1
            done.succeed(nbytes)
            return
        done.fail(exc)

    # -- control-plane reporting ------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        hits = self.buffer.counters.get("hits")
        waits = self.buffer.counters.get("waits")
        return MetricsSnapshot(
            time=self.sim.now,
            requests=hits + waits,
            hits=hits,
            waits=waits,
            buffer_level=self.buffer.level,
            buffer_capacity=self.buffer.capacity,
            producers_allocated=self._live_producers,
            producers_active=self.active_producers.value,
            bytes_fetched=self.bytes_fetched,
            queue_remaining=self.queue.remaining,
            files_fetched=self.files_fetched,
            read_errors=self.read_errors,
            producer_respawns=self.producer_respawns,
            serve_retries=self.serve_retries,
            lookahead_fetches=self.lookahead_fetches,
        )
