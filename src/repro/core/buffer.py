"""PRISMA's in-memory prefetch buffer.

The buffer holds at most ``N`` training samples (paper §IV).  The caching
policy is the paper's: *"a training file is stored in the buffer whenever it
is read by a producer and is evicted when a consumer requests it"* —
evict-on-read, exactly-once per epoch, which is optimal for a workload that
reads every file once per epoch in a known order.

Consumers request samples *by path*; requests for samples not yet produced
block until the producer delivers them (out-of-order consumers — PyTorch's
round-robin workers — are each unblocked individually).  Capacity is
dynamic: the control plane retargets ``N`` at run time.

Internals (this is the data plane's hot path — paper §IV argues a buffer
hit must cost no more than a memory copy):

* Storage is a :class:`~repro.simcore.resources.KeyedStore`: items live in
  a dict keyed by path and each blocked consumer parks on a *per-path*
  waiter list, so ``insert``/``request``/``contains`` are all O(1).  (The
  previous :class:`~repro.simcore.resources.FilterStore` backing re-scanned
  every queued getter against every buffered item per dispatch —
  O(getters × items), quadratic over an epoch at the paper's scale.)
* **Duplicate requests fail fast.**  Evict-on-read plus read-once-per-epoch
  means a path can be delivered to exactly one consumer per epoch.  A
  second ``request`` for a path that is already being waited on, or that
  was already consumed this epoch, can never be satisfied — instead of
  deadlocking it fails immediately with
  :class:`~repro.simcore.errors.DuplicateRequestError`.  ``begin_epoch``
  resets the consumed-path tracking when a new epoch's filename list is
  installed.
* **Staged-error contract.**  Producers deliver backend read *failures*
  through the buffer too (otherwise the consumer waiting on that path would
  block forever): ``insert`` accepts an :class:`Exception` payload in place
  of the byte count.  Such inserts are counted as ``insert_errors`` (vs
  ``inserts``) and the exception instance becomes the request event's
  value; the prefetcher turns it into a failed ``serve`` event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Set, Tuple, Union

from ..simcore.errors import DuplicateRequestError
from ..simcore.event import Event
from ..simcore.resources import KeyedStore
from ..telemetry import CounterSet, TimeWeightedGauge

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator

#: Memory-copy rate for buffer hits (bytes/s).
MEMORY_BANDWIDTH = 6.0e9
#: Fixed overhead of serving a sample out of the buffer (seconds).
HIT_OVERHEAD = 5e-6

#: What a producer may stage for a path: the sample's byte count, or the
#: exception its backend read failed with (delivered to the consumer).
SamplePayload = Union[int, Exception]


def _validate_capacity(capacity: int) -> int:
    if isinstance(capacity, bool) or not isinstance(capacity, int):
        raise ValueError(f"capacity must be an int, got {capacity!r}")
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    return capacity


class PrefetchBuffer:
    """Bounded, path-keyed sample buffer with evict-on-read semantics."""

    def __init__(self, sim: "Simulator", capacity: int, name: str = "prisma.buffer") -> None:
        self.sim = sim
        self.name = name
        self._store: KeyedStore = KeyedStore(
            sim, capacity=_validate_capacity(capacity), name=name
        )
        #: paths already delivered to a consumer this epoch (evict-on-read:
        #: a repeat request for one of these would block forever)
        self._consumed: Set[str] = set()
        self.counters = CounterSet()
        #: time-weighted occupancy, consumed by the control loop
        self.occupancy = TimeWeightedGauge(sim, 0, name=f"{name}.occupancy")

    # -- capacity --------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._store.capacity

    def set_capacity(self, capacity: int) -> None:
        """Control-plane knob: retarget N (never evicts on shrink)."""
        self._store.set_capacity(_validate_capacity(capacity))

    @property
    def level(self) -> int:
        return self._store.level

    def fill_fraction(self) -> float:
        return self.level / self.capacity

    # -- epoch lifecycle ----------------------------------------------------------
    def begin_epoch(self) -> None:
        """Reset consumed-path tracking for a new epoch's filename list.

        Every path becomes requestable again (the producers will re-stage
        each one exactly once).  Buffered-but-unconsumed leftovers from the
        previous epoch stay valid.
        """
        self._consumed.clear()

    # -- producer side ------------------------------------------------------------
    def insert(self, path: str, payload: SamplePayload) -> Event:
        """Stage a produced sample; blocks (event-wise) while the buffer is full.

        ``payload`` is the sample's byte count, or — per the staged-error
        contract — the exception the producer's backend read failed with.
        """
        if isinstance(payload, Exception):
            self.counters.add("insert_errors")
        else:
            self.counters.add("inserts")
        done = Event(self.sim, name=f"{self.name}.insert")
        tel = self.sim.telemetry
        span = None
        if tel is not None:
            # The span covers any backpressure wait while the buffer is full.
            span = tel.begin(
                "buffer.insert", f"{self.name}.insert", "buffer", lane=True,
                path=path, staged_error=isinstance(payload, Exception),
            )
        inner = self._store.put(path, payload)

        def settled(ev: Event) -> None:
            if ev.ok:
                self.occupancy.set(self.level)
                if tel is not None:
                    tel.end(span, ok=True)
                    tel.sample(f"{self.name}.occupancy", self.level)
                done.succeed()
            else:
                if tel is not None:
                    tel.end(span, ok=False)
                done.fail(ev.exception)

        inner.add_callback(settled)
        return done

    # -- consumer side ------------------------------------------------------------
    def contains(self, path: str) -> bool:
        return self._store.contains(path)

    def request(self, path: str) -> Tuple[bool, Event]:
        """Consume (and evict) the sample for ``path``.

        Returns ``(hit, event)``: ``hit`` says whether the sample was already
        buffered at request time (a *miss* means the consumer stalls until a
        producer delivers it — the starvation signal the auto-tuner watches);
        the event's value is the sample's byte count (or the staged
        exception for a failed producer read).

        A duplicate request — for a path another consumer is already
        waiting on, or one already consumed this epoch — fails immediately
        with :class:`DuplicateRequestError` instead of blocking forever.
        """
        tel = self.sim.telemetry
        hit = self._store.contains(path)
        if not hit and path in self._consumed:
            # The path is owned by an earlier request: either a consumer is
            # still parked on it, or it was already delivered this epoch.
            in_flight = self._store.waiting(path) > 0
            self.counters.add("duplicate_requests")
            if tel is not None:
                tel.instant("buffer.duplicate", self.name, "buffer", path=path)
            done = Event(self.sim, name=f"{self.name}.req")
            done.fail(
                DuplicateRequestError(
                    f"request({path!r}) on {self.name!r} can never be served: "
                    + (
                        "another consumer is already waiting for this path"
                        if in_flight
                        else "path was already consumed this epoch (evict-on-read)"
                    )
                    + "; each path is staged exactly once per epoch"
                )
            )
            return False, done
        self.counters.add("hits" if hit else "waits")
        wait_span = None
        if tel is not None:
            tel.instant("buffer.hit" if hit else "buffer.wait", self.name, "buffer", path=path)
            if not hit:
                # Starvation interval: the consumer is parked until a
                # producer stages this path (the auto-tuner's key signal).
                wait_span = tel.begin(
                    "buffer.starve", f"{self.name}.wait", "buffer", lane=True, path=path
                )
        # Claim the path *now* (not in the event callback): the claim is
        # what makes a concurrent duplicate request fail fast instead of
        # parking on a key that will never be re-staged.
        self._consumed.add(path)
        done = Event(self.sim, name=f"{self.name}.req")
        inner = self._store.get(path)

        def settled(ev: Event) -> None:
            if ev.ok:
                self.occupancy.set(self.level)
                if tel is not None:
                    if wait_span is not None:
                        tel.end(wait_span, ok=True)
                    tel.sample(f"{self.name}.occupancy", self.level)
                done.succeed(ev.value)
            else:
                if wait_span is not None:
                    tel.end(wait_span, ok=False)
                done.fail(ev.exception)

        inner.add_callback(settled)
        return hit, done

    # -- statistics --------------------------------------------------------------
    def hit_rate(self) -> float:
        hits = self.counters.get("hits")
        total = hits + self.counters.get("waits")
        return hits / total if total > 0 else 0.0

    def __repr__(self) -> str:
        return f"<PrefetchBuffer {self.name!r} {self.level}/{self.capacity}>"
