"""PRISMA's in-memory prefetch buffer.

The buffer holds at most ``N`` training samples (paper §IV).  The caching
policy is the paper's: *"a training file is stored in the buffer whenever it
is read by a producer and is evicted when a consumer requests it"* —
evict-on-read, exactly-once per epoch, which is optimal for a workload that
reads every file once per epoch in a known order.

Consumers request samples *by path*; requests for samples not yet produced
block until the producer delivers them (out-of-order consumers — PyTorch's
round-robin workers — are each unblocked individually).  Capacity is
dynamic: the control plane retargets ``N`` at run time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from ..simcore.event import Event
from ..simcore.resources import FilterStore
from ..simcore.tracing import CounterSet, TimeWeightedGauge

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator

#: Memory-copy rate for buffer hits (bytes/s).
MEMORY_BANDWIDTH = 6.0e9
#: Fixed overhead of serving a sample out of the buffer (seconds).
HIT_OVERHEAD = 5e-6


class PrefetchBuffer:
    """Bounded, path-keyed sample buffer with evict-on-read semantics."""

    def __init__(self, sim: "Simulator", capacity: int, name: str = "prisma.buffer") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.name = name
        self._store: FilterStore = FilterStore(sim, capacity=capacity, name=name)
        self.counters = CounterSet()
        #: time-weighted occupancy, consumed by the control loop
        self.occupancy = TimeWeightedGauge(sim, 0, name=f"{name}.occupancy")

    # -- capacity --------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return int(self._store.capacity)

    def set_capacity(self, capacity: int) -> None:
        """Control-plane knob: retarget N (never evicts on shrink)."""
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._store.set_capacity(capacity)

    @property
    def level(self) -> int:
        return self._store.level

    def fill_fraction(self) -> float:
        return self.level / self.capacity

    # -- producer side ------------------------------------------------------------
    def insert(self, path: str, nbytes: int) -> Event:
        """Stage a produced sample; blocks (event-wise) while the buffer is full."""
        self.counters.add("inserts")
        done = Event(self.sim, name=f"{self.name}.insert")
        inner = self._store.put((path, nbytes))

        def settled(ev: Event) -> None:
            if ev.ok:
                self.occupancy.set(self.level)
                done.succeed()
            else:
                done.fail(ev.exception)

        inner.add_callback(settled)
        return done

    # -- consumer side ------------------------------------------------------------
    def contains(self, path: str) -> bool:
        return any(item[0] == path for item in self._store.items)

    def request(self, path: str) -> Tuple[bool, Event]:
        """Consume (and evict) the sample for ``path``.

        Returns ``(hit, event)``: ``hit`` says whether the sample was already
        buffered at request time (a *miss* means the consumer stalls until a
        producer delivers it — the starvation signal the auto-tuner watches);
        the event's value is the sample's byte count.
        """
        hit = self.contains(path)
        self.counters.add("hits" if hit else "waits")
        done = Event(self.sim, name=f"{self.name}.req")
        inner = self._store.get(lambda item: item[0] == path)

        def settled(ev: Event) -> None:
            if ev.ok:
                self.occupancy.set(self.level)
                done.succeed(ev._value[1])
            else:
                done.fail(ev.exception)

        inner.add_callback(settled)
        return hit, done

    # -- statistics --------------------------------------------------------------
    def hit_rate(self) -> float:
        hits = self.counters.get("hits")
        total = hits + self.counters.get("waits")
        return hits / total if total > 0 else 0.0

    def __repr__(self) -> str:
        return f"<PrefetchBuffer {self.name!r} {self.level}/{self.capacity}>"
