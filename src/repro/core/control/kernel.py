"""The execution-agnostic control kernel (paper §III-A).

The paper's control plane is *logically centralized* and independent of the
data plane it tunes.  This module is that independence made literal: ONE
implementation of the monitor→decide→enforce cycle, written against two
pluggable seams so every deployment shape reuses it unchanged:

* a **driver** supplies the clock and the execution context — the simulated
  :class:`~.controller.Controller` runs the cycle inside a kernel process on
  simulated time, the thread-based
  :class:`~repro.core.live.controller.LiveController` runs it on a wall-clock
  daemon thread, and :class:`~.replicated.ReplicatedController` layers
  heartbeat failover over two sim drivers;
* a **transport** carries each control call to its stage —
  :class:`ChannelTransport` crosses a latency/fault-modelled
  :class:`~.rpc.ControlChannel` with retry/backoff, while
  :class:`DirectTransport` makes the in-process call of a live deployment
  under the *same* :class:`~.rpc.RetryPolicy` and typed-error taxonomy.

The kernel owns everything in between: stage registration against the
narrow :class:`StagePort` surface, bounded per-stage
:class:`~.monitor.MetricsHistory`, multi-object snapshot aggregation,
per-stage vs :class:`GlobalPolicy` dispatch, degraded-mode edge detection,
RPC failure accounting, and telemetry emission (``control.monitor`` /
``control.enforce`` spans, ``control.decision`` instants).  Control features
land here once and every plane gets them.

Mechanically, :meth:`ControlCycle.cycle` is a *sans-I/O* generator: it
yields :class:`PortCall` commands and never performs a call itself.  The
two pumps resolve them — :meth:`ControlCycle.run_events` inside a simulated
process (yielding transport events), :meth:`ControlCycle.run_inline`
synchronously on a thread.  Transport failures are thrown back into the
generator as typed :class:`~.rpc.RpcError` subclasses, so the skip/account
logic is written exactly once.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

try:  # pragma: no cover - Protocol is 3.8+; fall back for exotic interpreters
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

from ..optimization import MetricsSnapshot, TuningSettings
from .monitor import DEFAULT_MAX_ENTRIES, MetricsHistory
from .policy import ControlPolicy
from .rpc import (
    ControlChannel,
    RetryPolicy,
    RpcApplicationError,
    RpcRetriesExhausted,
    RpcTimeout,
    RpcTransportError,
)


class StagePort(Protocol):
    """The narrow surface a data plane exposes to the control plane.

    Both :class:`~repro.core.stage.PrismaStage` (simulated) and
    :class:`~repro.core.live.prefetcher.LivePrefetcher` (real threads)
    satisfy it structurally — the kernel never knows which it is driving.
    ``control_snapshot`` may return one :class:`MetricsSnapshot` or a list
    (one per optimization object); lists are aggregated before recording.
    """

    name: str

    def control_snapshot(self) -> Union[MetricsSnapshot, List[MetricsSnapshot]]: ...

    def control_apply(self, settings: TuningSettings) -> None: ...


class GlobalPolicy(abc.ABC):
    """A policy that decides over *all* stages jointly (system-wide visibility)."""

    @abc.abstractmethod
    def decide_all(
        self, histories: Dict[str, MetricsHistory]
    ) -> Dict[str, TuningSettings]:
        """Map stage name -> new settings (omit stages to leave unchanged)."""


# ---------------------------------------------------------------- transports
class ControlTransport(abc.ABC):
    """How one control-plane call reaches a stage.

    Concrete transports implement exactly one resolution style:
    :class:`ChannelTransport` is *event-based* (``issue`` returns a
    simulator event the driver waits on), :class:`DirectTransport` is
    *synchronous* (``invoke`` returns the value).  Both surface failures
    through the same typed taxonomy of :mod:`.rpc`.
    """

    kind: str = "abstract"


class ChannelTransport(ControlTransport):
    """Calls crossing a :class:`~.rpc.ControlChannel` with retry/backoff."""

    kind = "channel"

    def __init__(
        self,
        channel: ControlChannel,
        retry_policy: Optional[RetryPolicy] = None,
        timeout: Optional[float] = None,
    ) -> None:
        self.channel = channel
        self.retry_policy = retry_policy or RetryPolicy()
        self.timeout = timeout

    def issue(self, fn: Callable[..., Any], *args: Any):
        """One reliable control-plane RPC as a simulator event."""
        return self.channel.call_with_retry(
            fn, *args, policy=self.retry_policy, timeout=self.timeout
        )


class DirectTransport(ControlTransport):
    """In-process call under the shared retry policy and error taxonomy.

    The live deployment's transport: the far side is a plain method call,
    but failures still classify exactly as over a channel — transport-class
    errors (:class:`~.rpc.RpcTransportError`, :class:`~.rpc.RpcTimeout`)
    are retried with the :class:`~.rpc.RetryPolicy` backoff schedule under
    its wall-clock budget, anything else the callee raises becomes a fatal
    :class:`~.rpc.RpcApplicationError`, and an exhausted schedule raises
    :class:`~.rpc.RpcRetriesExhausted` chaining the last transport error.
    """

    kind = "direct"

    def __init__(
        self,
        retry_policy: Optional[RetryPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        name: str = "direct",
    ) -> None:
        self.retry_policy = retry_policy or RetryPolicy()
        self.clock = clock
        self.sleep = sleep
        self.name = name
        self.calls = 0
        self.retries = 0

    def invoke(self, fn: Callable[..., Any], *args: Any) -> Any:
        self.calls += 1
        pol = self.retry_policy
        start = self.clock()
        last: Optional[BaseException] = None
        for attempt in range(pol.max_attempts):
            if attempt > 0:
                backoff = pol.delay_for(attempt)
                if self.clock() + backoff - start > pol.budget:
                    break  # the backoff alone would blow the budget
                self.retries += 1
                if backoff > 0:
                    self.sleep(backoff)
            try:
                return fn(*args)
            except RpcApplicationError:
                raise
            except (RpcTransportError, RpcTimeout) as exc:
                last = exc
                if self.clock() - start >= pol.budget:
                    break
            except Exception as exc:  # noqa: BLE001 - typed and re-raised
                raise RpcApplicationError(
                    f"{self.name}: callee raised {type(exc).__name__}"
                ) from exc
        raise RpcRetriesExhausted(
            f"{self.name}: gave up after {pol.max_attempts} attempts / "
            f"{pol.budget:g}s budget"
        ) from last


# ---------------------------------------------------------------- registration
@dataclass
class KernelRegistration:
    """One stage attached to the kernel: port + policy + transport + history."""

    port: StagePort
    policy: Optional[ControlPolicy]
    transport: ControlTransport
    history: MetricsHistory
    #: degraded-mode state seen at the last cycle (telemetry edge detection)
    last_engaged: bool = field(default=False, init=False)


@dataclass
class PortCall:
    """A command yielded by :meth:`ControlCycle.cycle`: call ``fn(*args)``.

    The pump resolves it through ``registration.transport`` and sends the
    result (or throws the typed failure) back into the cycle generator.
    """

    registration: KernelRegistration
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()

    @property
    def transport(self) -> ControlTransport:
        return self.registration.transport


#: Default bound on per-stage history retention (snapshots per stage).
DEFAULT_HISTORY_LIMIT = DEFAULT_MAX_ENTRIES

#: Transport-class failures the kernel absorbs (skip the stage this cycle).
_SKIPPABLE = (RpcTransportError, RpcRetriesExhausted)


class ControlCycle:
    """The one monitor→decide→enforce implementation, driver-agnostic.

    Drivers own *when* cycles run (sim process vs daemon thread vs failover
    replica) and call one of the pumps per period; the kernel owns *what* a
    cycle does.  A stage whose transport stays down through the retry
    budget is skipped for the cycle (``rpc_failures`` incremented) — the
    control plane degrades to stale knobs rather than crashing, while a
    far-side :class:`~.rpc.RpcApplicationError` propagates to the driver
    (retrying would replay a deterministic bug).
    """

    def __init__(
        self,
        name: str = "prisma.kernel",
        *,
        clock: Callable[[], float] = time.monotonic,
        telemetry: Optional[Callable[[], Any]] = None,
        global_policy: Optional[GlobalPolicy] = None,
        history_limit: Optional[int] = DEFAULT_HISTORY_LIMIT,
    ) -> None:
        self.name = name
        self.clock = clock
        #: zero-argument callable returning the current telemetry hub (or
        #: None) — indirect so drivers whose hub attaches mid-run are seen
        self._telemetry = telemetry if telemetry is not None else (lambda: None)
        self.global_policy = global_policy
        self.history_limit = history_limit
        self._registrations: List[KernelRegistration] = []
        self.cycles = 0
        self.enforcements = 0
        #: monitor polls or enforcement pushes abandoned after retries —
        #: the stage keeps its previous settings for that cycle (degraded
        #: but alive, never crashed)
        self.rpc_failures = 0
        #: driver-clock time of the last completed control cycle (the
        #: heartbeat the dependability machinery in :mod:`.replicated`
        #: watches)
        self.last_cycle_time: float = float("-inf")

    # -- registration ------------------------------------------------------------
    def register(
        self,
        port: StagePort,
        policy: Optional[ControlPolicy] = None,
        transport: Optional[ControlTransport] = None,
    ) -> MetricsHistory:
        """Attach a stage port; returns its history for later inspection."""
        if policy is None and self.global_policy is None:
            raise ValueError("a per-stage policy or a global policy is required")
        reg = KernelRegistration(
            port=port,
            policy=policy,
            transport=transport or DirectTransport(name=f"{self.name}.direct"),
            history=MetricsHistory(port.name, max_entries=self.history_limit),
        )
        self._registrations.append(reg)
        return reg.history

    def registrations(self) -> List[KernelRegistration]:
        return list(self._registrations)

    def ports(self) -> List[StagePort]:
        return [reg.port for reg in self._registrations]

    def histories(self) -> Dict[str, MetricsHistory]:
        return {reg.port.name: reg.history for reg in self._registrations}

    def history_for(self, stage_name: str) -> MetricsHistory:
        for reg in self._registrations:
            if reg.port.name == stage_name:
                return reg.history
        raise KeyError(stage_name)

    # -- telemetry helpers --------------------------------------------------------
    @staticmethod
    def _degraded_state(policy) -> Optional[bool]:
        """Walk a (possibly wrapped) policy chain for degraded-mode state."""
        seen = set()
        while policy is not None and id(policy) not in seen:
            seen.add(id(policy))
            engaged = getattr(policy, "engaged", None)
            if engaged is not None:
                return bool(engaged)
            policy = getattr(policy, "inner", None)
        return None

    def _note_decision(self, tel, reg: KernelRegistration, decision, policy) -> None:
        """Emit the policy-decision event and any degraded-mode transition.

        The instant carries the stage's workload feature labels (batch
        size, backend kind, lookahead — whatever the port's
        ``control_features`` reports) alongside the decided (t, N), so the
        metrics JSONL export is self-describing performance-model training
        data: no joining decisions back to policy or builder state.
        """
        if tel is None:
            return
        features = {}
        control_features = getattr(reg.port, "control_features", None)
        if control_features is not None:
            features = dict(control_features())
        tel.instant(
            "control.decision",
            self.name,
            "control",
            stage=reg.port.name,
            producers=decision.producers,
            buffer_capacity=decision.buffer_capacity,
            reason=getattr(policy, "last_reason", None),
            **features,
        )
        engaged = self._degraded_state(policy)
        if engaged is not None and engaged != reg.last_engaged:
            reg.last_engaged = engaged
            tel.instant(
                "control.degraded_engage" if engaged else "control.degraded_recover",
                self.name,
                "control",
                stage=reg.port.name,
            )

    def _note_failure(self, tel, span, exc: BaseException) -> None:
        self.rpc_failures += 1
        if tel is not None:
            tel.end(span, ok=False, error=type(exc).__name__)
            tel.registry.counter(
                "control.rpc_failures_total", controller=self.name
            ).inc()

    def _record(self, reg: KernelRegistration, snapshots) -> None:
        """Aggregate and append a monitor poll's result to the history.

        Multi-object stages report one snapshot per optimization object;
        recording their aggregate (summed counters, last-writer gauges)
        keeps every object's traffic in the history.
        """
        if snapshots is None:
            return
        if isinstance(snapshots, MetricsSnapshot):
            snapshots = [snapshots]
        snapshots = list(snapshots)
        if snapshots:
            reg.history.append(MetricsSnapshot.aggregate(snapshots))

    # -- the cycle (sans-I/O) ---------------------------------------------------
    def cycle(self):
        """One monitor→decide→enforce pass as a command generator.

        Yields :class:`PortCall` commands; the pump sends each call's
        result back in (or throws its typed failure).  A stage whose
        transport fails through the retry budget is skipped for the cycle.
        """
        tel = self._telemetry()

        # Monitor: poll every stage.
        for reg in self._registrations:
            span = None
            if tel is not None:
                span = tel.begin(
                    "control.monitor", self.name, "control", stage=reg.port.name
                )
            try:
                snapshots = yield PortCall(reg, reg.port.control_snapshot)
            except _SKIPPABLE as exc:
                self._note_failure(tel, span, exc)
                continue
            if tel is not None:
                tel.end(span, ok=True)
            self._record(reg, snapshots)

        # Decide + enforce: one global decision over all histories, or one
        # per-stage policy each.
        if self.global_policy is not None:
            decisions = self.global_policy.decide_all(self.histories())
            for reg in self._registrations:
                settings = decisions.get(reg.port.name)
                if settings is not None:
                    self._note_decision(tel, reg, settings, self.global_policy)
                    yield from self._enforce(tel, reg, settings)
            return

        for reg in self._registrations:
            assert reg.policy is not None
            if reg.history.latest is None:
                continue
            decision = reg.policy.decide(reg.history.latest, reg.history.previous)
            if decision is not None:
                self._note_decision(tel, reg, decision, reg.policy)
                yield from self._enforce(tel, reg, decision)

    def _enforce(self, tel, reg: KernelRegistration, settings):
        """Push settings to the stage inside a ``control.enforce`` span."""
        span = None
        if tel is not None:
            span = tel.begin(
                "control.enforce", self.name, "control", stage=reg.port.name
            )
        try:
            yield PortCall(reg, reg.port.control_apply, (settings,))
        except _SKIPPABLE as exc:
            self._note_failure(tel, span, exc)
            return
        if tel is not None:
            tel.end(span, ok=True)
        self.enforcements += 1

    # -- pumps -------------------------------------------------------------------
    def run_events(self):
        """Drive one cycle where transports resolve calls as simulator events.

        A generator of events: ``yield from kernel.run_events()`` inside a
        simulated process.  Requires every transport to be event-based
        (:class:`ChannelTransport`).
        """
        gen = self.cycle()
        payload: Any = None
        error: Optional[BaseException] = None
        while True:
            try:
                call = gen.throw(error) if error is not None else gen.send(payload)
            except StopIteration:
                return
            payload, error = None, None
            try:
                payload = yield call.transport.issue(call.fn, *call.args)
            except _SKIPPABLE as exc:
                error = exc

    def run_inline(self) -> None:
        """Drive one cycle synchronously (direct transports, live driver)."""
        gen = self.cycle()
        payload: Any = None
        error: Optional[BaseException] = None
        while True:
            try:
                call = gen.throw(error) if error is not None else gen.send(payload)
            except StopIteration:
                return
            payload, error = None, None
            try:
                payload = call.transport.invoke(call.fn, *call.args)
            except _SKIPPABLE as exc:
                error = exc

    def complete_cycle(self) -> None:
        """Account one finished cycle; stamps the heartbeat."""
        self.cycles += 1
        self.last_cycle_time = self.clock()


__all__ = [
    "ChannelTransport",
    "ControlCycle",
    "ControlTransport",
    "DEFAULT_HISTORY_LIMIT",
    "DirectTransport",
    "GlobalPolicy",
    "KernelRegistration",
    "PortCall",
    "StagePort",
]
