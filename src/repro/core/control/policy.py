"""Control-plane policies: the *logic* of I/O optimizations (paper §III).

A policy looks at a stage's metrics and decides new knob values.  Policies
are deliberately tiny, framework-agnostic state machines — the paper's
argument is that this logic belongs here, not inside each DL framework.

* :class:`StaticPolicy` — fixed (t, N); the manual-tuning strawman.
* :class:`PrismaAutotunePolicy` — the paper's feedback control loop (§IV):
  watches *starvation* (consumer requests that stalled), *buffer occupancy*
  and the *marginal throughput gain* of the last producer added, walking
  ``t`` and ``N`` toward "a balanced trade-off between performance and
  resource usage" — in contrast to TensorFlow's allocate-everything
  auto-tuning, which pins the maximum thread count (paper Fig. 3).
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, replace
from typing import List, Optional

from ..optimization import MetricsSnapshot, TuningSettings


class ControlPolicy(abc.ABC):
    """Decides knob updates from successive metric snapshots."""

    #: why the most recent non-None decision was made (telemetry: the
    #: controller attaches this to the ``control.decision`` trace event)
    last_reason: Optional[str] = None

    @abc.abstractmethod
    def decide(
        self,
        snapshot: MetricsSnapshot,
        previous: Optional[MetricsSnapshot],
    ) -> Optional[TuningSettings]:
        """Return new settings, or ``None`` to leave the stage untouched."""


class StaticPolicy(ControlPolicy):
    """Fixed configuration: applied once, then never changed.

    This is the "delegate to the user the responsibility of finding the
    optimal combination" strawman the paper's auto-tuner replaces; the
    ablation benchmark sweeps it against the feedback loop.
    """

    def __init__(self, producers: int, buffer_capacity: int) -> None:
        self.settings = TuningSettings(producers=producers, buffer_capacity=buffer_capacity)
        self._applied = False

    def decide(self, snapshot, previous):  # noqa: D102 - inherited
        if self._applied:
            return None
        self._applied = True
        self.last_reason = "static-initial"
        return self.settings


@dataclass
class AutotuneParams:
    """Tunables of the feedback loop.

    ``min_marginal_gain`` encodes the paper's resource/performance balance:
    a producer thread must buy at least this relative fetch-throughput
    improvement to keep its slot.  On the evaluated SSD the concurrency
    curve yields ≈+75 % for the 2nd thread, ≈+30 % for the 3rd, ≈+20 % for
    the 4th and <15 % beyond — so the default converges to the paper's
    ≈4 threads while TensorFlow's auto-tuner burns 30.
    """

    #: starvation fraction above which the stage is under-provisioned
    starvation_high: float = 0.05
    #: starvation fraction below which shrinking may be considered
    starvation_low: float = 0.005
    #: occupancy fraction treated as "buffer is keeping up"
    occupancy_high: float = 0.9
    #: minimum relative throughput gain to keep a newly added producer
    #: (the paper's SSD yields +61 %/+25 %/+15 %/+9 % for threads 2..5,
    #: so 0.13 stops the walk at t=4 — the paper's operating point)
    min_marginal_gain: float = 0.13
    #: control periods to wait after a change before measuring its effect
    settle_periods: int = 1
    #: control periods the before/after throughput windows span (longer
    #: windows reject demand noise at the cost of slower convergence)
    measure_periods: int = 3
    #: consecutive calm periods required before releasing a producer
    shrink_patience: int = 8
    #: consecutive starving-while-capped periods before re-probing the knee
    #: (the saturation point moves when the device degrades or a neighbour
    #: appears — a frozen cap would defeat the point of feedback control)
    saturation_recheck: int = 12
    #: ceiling on the re-probe backoff multiplier: when a re-probe finds the
    #: same knee again, the next recheck waits twice as long (up to this
    #: factor), so a genuinely flat plateau converges to a held setting
    #: instead of ping-ponging between adjacent (t, N) points forever
    recheck_backoff_limit: int = 64
    #: relative drift of the capped windowed rate from the rate recorded
    #: when the knee was established beyond which the knee (and its
    #: backoff) are treated as stale evidence — a degraded or recovered
    #: device moves the whole curve, so the next re-probe happens at once
    knee_drift_tolerance: float = 0.25
    max_producers: int = 8
    max_buffer: int = 4096
    min_buffer: int = 16


class _TunerState(enum.Enum):
    STEADY = "steady"
    SETTLING = "settling"  # just changed t; let the pipeline stabilize
    MEASURING = "measuring"  # collecting one clean period at the new t


class PrismaAutotunePolicy(ControlPolicy):
    """The paper's feedback control loop over (t, N).

    Per control period:

    * **starving, buffer full** → consumers wait for samples *beyond* the
      buffered window (out-of-order consumers): ``N *= 2``;
    * **starving, buffer draining, not saturated** → try one more producer,
      then *measure*: if the extra thread improved fetch throughput by less
      than ``min_marginal_gain`` it is returned and the current ``t`` is
      marked saturated — this is what keeps PRISMA at ~4 threads where
      TensorFlow pins 30 for the same delivered bandwidth (Fig. 3);
    * **calm and buffer full** for ``shrink_patience`` periods → resources
      are over-provisioned (compute-bound model): ``t -= 1``.
    """

    def __init__(self, params: Optional[AutotuneParams] = None) -> None:
        self.params = params or AutotuneParams()
        self._state = _TunerState.STEADY
        self._settle_left = 0
        self._calm_periods = 0
        self._baseline_rate: Optional[float] = None
        self._saturated_at: Optional[int] = None
        self._capped_starving = 0
        self._last_knee: Optional[int] = None
        self._knee_rate: Optional[float] = None
        self._recheck_backoff = 1
        #: recent snapshots forming the throughput measurement window
        self._window: List[MetricsSnapshot] = []
        self.decisions = 0

    # -- helpers --------------------------------------------------------------
    def _windowed_rate(self) -> float:
        """Fetch throughput over the recorded window (0 if too short)."""
        if len(self._window) < 2:
            return 0.0
        first, last = self._window[0], self._window[-1]
        dt = last.time - first.time
        if dt <= 0:
            return 0.0
        return (last.bytes_fetched - first.bytes_fetched) / dt

    def _push_window(self, snapshot: MetricsSnapshot) -> None:
        self._window.append(snapshot)
        if len(self._window) > self.params.measure_periods + 1:
            del self._window[0]

    def _emit(self, settings: TuningSettings, reason: str) -> TuningSettings:
        self.decisions += 1
        self.last_reason = reason
        return settings

    # -- main loop -------------------------------------------------------------
    def decide(self, snapshot, previous):  # noqa: D102 - inherited
        p = self.params
        if snapshot.queue_remaining == 0:
            return None  # epoch drained (or validation phase) — nothing to tune
        if snapshot.requests <= 0 and self._state is _TunerState.STEADY:
            return None  # consumers have not issued a single request yet

        starvation = snapshot.starvation(previous)
        occupancy = (
            snapshot.buffer_level / snapshot.buffer_capacity
            if snapshot.buffer_capacity > 0
            else 0.0
        )
        t = snapshot.producers_allocated
        n = snapshot.buffer_capacity
        self._push_window(snapshot)

        # -- settling / measuring after a producer change ----------------------
        if self._state is _TunerState.SETTLING:
            self._settle_left -= 1
            if self._settle_left <= 0:
                self._window = [snapshot]  # the measurement window starts clean
                self._state = _TunerState.MEASURING
            return None
        if self._state is _TunerState.MEASURING:
            if len(self._window) < p.measure_periods + 1:
                return None  # keep collecting the after-change window
            self._state = _TunerState.STEADY
            new_rate = self._windowed_rate()
            buffer_caught_up = occupancy >= p.occupancy_high
            if (
                self._baseline_rate
                and self._baseline_rate > 0
                and new_rate > 0
                and not buffer_caught_up  # a filled buffer means the thread helped
            ):
                gain = new_rate / self._baseline_rate - 1.0
                if gain < p.min_marginal_gain and t > 1:
                    # The extra thread wasn't worth it: release it and mark
                    # this concurrency level as the knee.  Rediscovering the
                    # *same* knee doubles the re-probe backoff — a flat
                    # plateau settles instead of cycling probe/retreat.
                    knee = t - 1
                    if knee == self._last_knee:
                        self._recheck_backoff = min(
                            self._recheck_backoff * 2, p.recheck_backoff_limit
                        )
                    else:
                        self._recheck_backoff = 1
                    self._last_knee = knee
                    self._knee_rate = self._baseline_rate
                    self._saturated_at = knee
                    return self._emit(
                        TuningSettings(producers=knee), "marginal-gain-below-threshold"
                    )
                # The measured growth paid off: the surface rose past the
                # old knee, so future rechecks start from a fresh clock.
                self._recheck_backoff = 1
                self._last_knee = None
                self._knee_rate = None
            self._baseline_rate = None
            # fall through: the growth paid off; keep adapting

        # -- starving ------------------------------------------------------------
        if starvation > p.starvation_high:
            self._calm_periods = 0
            if occupancy >= p.occupancy_high and n < p.max_buffer:
                return self._emit(
                    TuningSettings(buffer_capacity=min(max(n * 2, p.min_buffer), p.max_buffer)),
                    "starving-buffer-full",
                )
            can_grow = t < p.max_producers and (
                self._saturated_at is None or t < self._saturated_at
            )
            if can_grow:
                if len(self._window) < p.measure_periods + 1:
                    return None  # not enough history for a clean baseline yet
                self._capped_starving = 0
                self._baseline_rate = self._windowed_rate()
                self._state = _TunerState.SETTLING
                self._settle_left = p.settle_periods
                return self._emit(TuningSettings(producers=t + 1), "starving-add-producer")
            # Starving but capped at the recorded knee: if this persists the
            # knee has moved (device degraded, neighbour arrived) — forget
            # it and re-probe.  The backoff multiplier stretches the wait
            # each time a re-probe lands on the same knee, but a large drift
            # of the observed rate from the rate recorded at the knee means
            # the whole curve moved, so the knee and its backoff are stale
            # evidence and the re-probe happens at once.
            rate = self._windowed_rate()
            if (
                self._knee_rate
                and rate > 0
                and abs(rate / self._knee_rate - 1.0) > p.knee_drift_tolerance
            ):
                self._recheck_backoff = 1
                self._last_knee = None
                self._knee_rate = None
                self._capped_starving = 0
                self._saturated_at = None
                return None
            self._capped_starving += 1
            if self._capped_starving >= p.saturation_recheck * self._recheck_backoff:
                self._capped_starving = 0
                self._saturated_at = None
            return None

        # -- calm -------------------------------------------------------------------
        self._capped_starving = 0
        if starvation <= p.starvation_low and occupancy >= p.occupancy_high:
            self._calm_periods += 1
            if self._calm_periods >= p.shrink_patience and t > 1:
                self._calm_periods = 0
                return self._emit(TuningSettings(producers=t - 1), "calm-shrink")
            return None

        self._calm_periods = 0
        return None


@dataclass
class DegradedModeParams:
    """Thresholds of the graceful-degradation state machine.

    ``engage_error_rate`` is the per-period fraction of producer fetch
    attempts that failed; storage fault bursts push it toward 1.0, healthy
    operation sits at ~0.  When engaged, the policy shrinks ``t``/``N`` by
    ``shrink_factor`` (never below the floors) so a failing backend is not
    hammered with parallel retries; ``recovery_patience`` consecutive
    clean periods restore the pre-fault targets.
    """

    #: per-period error rate at which degraded mode engages
    engage_error_rate: float = 0.1
    #: per-period error rate below which a period counts as clean
    recover_error_rate: float = 0.02
    #: consecutive clean periods before restoring the saved targets
    recovery_patience: int = 3
    #: multiplier applied to (t, N) on engage
    shrink_factor: float = 0.5
    producer_floor: int = 1
    buffer_floor: int = 16

    def __post_init__(self) -> None:
        if not 0 < self.engage_error_rate <= 1:
            raise ValueError("engage_error_rate must be in (0, 1]")
        if not 0 <= self.recover_error_rate < self.engage_error_rate:
            raise ValueError("recover_error_rate must be in [0, engage_error_rate)")
        if self.recovery_patience < 1:
            raise ValueError("recovery_patience must be >= 1")
        if not 0 < self.shrink_factor < 1:
            raise ValueError("shrink_factor must be in (0, 1)")
        if self.producer_floor < 1 or self.buffer_floor < 1:
            raise ValueError("floors must be >= 1")


class DegradedModePolicy(ControlPolicy):
    """Wrapper that backs off the data plane while storage is failing.

    Under fault-free operation every decision is delegated to ``inner``
    (typically :class:`PrismaAutotunePolicy`).  When the per-period error
    rate crosses ``engage_error_rate`` the wrapper takes over: it saves
    the current ``(t, N)`` targets, shrinks both toward the floors, and
    holds them there — growing parallelism against a failing backend only
    multiplies the failures (and the serve-side retries behind them).
    Once ``recovery_patience`` consecutive periods come back clean, the
    saved targets are restored and control returns to ``inner``.

    Observability: ``engage_times`` / ``disengage_times`` (sim seconds)
    and ``degraded_cycles`` (periods spent degraded) feed the fault-sweep
    report and the chaos tests.
    """

    def __init__(
        self,
        inner: ControlPolicy,
        params: Optional[DegradedModeParams] = None,
    ) -> None:
        self.inner = inner
        self.params = params or DegradedModeParams()
        self.engaged = False
        self.degraded_cycles = 0
        self.engage_times: List[float] = []
        self.disengage_times: List[float] = []
        self._saved: Optional[tuple] = None
        self._clean_periods = 0

    def decide(self, snapshot, previous):  # noqa: D102 - inherited
        p = self.params
        rate = snapshot.error_rate(previous)

        if not self.engaged:
            if rate > p.engage_error_rate:
                self.engaged = True
                self.degraded_cycles += 1
                self._clean_periods = 0
                self.engage_times.append(snapshot.time)
                t = max(snapshot.producers_allocated, 1)
                n = max(snapshot.buffer_capacity, 1)
                self._saved = (t, n)
                self.last_reason = "degraded-engage"
                return TuningSettings(
                    producers=max(int(t * p.shrink_factor), p.producer_floor),
                    buffer_capacity=max(int(n * p.shrink_factor), p.buffer_floor),
                )
            decision = self.inner.decide(snapshot, previous)
            if decision is not None:
                self.last_reason = getattr(self.inner, "last_reason", None)
            return decision

        # Engaged: hold the shrunk targets; count clean periods.
        self.degraded_cycles += 1
        if rate <= p.recover_error_rate:
            self._clean_periods += 1
        else:
            self._clean_periods = 0
        if self._clean_periods >= p.recovery_patience:
            self.engaged = False
            self._clean_periods = 0
            self.disengage_times.append(snapshot.time)
            saved, self._saved = self._saved, None
            assert saved is not None
            self.last_reason = "degraded-recovered"
            return TuningSettings(producers=saved[0], buffer_capacity=saved[1])
        return None


@dataclass
class PredictiveParams:
    """Tunables of the model-driven policy.

    The confidence seam has two gates: the query context must lie inside
    the model's training envelope (:meth:`~repro.perfmodel.model.
    ThroughputModel.in_envelope`), and the model's training-set relative
    RMSE must not exceed ``max_rmse_rel`` — a model that cannot explain
    its own training data has no business steering a control plane.
    Failing either gate degrades to the reactive fallback policy.
    """

    #: producers the local refinement may walk above/below the jump point
    refine_radius: int = 1
    #: reject models whose training-set relative RMSE exceeds this
    max_rmse_rel: float = 0.35
    #: predicted-throughput slack for preferring leaner settings at argmax
    resource_slack: float = 0.02
    max_producers: int = 8
    max_buffer: int = 4096
    min_buffer: int = 16

    def __post_init__(self) -> None:
        if self.refine_radius < 0:
            raise ValueError("refine_radius must be >= 0")
        if self.max_rmse_rel <= 0:
            raise ValueError("max_rmse_rel must be positive")
        if not 0.0 <= self.resource_slack < 1.0:
            raise ValueError("resource_slack must be in [0, 1)")
        if self.max_producers < 1:
            raise ValueError("max_producers must be >= 1")
        if not 1 <= self.min_buffer <= self.max_buffer:
            raise ValueError("need 1 <= min_buffer <= max_buffer")


class PredictivePolicy(ControlPolicy):
    """Jump to the performance model's predicted optimum, then refine.

    The reactive :class:`PrismaAutotunePolicy` spends many control periods
    hill-climbing to the knee of the storage curve; once an offline
    :class:`~repro.perfmodel.model.ThroughputModel` has been fitted over
    the telemetry the system already emits, that search is wasted work.
    This policy **warm-starts** at ``model.argmax_settings(context)`` in a
    single decision, then hands the knobs to a bounded local refinement —
    a :class:`PrismaAutotunePolicy` whose feasible range is clamped to
    ``jump ± refine_radius`` — so model error cannot strand the system at
    a bad operating point, but also cannot drag it far from the prediction.

    The fallback seam: if the model is unfitted, the workload context
    falls outside the training envelope, or the fit's own RMSE exceeds
    ``max_rmse_rel``, the policy degrades to ``fallback`` (a fresh
    reactive tuner by default) for the lifetime of the run, recording why
    in :attr:`fallback_reason`.  Prediction is an optimization, never a
    correctness dependency.

    The model is duck-typed (``fitted`` / ``fit_rmse_rel`` /
    ``in_envelope`` / ``argmax_settings``) so this module — the bottom of
    the control plane — never imports :mod:`repro.perfmodel` at runtime.
    """

    def __init__(
        self,
        model,
        context,
        params: Optional[PredictiveParams] = None,
        fallback: Optional[ControlPolicy] = None,
    ) -> None:
        self.model = model
        self.context = context
        self.params = params or PredictiveParams()
        self.fallback = fallback if fallback is not None else PrismaAutotunePolicy()
        #: (t, N, predicted bytes/s) of the applied jump, once made
        self.jumped_to: Optional[tuple] = None
        #: why the policy degraded to the fallback (None while predictive)
        self.fallback_reason: Optional[str] = None
        self.decisions = 0
        self._mode = "init"  # init -> jump applied -> refine | fallback
        self._refiner: Optional[PrismaAutotunePolicy] = None
        self._floor_producers = 1

    @property
    def fell_back(self) -> bool:
        return self._mode == "fallback"

    # -- confidence seam ---------------------------------------------------------
    def _confidence_failure(self) -> Optional[str]:
        """Why the model cannot be trusted (None = trust it)."""
        if not getattr(self.model, "fitted", False):
            return "predictive-fallback-unfitted"
        if not self.model.in_envelope(self.context):
            return "predictive-fallback-out-of-envelope"
        if self.model.fit_rmse_rel > self.params.max_rmse_rel:
            return "predictive-fallback-low-confidence"
        return None

    def _enter_fallback(self, reason: str) -> None:
        self._mode = "fallback"
        self.fallback_reason = reason
        self.last_reason = reason

    # -- main loop -------------------------------------------------------------
    def decide(self, snapshot, previous):  # noqa: D102 - inherited
        if self._mode == "fallback":
            decision = self.fallback.decide(snapshot, previous)
            if decision is not None:
                self.last_reason = getattr(self.fallback, "last_reason", None)
            return decision

        if self._mode == "init":
            failure = self._confidence_failure()
            if failure is not None:
                self._enter_fallback(failure)
                return self.decide(snapshot, previous)
            if snapshot.queue_remaining == 0:
                return None  # nothing flowing yet — jump on the first live period
            p = self.params
            t_star, n_star, predicted = self.model.argmax_settings(
                self.context, resource_slack=p.resource_slack
            )
            t_star = max(1, min(t_star, p.max_producers))
            n_star = max(p.min_buffer, min(n_star, p.max_buffer))
            self.jumped_to = (t_star, n_star, predicted)
            self._floor_producers = max(1, t_star - p.refine_radius)
            self._refiner = PrismaAutotunePolicy(
                AutotuneParams(
                    max_producers=min(t_star + p.refine_radius, p.max_producers),
                    max_buffer=p.max_buffer,
                    min_buffer=p.min_buffer,
                )
            )
            self._mode = "refine"
            self.decisions += 1
            self.last_reason = "predictive-jump"
            return TuningSettings(producers=t_star, buffer_capacity=n_star)

        # -- refine: reactive steps, clamped to the jump's neighbourhood -------
        assert self._refiner is not None
        decision = self._refiner.decide(snapshot, previous)
        if decision is None:
            return None
        self.last_reason = self._refiner.last_reason
        producers = decision.producers
        if producers is not None and producers < self._floor_producers:
            # Shrink below the refinement box: the model says those extra
            # threads are load-bearing — suppress the producer change.
            # (Safe w.r.t. the refiner's state machine: only *growth*
            # enters its settle/measure cycle.)
            decision = replace(decision, producers=None)
            if decision.buffer_capacity is None and not decision.extra:
                return None
        self.decisions += 1
        return decision


class OscillationDampedPolicy(ControlPolicy):
    """Wrapper adding hysteresis: suppress a decision that undoes the last.

    Prevents limit-cycle flapping (grow, shrink, grow, …) when demand sits
    exactly on a supply step; used by the ablation benchmarks to quantify
    the value of damping.
    """

    def __init__(self, inner: ControlPolicy, cooldown_periods: int = 4) -> None:
        if cooldown_periods < 0:
            raise ValueError("cooldown_periods must be >= 0")
        self.inner = inner
        self.cooldown_periods = cooldown_periods
        self._last_direction = 0  # +1 grew, -1 shrank
        self._since_change = 0

    def decide(self, snapshot, previous):  # noqa: D102 - inherited
        decision = self.inner.decide(snapshot, previous)
        self._since_change += 1
        if decision is not None:
            self.last_reason = getattr(self.inner, "last_reason", None)
        if decision is None or decision.producers is None:
            return decision
        direction = 1 if decision.producers > snapshot.producers_allocated else -1
        if (
            direction == -self._last_direction
            and self._since_change < self.cooldown_periods
        ):
            return replace(decision, producers=None) if decision.buffer_capacity else None
        self._last_direction = direction
        self._since_change = 0
        return decision
