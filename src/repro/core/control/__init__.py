"""``repro.core.control`` — PRISMA's control plane.

The logically centralized side of the SDS split: the periodic
:class:`Controller` loop, tuning :class:`~.policy.ControlPolicy` objects
(including the paper's feedback auto-tuner and the graceful-degradation
wrapper), per-stage :class:`~.monitor.MetricsHistory`, and the
:class:`~.rpc.ControlChannel` linking planes (typed failures, retry with
backoff under a time budget).
"""

from .controller import Controller, GlobalPolicy
from .replicated import ReplicatedController
from .monitor import MetricsHistory
from .policy import (
    AutotuneParams,
    ControlPolicy,
    DegradedModeParams,
    DegradedModePolicy,
    OscillationDampedPolicy,
    PrismaAutotunePolicy,
    StaticPolicy,
)
from .rpc import (
    LOCAL_LATENCY,
    REMOTE_LATENCY,
    ControlChannel,
    RetryPolicy,
    RpcApplicationError,
    RpcError,
    RpcRetriesExhausted,
    RpcTimeout,
    RpcTransportError,
)

__all__ = [
    "AutotuneParams",
    "ControlChannel",
    "ControlPolicy",
    "Controller",
    "DegradedModeParams",
    "DegradedModePolicy",
    "GlobalPolicy",
    "LOCAL_LATENCY",
    "MetricsHistory",
    "OscillationDampedPolicy",
    "PrismaAutotunePolicy",
    "REMOTE_LATENCY",
    "ReplicatedController",
    "RetryPolicy",
    "RpcApplicationError",
    "RpcError",
    "RpcRetriesExhausted",
    "RpcTimeout",
    "RpcTransportError",
    "StaticPolicy",
]
