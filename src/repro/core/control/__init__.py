"""``repro.core.control`` — PRISMA's control plane.

The logically centralized side of the SDS split: the periodic
:class:`Controller` loop, tuning :class:`~.policy.ControlPolicy` objects
(including the paper's feedback auto-tuner), per-stage
:class:`~.monitor.MetricsHistory`, and the :class:`~.rpc.ControlChannel`
linking planes.
"""

from .controller import Controller, GlobalPolicy
from .replicated import ReplicatedController
from .monitor import MetricsHistory
from .policy import (
    AutotuneParams,
    ControlPolicy,
    OscillationDampedPolicy,
    PrismaAutotunePolicy,
    StaticPolicy,
)
from .rpc import LOCAL_LATENCY, REMOTE_LATENCY, ControlChannel

__all__ = [
    "AutotuneParams",
    "ControlChannel",
    "ControlPolicy",
    "Controller",
    "GlobalPolicy",
    "LOCAL_LATENCY",
    "MetricsHistory",
    "OscillationDampedPolicy",
    "PrismaAutotunePolicy",
    "REMOTE_LATENCY",
    "ReplicatedController",
    "StaticPolicy",
]
