"""``repro.core.control`` — PRISMA's control plane.

The logically centralized side of the SDS split, built around one shared
:class:`~.kernel.ControlCycle` (the monitor→decide→enforce kernel) that
every deployment shape drives: the simulated :class:`Controller` (kernel
process + :class:`~.kernel.ChannelTransport` RPC), the wall-clock
:class:`~repro.core.live.LiveController` (daemon thread +
:class:`~.kernel.DirectTransport`), and the failover pair
:class:`ReplicatedController`.  Alongside: tuning
:class:`~.policy.ControlPolicy` objects (including the paper's feedback
auto-tuner and the graceful-degradation wrapper), per-stage bounded
:class:`~.monitor.MetricsHistory`, and the :class:`~.rpc.ControlChannel`
linking planes (typed failures, retry with backoff under a time budget).

``MetricsSnapshot`` — the monitoring record stages report — lives in
:mod:`repro.telemetry` (re-exported by :mod:`repro.core`).
"""

from .controller import Controller
from .kernel import (
    ChannelTransport,
    ControlCycle,
    ControlTransport,
    DirectTransport,
    GlobalPolicy,
    KernelRegistration,
    PortCall,
    StagePort,
)
from .replicated import ReplicatedController
from .monitor import DEFAULT_MAX_ENTRIES, MetricsHistory
from .policy import (
    AutotuneParams,
    ControlPolicy,
    DegradedModeParams,
    DegradedModePolicy,
    OscillationDampedPolicy,
    PredictiveParams,
    PredictivePolicy,
    PrismaAutotunePolicy,
    StaticPolicy,
)
from .rpc import (
    LOCAL_LATENCY,
    REMOTE_LATENCY,
    ControlChannel,
    RetryPolicy,
    RpcApplicationError,
    RpcError,
    RpcRetriesExhausted,
    RpcTimeout,
    RpcTransportError,
)


__all__ = [
    "AutotuneParams",
    "ChannelTransport",
    "ControlChannel",
    "ControlCycle",
    "ControlPolicy",
    "ControlTransport",
    "Controller",
    "DEFAULT_MAX_ENTRIES",
    "DegradedModeParams",
    "DegradedModePolicy",
    "DirectTransport",
    "GlobalPolicy",
    "KernelRegistration",
    "LOCAL_LATENCY",
    "MetricsHistory",
    "PortCall",
    "OscillationDampedPolicy",
    "PredictiveParams",
    "PredictivePolicy",
    "PrismaAutotunePolicy",
    "REMOTE_LATENCY",
    "ReplicatedController",
    "RetryPolicy",
    "RpcApplicationError",
    "RpcError",
    "RpcRetriesExhausted",
    "RpcTimeout",
    "RpcTransportError",
    "StagePort",
    "StaticPolicy",
]
