"""Control channel between the control plane and data-plane stages.

The control plane is *logically* centralized but physically separate from
the stages (paper §III-A), so every monitoring poll and policy push crosses
a channel with non-zero latency.  For stages co-located with the controller
(the paper's prototype implements the control plane "as a logical component
of our middleware") the latency is a function call's worth; for remote
stages it is a network RTT.  Modelling it explicitly keeps the architecture
honest: control decisions are always slightly stale, exactly as in a real
SDS deployment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from ...simcore.event import Event
from ...simcore.tracing import CounterSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...simcore.kernel import Simulator

#: In-process call: effectively free (prototype deployment, paper §IV).
LOCAL_LATENCY = 2e-6
#: Same-datacenter TCP round trip half (distributed deployment, §III).
REMOTE_LATENCY = 150e-6


class ControlChannel:
    """Bidirectional request/response path with symmetric one-way latency."""

    def __init__(self, sim: "Simulator", latency: float = LOCAL_LATENCY, name: str = "ctl") -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.sim = sim
        self.latency = latency
        self.name = name
        self.counters = CounterSet()

    def call(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Invoke ``fn(*args)`` on the far side; event value = its result."""
        self.counters.add("calls")
        done = Event(self.sim, name=f"{self.name}.call")

        def round_trip():
            if self.latency > 0:
                yield self.sim.timeout(self.latency)
            result = fn(*args)
            if self.latency > 0:
                yield self.sim.timeout(self.latency)
            return result

        proc = self.sim.process(round_trip(), name=f"{self.name}.rpc")
        proc.add_callback(
            lambda p: done.succeed(p._value) if p.ok else done.fail(p.exception)
        )
        return done
