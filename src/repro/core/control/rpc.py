"""Control channel between the control plane and data-plane stages.

The control plane is *logically* centralized but physically separate from
the stages (paper §III-A), so every monitoring poll and policy push crosses
a channel with non-zero latency.  For stages co-located with the controller
(the paper's prototype implements the control plane "as a logical component
of our middleware") the latency is a function call's worth; for remote
stages it is a network RTT.  Modelling it explicitly keeps the architecture
honest: control decisions are always slightly stale, exactly as in a real
SDS deployment.

Failure model
-------------

A real control channel loses and delays messages, so this one can too
(:meth:`ControlChannel.inject_drops` / :meth:`ControlChannel.inject_delay`,
driven by :class:`~repro.faults.FaultInjector`).  Failures surface as
*typed* exceptions rather than being swallowed into a generic process
error, so callers can tell retryable transport trouble from fatal
far-side bugs:

* :class:`RpcTransportError` — the message was lost (retryable);
* :class:`RpcTimeout` — no reply within the caller's deadline (retryable);
* :class:`RpcApplicationError` — the far-side function raised (fatal:
  retrying re-executes a deterministic failure).

:meth:`ControlChannel.call_with_retry` layers exponential backoff and a
total time budget on top (:class:`RetryPolicy`), raising
:class:`RpcRetriesExhausted` once the budget or attempt count runs out.

Data-plane requests
-------------------

:meth:`ControlChannel.request` is the *data-plane* sibling of
:meth:`ControlChannel.call`: the far-side function may return a kernel
:class:`~repro.simcore.event.Event` (a read that takes simulated time —
e.g. a peer node serving a sample from its fast tier), and the reply leg
is only sent once that event settles.  The error taxonomy is unchanged —
lost messages and late replies stay retryable transport errors, while a
far-side failure (including a failed far-side event) is a fatal
:class:`RpcApplicationError`, because replaying a deterministic far-side
failure buys nothing; data-plane callers fall back to the backing store
instead.  :meth:`ControlChannel.request_with_retry` adds the same backoff
machinery :meth:`ControlChannel.call_with_retry` gives control RPCs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from ...simcore.errors import ProcessError, SimulationError
from ...simcore.event import Event
from ...telemetry import CounterSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...simcore.kernel import Simulator

#: In-process call: effectively free (prototype deployment, paper §IV).
LOCAL_LATENCY = 2e-6
#: Same-datacenter TCP round trip half (distributed deployment, §III).
REMOTE_LATENCY = 150e-6


class RpcError(SimulationError):
    """Base class for control-channel failures."""


class RpcTransportError(RpcError):
    """The request or reply was lost in transit (retryable)."""


class RpcTimeout(RpcTransportError):
    """No reply arrived within the caller's deadline (retryable)."""


class RpcApplicationError(RpcError):
    """The far-side function raised; the original is ``__cause__`` (fatal)."""


class RpcRetriesExhausted(RpcError):
    """Every attempt failed; the last transport error is ``__cause__``."""


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule and budget for :meth:`ControlChannel.call_with_retry`.

    ``budget`` caps the *total* time spent on one logical call (attempts +
    backoff); a control plane that spends longer than a control period
    nursing one RPC is better off skipping the cycle.
    """

    max_attempts: int = 4
    base_delay: float = 1e-3
    multiplier: float = 2.0
    max_delay: float = 50e-3
    budget: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.budget <= 0:
            raise ValueError("budget must be positive")

    def delay_for(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based; attempt 0 is free)."""
        if attempt <= 0:
            return 0.0
        return min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)


class ControlChannel:
    """Bidirectional request/response path with symmetric one-way latency."""

    def __init__(self, sim: "Simulator", latency: float = LOCAL_LATENCY, name: str = "ctl") -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.sim = sim
        self.latency = latency
        self.name = name
        self.counters = CounterSet()
        #: fault-injection state (windowed by the injector)
        self._dropping = False
        self._extra_delay = 0.0

    # -- fault injection --------------------------------------------------------
    def inject_drops(self, active: bool) -> None:
        """Drop every message while active (a partitioned control network)."""
        self._dropping = bool(active)

    def inject_delay(self, extra: float) -> None:
        """Add ``extra`` seconds to each one-way leg (congested network)."""
        if extra < 0:
            raise ValueError("extra delay must be non-negative")
        self._extra_delay = extra

    @property
    def faulted(self) -> bool:
        return self._dropping or self._extra_delay > 0

    # -- data path --------------------------------------------------------------
    def _round_trip(self, fn: Callable[..., Any], args: tuple, awaited: bool):
        """One request/reply exchange (generator body shared by call/request).

        ``awaited`` selects data-plane semantics: a far-side return value
        that is itself an :class:`Event` is waited on before the reply leg,
        and its failure is a far-side (application) failure.
        """
        one_way = self.latency + self._extra_delay
        if one_way > 0:
            yield self.sim.timeout(one_way)
        if self._dropping:
            self.counters.add("drops")
            raise RpcTransportError(f"{self.name}: request dropped")
        try:
            result = fn(*args)
            if awaited and isinstance(result, Event):
                result = yield result
        except RpcError:
            # A nested RPC failure on the far side is still a far-side
            # failure from this channel's point of view.
            raise
        except Exception as exc:  # noqa: BLE001 - typed and re-raised
            raise RpcApplicationError(
                f"{self.name}: far side raised {type(exc).__name__}"
            ) from exc
        one_way = self.latency + self._extra_delay
        if one_way > 0:
            yield self.sim.timeout(one_way)
        if self._dropping:
            self.counters.add("drops")
            raise RpcTransportError(f"{self.name}: reply dropped")
        return result

    def _dispatch(self, fn, args, timeout: Optional[float], awaited: bool, label: str) -> Event:
        """Run one round trip with timeout plumbing; returns the caller event."""
        done = Event(self.sim, name=f"{self.name}.{label}")
        proc = self.sim.process(
            self._round_trip(fn, args, awaited), name=f"{self.name}.rpc"
        )

        def settle(p: Event) -> None:
            if done.triggered:
                return  # the timeout beat us; late replies are discarded
            if p.ok:
                done.succeed(p.value)
                return
            exc = p.exception
            # The kernel wraps process deaths in ProcessError; unwrap so
            # callers see the typed RPC exception, not a generic shroud.
            cause = exc.__cause__ if isinstance(exc, ProcessError) else exc
            if isinstance(cause, RpcError):
                done.fail(cause)
            else:  # pragma: no cover - defensive: nothing else should escape
                done.fail(RpcTransportError(f"{self.name}: channel failure: {cause!r}"))

        proc.add_callback(settle)
        if timeout is not None:
            if timeout <= 0:
                raise ValueError("timeout must be positive")

            def expire(_ev: Event) -> None:
                if done.triggered:
                    return
                self.counters.add("timeouts")
                done.fail(RpcTimeout(f"{self.name}: no reply within {timeout:g}s"))

            self.sim.timeout(timeout).add_callback(expire)
        return done

    def call(self, fn: Callable[..., Any], *args: Any, timeout: Optional[float] = None) -> Event:
        """Invoke ``fn(*args)`` on the far side; event value = its result.

        Fails with :class:`RpcTransportError` when the channel is dropping,
        :class:`RpcTimeout` when the round trip exceeds ``timeout``, and
        :class:`RpcApplicationError` when ``fn`` itself raises.  Note that
        a timed-out call may still have *executed* ``fn`` — the reply was
        late, not the request lost — exactly the at-most-once ambiguity a
        real RPC layer has.
        """
        self.counters.add("calls")
        return self._dispatch(fn, args, timeout, awaited=False, label="call")

    def request(self, fn: Callable[..., Any], *args: Any, timeout: Optional[float] = None) -> Event:
        """Data-plane request: like :meth:`call`, but the far side may defer.

        When ``fn(*args)`` returns an :class:`Event` (far-side work that
        takes simulated time — a peer serving a sample from its tier), the
        reply leg is sent once that event settles and carries its value.
        A failed far-side event surfaces as :class:`RpcApplicationError`
        (fatal): the peer could not produce the bytes, so the caller should
        fall back, not replay.  ``timeout`` bounds the *whole* exchange,
        including the far-side service time.
        """
        self.counters.add("requests")
        return self._dispatch(fn, args, timeout, awaited=True, label="request")

    def _retrying(
        self,
        invoke: Callable[..., Event],
        fn: Callable[..., Any],
        args: tuple,
        pol: RetryPolicy,
        timeout: Optional[float],
        label: str,
    ) -> Event:
        """Backoff/budget loop shared by call_with_retry / request_with_retry."""
        done = Event(self.sim, name=f"{self.name}.{label}")

        def attempt_loop():
            start = self.sim.now
            last: Optional[RpcError] = None
            for attempt in range(pol.max_attempts):
                if attempt > 0:
                    backoff = pol.delay_for(attempt)
                    if self.sim.now + backoff - start > pol.budget:
                        break  # the backoff alone would blow the budget
                    self.counters.add("retries")
                    if backoff > 0:
                        yield self.sim.timeout(backoff)
                try:
                    result = yield invoke(fn, *args, timeout=timeout)
                except RpcApplicationError:
                    raise
                except RpcError as exc:
                    last = exc
                    if self.sim.now - start >= pol.budget:
                        break
                    continue
                return result
            raise RpcRetriesExhausted(
                f"{self.name}: gave up after {pol.max_attempts} attempts / "
                f"{pol.budget:g}s budget"
            ) from last

        proc = self.sim.process(attempt_loop(), name=f"{self.name}.rpc_retry")

        def settle(p: Event) -> None:
            if p.ok:
                done.succeed(p.value)
                return
            exc = p.exception
            cause = exc.__cause__ if isinstance(exc, ProcessError) else exc
            done.fail(cause if isinstance(cause, RpcError) else exc)

        proc.add_callback(settle)
        return done

    def call_with_retry(
        self,
        fn: Callable[..., Any],
        *args: Any,
        policy: Optional[RetryPolicy] = None,
        timeout: Optional[float] = None,
    ) -> Event:
        """:meth:`call` with exponential backoff under a total time budget.

        Retries transport errors and timeouts only; an
        :class:`RpcApplicationError` is re-raised immediately (the far side
        deterministically failed — retrying replays the bug).  When the
        attempt count or the time budget runs out the event fails with
        :class:`RpcRetriesExhausted` chaining the last transport error.
        """
        return self._retrying(
            self.call, fn, args, policy or RetryPolicy(), timeout, "call_retry"
        )

    def request_with_retry(
        self,
        fn: Callable[..., Any],
        *args: Any,
        policy: Optional[RetryPolicy] = None,
        timeout: Optional[float] = None,
    ) -> Event:
        """:meth:`request` under the same backoff/budget as control calls.

        The retry set is identical — transport losses and timeouts only.
        Note the at-most-once caveat bites harder on the data plane: a
        timed-out request may have *completed* on the peer (the sample is
        now in its tier); retries are therefore idempotent reads, and peer
        caches must coalesce duplicate in-flight fetches.
        """
        return self._retrying(
            self.request, fn, args, policy or RetryPolicy(), timeout, "request_retry"
        )
