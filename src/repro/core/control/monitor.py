"""Monitoring bookkeeping for the control plane.

Stores the time series of :class:`MetricsSnapshot` the controller collects
from each stage, plus derived statistics the experiments report (starvation
series, producer allocation over time).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..optimization import MetricsSnapshot


class MetricsHistory:
    """Append-only history of one stage's snapshots."""

    def __init__(self, stage_name: str, max_entries: Optional[int] = None) -> None:
        self.stage_name = stage_name
        self.max_entries = max_entries
        self._snapshots: List[MetricsSnapshot] = []

    def append(self, snapshot: MetricsSnapshot) -> None:
        self._snapshots.append(snapshot)
        if self.max_entries is not None and len(self._snapshots) > self.max_entries:
            del self._snapshots[0]

    def __len__(self) -> int:
        return len(self._snapshots)

    @property
    def latest(self) -> Optional[MetricsSnapshot]:
        return self._snapshots[-1] if self._snapshots else None

    @property
    def previous(self) -> Optional[MetricsSnapshot]:
        return self._snapshots[-2] if len(self._snapshots) >= 2 else None

    def snapshots(self) -> List[MetricsSnapshot]:
        return list(self._snapshots)

    # -- derived series ----------------------------------------------------------
    def starvation_series(self) -> List[Tuple[float, float]]:
        """(time, per-period starvation fraction) for every interval."""
        out: List[Tuple[float, float]] = []
        for prev, cur in zip(self._snapshots, self._snapshots[1:]):
            out.append((cur.time, cur.starvation(prev)))
        return out

    def producer_series(self) -> List[Tuple[float, int]]:
        return [(s.time, s.producers_allocated) for s in self._snapshots]

    def buffer_series(self) -> List[Tuple[float, int, int]]:
        return [(s.time, s.buffer_level, s.buffer_capacity) for s in self._snapshots]

    def peak_producers(self) -> int:
        return max((s.producers_allocated for s in self._snapshots), default=0)

    def final_settings(self) -> Tuple[int, int]:
        """(producers, buffer capacity) at the last observation."""
        last = self.latest
        if last is None:
            return (0, 0)
        return (last.producers_allocated, last.buffer_capacity)
