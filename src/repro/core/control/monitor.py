"""Monitoring bookkeeping for the control plane.

Stores the time series of :class:`MetricsSnapshot` the controller collects
from each stage, plus derived statistics the experiments report (starvation
series, producer allocation over time).
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Deque, List, Optional, Tuple

from ..optimization import MetricsSnapshot

#: Default retention bound: long-running live controllers poll for hours, so
#: an unbounded history is a slow leak.  10k snapshots ≈ 17 minutes at the
#: default 0.1 s live period — far more than any policy looks back — while
#: capping memory at a few MB per stage.
DEFAULT_MAX_ENTRIES = 10_000


class MetricsHistory:
    """Bounded history of one stage's snapshots (oldest evicted first).

    ``max_entries=None`` disables the bound (useful for short deterministic
    experiments that post-process the full series).
    """

    def __init__(
        self, stage_name: str, max_entries: Optional[int] = DEFAULT_MAX_ENTRIES
    ) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive (or None for unbounded)")
        self.stage_name = stage_name
        self.max_entries = max_entries
        # deque(maxlen=None) is unbounded; otherwise appends auto-evict O(1).
        self._snapshots: Deque[MetricsSnapshot] = deque(maxlen=max_entries)

    def append(self, snapshot: MetricsSnapshot) -> None:
        self._snapshots.append(snapshot)

    def __len__(self) -> int:
        return len(self._snapshots)

    @property
    def latest(self) -> Optional[MetricsSnapshot]:
        return self._snapshots[-1] if self._snapshots else None

    @property
    def previous(self) -> Optional[MetricsSnapshot]:
        return self._snapshots[-2] if len(self._snapshots) >= 2 else None

    def snapshots(self) -> List[MetricsSnapshot]:
        return list(self._snapshots)

    # -- derived series ----------------------------------------------------------
    def starvation_series(self) -> List[Tuple[float, float]]:
        """(time, per-period starvation fraction) for every interval."""
        out: List[Tuple[float, float]] = []
        for prev, cur in zip(self._snapshots, islice(self._snapshots, 1, None)):
            out.append((cur.time, cur.starvation(prev)))
        return out

    def producer_series(self) -> List[Tuple[float, int]]:
        return [(s.time, s.producers_allocated) for s in self._snapshots]

    def buffer_series(self) -> List[Tuple[float, int, int]]:
        return [(s.time, s.buffer_level, s.buffer_capacity) for s in self._snapshots]

    def peak_producers(self) -> int:
        return max((s.producers_allocated for s in self._snapshots), default=0)

    def final_settings(self) -> Tuple[int, int]:
        """(producers, buffer capacity) at the last observation."""
        last = self.latest
        if last is None:
            return (0, 0)
        return (last.producers_allocated, last.buffer_capacity)
