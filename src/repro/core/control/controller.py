"""The control plane: a logically centralized controller (paper §III-A).

The controller periodically polls every registered data-plane stage over its
control channel, feeds the snapshots to the stage's policy (or to a single
*global* policy with visibility over all stages at once — the "system-wide
visibility" the paper argues for), and pushes resulting knob changes back.

Centralization is what makes holistic behaviour possible: a global policy
can, e.g., divide a machine-wide producer-thread budget among competing
training jobs, something no framework-intrinsic optimizer can do (paper §II
"partial visibility").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ...simcore.errors import Interrupt
from ..optimization import MetricsSnapshot, TuningSettings
from .monitor import MetricsHistory
from .policy import ControlPolicy
from .rpc import ControlChannel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...simcore.kernel import Simulator
    from ..stage import PrismaStage


class GlobalPolicy(abc.ABC):
    """A policy that decides over *all* stages jointly."""

    @abc.abstractmethod
    def decide_all(
        self, histories: Dict[str, MetricsHistory]
    ) -> Dict[str, TuningSettings]:
        """Map stage name -> new settings (omit stages to leave unchanged)."""


@dataclass
class _Registration:
    stage: "PrismaStage"
    policy: Optional[ControlPolicy]
    channel: ControlChannel
    history: MetricsHistory = field(init=False)

    def __post_init__(self) -> None:
        self.history = MetricsHistory(self.stage.name)


class Controller:
    """Periodic monitor/decide/enforce loop over registered stages."""

    def __init__(
        self,
        sim: "Simulator",
        period: float,
        global_policy: Optional[GlobalPolicy] = None,
        name: str = "prisma.controller",
    ) -> None:
        if period <= 0:
            raise ValueError("control period must be positive")
        self.sim = sim
        self.period = period
        self.name = name
        self.global_policy = global_policy
        self._registrations: List[_Registration] = []
        self._process = None
        self.cycles = 0
        self.enforcements = 0
        #: simulated time of the last completed control cycle (heartbeat
        #: for the dependability machinery in :mod:`.replicated`)
        self.last_cycle_time: float = float("-inf")

    # -- registration ------------------------------------------------------------
    def register(
        self,
        stage: "PrismaStage",
        policy: Optional[ControlPolicy] = None,
        channel: Optional[ControlChannel] = None,
    ) -> MetricsHistory:
        """Attach a stage; returns its history for later inspection."""
        if policy is None and self.global_policy is None:
            raise ValueError("a per-stage policy or a global policy is required")
        reg = _Registration(
            stage=stage,
            policy=policy,
            channel=channel or ControlChannel(self.sim, name=f"{self.name}.ch"),
        )
        self._registrations.append(reg)
        return reg.history

    def history_for(self, stage_name: str) -> MetricsHistory:
        for reg in self._registrations:
            if reg.stage.name == stage_name:
                return reg.history
        raise KeyError(stage_name)

    # -- control loop -------------------------------------------------------------
    def start(self) -> None:
        if self._process is not None:
            raise RuntimeError("controller already started")
        self._process = self.sim.process(self._loop(), name=self.name)

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("controller stopped")
        self._process = None

    def _loop(self):
        try:
            while True:
                yield self.sim.timeout(self.period)
                yield from self._cycle()
                self.cycles += 1
                self.last_cycle_time = self.sim.now
        except Interrupt:
            return

    def _cycle(self):
        # Monitor: poll every stage.  Multi-object stages report one
        # snapshot per optimization object; record their aggregate
        # (summed counters, last-writer gauges) so no object's traffic is
        # silently dropped from the history.
        for reg in self._registrations:
            snapshots: List[MetricsSnapshot] = yield reg.channel.call(
                reg.stage.control_snapshot
            )
            if snapshots:
                reg.history.append(MetricsSnapshot.aggregate(snapshots))

        # Decide + enforce.
        if self.global_policy is not None:
            histories = {reg.stage.name: reg.history for reg in self._registrations}
            decisions = self.global_policy.decide_all(histories)
            for reg in self._registrations:
                settings = decisions.get(reg.stage.name)
                if settings is not None:
                    yield reg.channel.call(reg.stage.control_apply, settings)
                    self.enforcements += 1
            return

        for reg in self._registrations:
            assert reg.policy is not None
            if reg.history.latest is None:
                continue
            decision = reg.policy.decide(reg.history.latest, reg.history.previous)
            if decision is not None:
                yield reg.channel.call(reg.stage.control_apply, decision)
                self.enforcements += 1
