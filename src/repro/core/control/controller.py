"""The control plane: a logically centralized controller (paper §III-A).

The controller periodically polls every registered data-plane stage over its
control channel, feeds the snapshots to the stage's policy (or to a single
*global* policy with visibility over all stages at once — the "system-wide
visibility" the paper argues for), and pushes resulting knob changes back.

Centralization is what makes holistic behaviour possible: a global policy
can, e.g., divide a machine-wide producer-thread budget among competing
training jobs, something no framework-intrinsic optimizer can do (paper §II
"partial visibility").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ...simcore.errors import Interrupt
from ..optimization import MetricsSnapshot, TuningSettings
from .monitor import MetricsHistory
from .policy import ControlPolicy
from .rpc import ControlChannel, RetryPolicy, RpcRetriesExhausted, RpcTransportError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...simcore.kernel import Simulator
    from ..stage import PrismaStage


class GlobalPolicy(abc.ABC):
    """A policy that decides over *all* stages jointly."""

    @abc.abstractmethod
    def decide_all(
        self, histories: Dict[str, MetricsHistory]
    ) -> Dict[str, TuningSettings]:
        """Map stage name -> new settings (omit stages to leave unchanged)."""


@dataclass
class _Registration:
    stage: "PrismaStage"
    policy: Optional[ControlPolicy]
    channel: ControlChannel
    history: MetricsHistory = field(init=False)
    #: degraded-mode state seen at the last cycle (telemetry edge detection)
    last_engaged: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        self.history = MetricsHistory(self.stage.name)


class Controller:
    """Periodic monitor/decide/enforce loop over registered stages."""

    def __init__(
        self,
        sim: "Simulator",
        period: float,
        global_policy: Optional[GlobalPolicy] = None,
        rpc_timeout: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        name: str = "prisma.controller",
    ) -> None:
        if period <= 0:
            raise ValueError("control period must be positive")
        self.sim = sim
        self.period = period
        self.name = name
        self.global_policy = global_policy
        self._registrations: List[_Registration] = []
        self._process = None
        self.cycles = 0
        self.enforcements = 0
        #: per-attempt RPC deadline; defaults to half a control period so a
        #: wedged channel can never stall the loop across cycles
        self.rpc_timeout = rpc_timeout if rpc_timeout is not None else period / 2
        #: backoff schedule for monitor/enforce calls, budgeted to one period
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=3, base_delay=period / 20, max_delay=period / 4, budget=period
        )
        #: monitor polls or enforcement pushes abandoned after retries —
        #: the stage keeps its previous settings for that cycle (degraded
        #: but alive, never crashed)
        self.rpc_failures = 0
        #: simulated time of the last completed control cycle (heartbeat
        #: for the dependability machinery in :mod:`.replicated`)
        self.last_cycle_time: float = float("-inf")

    # -- registration ------------------------------------------------------------
    def register(
        self,
        stage: "PrismaStage",
        policy: Optional[ControlPolicy] = None,
        channel: Optional[ControlChannel] = None,
    ) -> MetricsHistory:
        """Attach a stage; returns its history for later inspection."""
        if policy is None and self.global_policy is None:
            raise ValueError("a per-stage policy or a global policy is required")
        reg = _Registration(
            stage=stage,
            policy=policy,
            channel=channel or ControlChannel(self.sim, name=f"{self.name}.ch"),
        )
        self._registrations.append(reg)
        return reg.history

    def channels(self) -> List[ControlChannel]:
        """Every registered stage's control channel (fault-injection targets)."""
        return [reg.channel for reg in self._registrations]

    def history_for(self, stage_name: str) -> MetricsHistory:
        for reg in self._registrations:
            if reg.stage.name == stage_name:
                return reg.history
        raise KeyError(stage_name)

    # -- control loop -------------------------------------------------------------
    def start(self) -> None:
        if self._process is not None:
            raise RuntimeError("controller already started")
        self._process = self.sim.process(self._loop(), name=self.name)

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("controller stopped")
        self._process = None

    def _loop(self):
        try:
            while True:
                yield self.sim.timeout(self.period)
                yield from self._cycle()
                self.cycles += 1
                self.last_cycle_time = self.sim.now
        except Interrupt:
            return

    def _call(self, reg: _Registration, fn, *args):
        """One reliable control-plane RPC: retry/backoff, typed failure."""
        return reg.channel.call_with_retry(
            fn, *args, policy=self.retry_policy, timeout=self.rpc_timeout
        )

    @staticmethod
    def _degraded_state(policy) -> Optional[bool]:
        """Walk a (possibly wrapped) policy chain for degraded-mode state."""
        seen = set()
        while policy is not None and id(policy) not in seen:
            seen.add(id(policy))
            engaged = getattr(policy, "engaged", None)
            if engaged is not None:
                return bool(engaged)
            policy = getattr(policy, "inner", None)
        return None

    def _note_decision(self, tel, reg: _Registration, decision, policy) -> None:
        """Emit the policy-decision event and any degraded-mode transition."""
        if tel is None:
            return
        tel.instant(
            "control.decision",
            self.name,
            "control",
            stage=reg.stage.name,
            producers=decision.producers,
            buffer_capacity=decision.buffer_capacity,
            reason=getattr(policy, "last_reason", None),
        )
        engaged = self._degraded_state(policy)
        if engaged is not None and engaged != reg.last_engaged:
            reg.last_engaged = engaged
            tel.instant(
                "control.degraded_engage" if engaged else "control.degraded_recover",
                self.name,
                "control",
                stage=reg.stage.name,
            )

    def _cycle(self):
        # Monitor: poll every stage.  Multi-object stages report one
        # snapshot per optimization object; record their aggregate
        # (summed counters, last-writer gauges) so no object's traffic is
        # silently dropped from the history.  A stage whose channel stays
        # down through the retry budget is skipped for the cycle — the
        # control plane degrades (stale knobs) rather than crashing.
        tel = self.sim.telemetry
        for reg in self._registrations:
            span = None
            if tel is not None:
                span = tel.begin(
                    "control.monitor", self.name, "control", stage=reg.stage.name
                )
            try:
                snapshots: List[MetricsSnapshot] = yield self._call(
                    reg, reg.stage.control_snapshot
                )
            except (RpcTransportError, RpcRetriesExhausted) as exc:
                self.rpc_failures += 1
                if tel is not None:
                    tel.end(span, ok=False, error=type(exc).__name__)
                    tel.registry.counter("control.rpc_failures_total", controller=self.name).inc()
                continue
            if tel is not None:
                tel.end(span, ok=True)
            if snapshots:
                reg.history.append(MetricsSnapshot.aggregate(snapshots))

        # Decide + enforce.
        if self.global_policy is not None:
            histories = {reg.stage.name: reg.history for reg in self._registrations}
            decisions = self.global_policy.decide_all(histories)
            for reg in self._registrations:
                settings = decisions.get(reg.stage.name)
                if settings is not None:
                    self._note_decision(tel, reg, settings, self.global_policy)
                    ok = yield from self._enforce(tel, reg, settings)
                    if not ok:
                        continue
            return

        for reg in self._registrations:
            assert reg.policy is not None
            if reg.history.latest is None:
                continue
            decision = reg.policy.decide(reg.history.latest, reg.history.previous)
            if decision is not None:
                self._note_decision(tel, reg, decision, reg.policy)
                yield from self._enforce(tel, reg, decision)

    def _enforce(self, tel, reg: _Registration, settings):
        """Push settings over the channel inside a ``control.enforce`` span."""
        span = None
        if tel is not None:
            span = tel.begin("control.enforce", self.name, "control", stage=reg.stage.name)
        try:
            yield self._call(reg, reg.stage.control_apply, settings)
        except (RpcTransportError, RpcRetriesExhausted) as exc:
            self.rpc_failures += 1
            if tel is not None:
                tel.end(span, ok=False, error=type(exc).__name__)
                tel.registry.counter("control.rpc_failures_total", controller=self.name).inc()
            return False
        if tel is not None:
            tel.end(span, ok=True)
        self.enforcements += 1
        return True
