"""The simulated control-plane driver (paper §III-A).

All monitor→decide→enforce logic lives in the shared
:class:`~.kernel.ControlCycle`; this module contributes only what is
specific to the *simulated* deployment shape: a kernel process that wakes
every ``period`` of simulated time, and :class:`~.kernel.ChannelTransport`
instances that carry each control call over a latency/fault-modelled
:class:`~.rpc.ControlChannel`.

Centralization is what makes holistic behaviour possible: a global policy
can, e.g., divide a machine-wide producer-thread budget among competing
training jobs, something no framework-intrinsic optimizer can do (paper §II
"partial visibility").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ...simcore.errors import Interrupt
from .kernel import ChannelTransport, ControlCycle, GlobalPolicy
from .monitor import MetricsHistory
from .policy import ControlPolicy
from .rpc import ControlChannel, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...simcore.kernel import Simulator
    from .kernel import StagePort

__all__ = ["Controller", "GlobalPolicy"]


class Controller:
    """Periodic monitor/decide/enforce loop over registered stages.

    A thin driver: owns the simulated clock (one cycle per ``period`` of
    sim time, interruptible process) and the channel transports; delegates
    the cycle itself to the shared :class:`~.kernel.ControlCycle`.
    """

    def __init__(
        self,
        sim: "Simulator",
        period: float,
        global_policy: Optional[GlobalPolicy] = None,
        rpc_timeout: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        name: str = "prisma.controller",
    ) -> None:
        if period <= 0:
            raise ValueError("control period must be positive")
        self.sim = sim
        self.period = period
        self.name = name
        self._process = None
        #: per-attempt RPC deadline; defaults to half a control period so a
        #: wedged channel can never stall the loop across cycles
        self.rpc_timeout = rpc_timeout if rpc_timeout is not None else period / 2
        #: backoff schedule for monitor/enforce calls, budgeted to one period
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=3, base_delay=period / 20, max_delay=period / 4, budget=period
        )
        self.kernel = ControlCycle(
            name,
            clock=lambda: self.sim.now,
            telemetry=lambda: self.sim.telemetry,
            global_policy=global_policy,
        )

    # -- kernel accounting, re-exposed -------------------------------------------
    @property
    def global_policy(self) -> Optional[GlobalPolicy]:
        return self.kernel.global_policy

    @property
    def cycles(self) -> int:
        return self.kernel.cycles

    @property
    def enforcements(self) -> int:
        return self.kernel.enforcements

    @property
    def rpc_failures(self) -> int:
        return self.kernel.rpc_failures

    @property
    def last_cycle_time(self) -> float:
        return self.kernel.last_cycle_time

    # -- registration ------------------------------------------------------------
    def register(
        self,
        stage: "StagePort",
        policy: Optional[ControlPolicy] = None,
        channel: Optional[ControlChannel] = None,
    ) -> MetricsHistory:
        """Attach a stage; returns its history for later inspection."""
        transport = ChannelTransport(
            channel or ControlChannel(self.sim, name=f"{self.name}.ch"),
            retry_policy=self.retry_policy,
            timeout=self.rpc_timeout,
        )
        return self.kernel.register(stage, policy, transport)

    def channels(self) -> List[ControlChannel]:
        """Every registered stage's control channel (fault-injection targets)."""
        return [
            reg.transport.channel
            for reg in self.kernel.registrations()
            if isinstance(reg.transport, ChannelTransport)
        ]

    def history_for(self, stage_name: str) -> MetricsHistory:
        return self.kernel.history_for(stage_name)

    # -- control loop -------------------------------------------------------------
    def start(self) -> None:
        if self._process is not None:
            raise RuntimeError("controller already started")
        self._process = self.sim.process(self._loop(), name=self.name)

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("controller stopped")
        self._process = None

    def _loop(self):
        try:
            while True:
                yield self.sim.timeout(self.period)
                yield from self.kernel.run_events()
                self.kernel.complete_cycle()
        except Interrupt:
            return
