"""Control-plane dependability: primary/standby failover (paper §VII).

The paper: *"While logically centralized, the control plane is physically
distributed and made of multiple controllers to meet the scalability and
availability (in case of controller failures) requirements of large scale
infrastructures"* and lists "control plane scalability and dependability"
as an open direction.

:class:`ReplicatedController` realizes the availability half: a primary
:class:`~.controller.Controller` drives the stages while a standby watches
its heartbeat (the shared kernel's ``last_cycle_time``, stamped by
:meth:`~.kernel.ControlCycle.complete_cycle`).  If the primary misses
``failover_multiplier`` control periods, the standby promotes itself and
resumes the loop — the data plane keeps serving throughout (a controller
outage never blocks reads; it only freezes tuning), so training continues
and merely runs with stale knobs until failover completes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ...simcore.errors import Interrupt
from .controller import Controller, GlobalPolicy
from .policy import ControlPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...simcore.kernel import Simulator
    from .kernel import StagePort


class ReplicatedController:
    """A primary controller plus a hot standby with heartbeat failover."""

    def __init__(
        self,
        sim: "Simulator",
        period: float,
        failover_multiplier: float = 3.0,
        global_policy: Optional[GlobalPolicy] = None,
        name: str = "prisma.ha-controller",
    ) -> None:
        if failover_multiplier <= 1.0:
            raise ValueError("failover_multiplier must exceed 1 period")
        self.sim = sim
        self.period = period
        self.failover_timeout = period * failover_multiplier
        self.name = name
        self.primary = Controller(sim, period, global_policy, name=f"{name}.primary")
        self.standby = Controller(sim, period, global_policy, name=f"{name}.standby")
        self._watchdog = None
        self._failed_over = False
        self.failover_time: Optional[float] = None

    # -- registration (mirrored to both replicas) ---------------------------------
    def register(
        self,
        stage: "StagePort",
        policy: Optional[ControlPolicy] = None,
        standby_policy: Optional[ControlPolicy] = None,
    ) -> None:
        """Attach a stage to both replicas.

        Policies are stateful, so the standby needs its *own* instance
        (``standby_policy``); passing the same object to both would let the
        idle replica's state rot.  With per-stage policies both arguments
        are required; with a global policy, neither.
        """
        if (policy is None) != (standby_policy is None):
            raise ValueError("provide both policy and standby_policy, or neither")
        self.primary.register(stage, policy)
        self.standby.register(stage, standby_policy)

    # -- lifecycle --------------------------------------------------------------
    def start(self) -> None:
        self.primary.start()
        self._watchdog = self.sim.process(self._watch(), name=f"{self.name}.watchdog")

    def stop(self) -> None:
        for controller in (self.primary, self.standby):
            try:
                controller.stop()
            except Exception:  # noqa: BLE001 - replica may never have started
                pass
        if self._watchdog is not None and self._watchdog.is_alive:
            self._watchdog.interrupt("ha stopped")
        self._watchdog = None

    @property
    def active(self) -> Controller:
        """The replica currently in charge."""
        return self.standby if self._failed_over else self.primary

    @property
    def failed_over(self) -> bool:
        return self._failed_over

    # -- failure injection ---------------------------------------------------------
    def kill_primary(self) -> None:
        """Crash the primary controller (for dependability experiments)."""
        self.primary.stop()

    def schedule_primary_failure(self, at: float) -> None:
        """Arrange for the primary to crash at simulated time ``at``."""

        def failer():
            delay = at - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            self.kill_primary()

        self.sim.process(failer(), name=f"{self.name}.failure-injector")

    # -- watchdog --------------------------------------------------------------
    def _watch(self):
        try:
            while True:
                yield self.sim.timeout(self.period)
                if self._failed_over:
                    return
                silent_for = self.sim.now - max(self.primary.last_cycle_time, 0.0)
                if silent_for > self.failover_timeout:
                    self._failed_over = True
                    self.failover_time = self.sim.now
                    self.standby.start()
                    return
        except Interrupt:
            return
