"""The *optimization object* abstraction (paper §III-A).

A data-plane stage hosts one or more optimization objects: *"an abstraction
that allows users to implement custom storage optimizations to apply over DL
requests … examples include data prefetching, parallel I/O, and storage
tiering"*.  An optimization object:

* may intercept read requests (``serve``) — returning an event when it
  handles the request itself, or ``None`` to pass it down the stack;
* exposes *tuning knobs* the control plane adjusts (``apply_settings``);
* reports *metrics* the control plane monitors (``snapshot``).

This is the extension point that makes the data plane generic: PRISMA's
:class:`~repro.core.prefetcher.ParallelPrefetcher` is one implementation;
:class:`~repro.core.tiering.TieringObject` (the paper's §VII "future work")
is another, and both plug into the same stage unchanged.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from ..simcore.event import Event
from ..telemetry.snapshot import MetricsSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator
    from ..storage.backend import SampleSource

__all__ = ["MetricsSnapshot", "OptimizationObject", "TuningSettings"]


@dataclass(frozen=True)
class TuningSettings:
    """Control-plane directives for an optimization object.

    ``producers`` is PRISMA's *t* (parallel read threads) and
    ``buffer_capacity`` its *N* (in-memory samples); extensions may carry
    extra free-form knobs in ``extra``.
    """

    producers: Optional[int] = None
    buffer_capacity: Optional[int] = None
    extra: Dict[str, object] = field(default_factory=dict)


class OptimizationObject(abc.ABC):
    """Base class for self-contained, controllable I/O optimizations."""

    def __init__(self, sim: "Simulator", backend: "SampleSource", name: str) -> None:
        self.sim = sim
        self.backend = backend
        self.name = name

    @abc.abstractmethod
    def serve(self, path: str) -> Optional[Event]:
        """Try to serve a whole-file read for ``path``.

        Return an event (valued with the byte count) if this object handles
        the request, or ``None`` to let the stage fall through to the
        backend.
        """

    @abc.abstractmethod
    def snapshot(self) -> MetricsSnapshot:
        """Current metrics for the control plane."""

    @abc.abstractmethod
    def apply_settings(self, settings: TuningSettings) -> None:
        """Adopt new control-plane directives."""

    def on_epoch(self, paths) -> None:  # noqa: B027 - optional hook
        """Notification that a new epoch's filenames list arrived."""
