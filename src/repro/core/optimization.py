"""The *optimization object* abstraction (paper §III-A).

A data-plane stage hosts one or more optimization objects: *"an abstraction
that allows users to implement custom storage optimizations to apply over DL
requests … examples include data prefetching, parallel I/O, and storage
tiering"*.  An optimization object:

* may intercept read requests (``serve``) — returning an event when it
  handles the request itself, or ``None`` to pass it down the stack;
* exposes *tuning knobs* the control plane adjusts (``apply_settings``);
* reports *metrics* the control plane monitors (``snapshot``).

This is the extension point that makes the data plane generic: PRISMA's
:class:`~repro.core.prefetcher.ParallelPrefetcher` is one implementation;
:class:`~repro.core.tiering.TieringObject` (the paper's §VII "future work")
is another, and both plug into the same stage unchanged.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Sequence

from ..simcore.event import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator
    from ..storage.posix import PosixLike


@dataclass(frozen=True)
class TuningSettings:
    """Control-plane directives for an optimization object.

    ``producers`` is PRISMA's *t* (parallel read threads) and
    ``buffer_capacity`` its *N* (in-memory samples); extensions may carry
    extra free-form knobs in ``extra``.
    """

    producers: Optional[int] = None
    buffer_capacity: Optional[int] = None
    extra: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class MetricsSnapshot:
    """What an optimization object reports to the control plane."""

    time: float
    requests: float = 0.0
    hits: float = 0.0
    waits: float = 0.0
    buffer_level: int = 0
    buffer_capacity: int = 0
    producers_allocated: int = 0
    producers_active: float = 0.0
    bytes_fetched: float = 0.0
    queue_remaining: int = 0
    #: fault/recovery telemetry (counters; summed by :meth:`aggregate`)
    files_fetched: float = 0.0
    read_errors: float = 0.0
    producer_respawns: float = 0.0
    serve_retries: float = 0.0

    @classmethod
    def aggregate(cls, snapshots: "Sequence[MetricsSnapshot]") -> "MetricsSnapshot":
        """Combine the per-object snapshots of a multi-object stage.

        Counter-like fields (``requests``, ``hits``, ``waits``,
        ``bytes_fetched``) are summed across objects; gauge-like fields
        (buffer level/capacity, producer counts, queue backlog) take the
        last object's value (last-writer-wins, matching the stage's
        object order); ``time`` is the latest poll time.
        """
        if not snapshots:
            raise ValueError("aggregate() needs at least one snapshot")
        if len(snapshots) == 1:
            return snapshots[0]
        last = snapshots[-1]
        return cls(
            time=max(s.time for s in snapshots),
            requests=sum(s.requests for s in snapshots),
            hits=sum(s.hits for s in snapshots),
            waits=sum(s.waits for s in snapshots),
            buffer_level=last.buffer_level,
            buffer_capacity=last.buffer_capacity,
            producers_allocated=last.producers_allocated,
            producers_active=last.producers_active,
            bytes_fetched=sum(s.bytes_fetched for s in snapshots),
            queue_remaining=last.queue_remaining,
            files_fetched=sum(s.files_fetched for s in snapshots),
            read_errors=sum(s.read_errors for s in snapshots),
            producer_respawns=sum(s.producer_respawns for s in snapshots),
            serve_retries=sum(s.serve_retries for s in snapshots),
        )

    def error_rate(self, previous: Optional["MetricsSnapshot"] = None) -> float:
        """Fraction of producer fetch attempts that failed (since ``previous``).

        The degraded-mode policy's trigger signal: injected read-error
        bursts push this above threshold; it falls back to ~0 when the
        fault window closes.
        """
        errors, files = self.read_errors, self.files_fetched
        if previous is not None:
            errors -= previous.read_errors
            files -= previous.files_fetched
        attempts = errors + files
        return errors / attempts if attempts > 0 else 0.0

    def starvation(self, previous: Optional["MetricsSnapshot"] = None) -> float:
        """Fraction of consumer requests that stalled (since ``previous``)."""
        hits, waits = self.hits, self.waits
        if previous is not None:
            hits -= previous.hits
            waits -= previous.waits
        total = hits + waits
        return waits / total if total > 0 else 0.0


class OptimizationObject(abc.ABC):
    """Base class for self-contained, controllable I/O optimizations."""

    def __init__(self, sim: "Simulator", backend: "PosixLike", name: str) -> None:
        self.sim = sim
        self.backend = backend
        self.name = name

    @abc.abstractmethod
    def serve(self, path: str) -> Optional[Event]:
        """Try to serve a whole-file read for ``path``.

        Return an event (valued with the byte count) if this object handles
        the request, or ``None`` to let the stage fall through to the
        backend.
        """

    @abc.abstractmethod
    def snapshot(self) -> MetricsSnapshot:
        """Current metrics for the control plane."""

    @abc.abstractmethod
    def apply_settings(self, settings: TuningSettings) -> None:
        """Adopt new control-plane directives."""

    def on_epoch(self, paths) -> None:  # noqa: B027 - optional hook
        """Notification that a new epoch's filenames list arrived."""
