"""``repro.core`` — PRISMA: the paper's primary contribution.

The Software-Defined Storage middleware for DL training: the data plane
(:class:`PrismaStage` hosting :class:`OptimizationObject` implementations,
chiefly the :class:`ParallelPrefetcher`), the control plane
(:mod:`repro.core.control`), and the TensorFlow / PyTorch integrations
(:mod:`repro.core.integrations`).

:func:`build_prisma` wires a complete SDS stack in one call.
"""

from typing import TYPE_CHECKING, Optional, Tuple

from .buffer import PrefetchBuffer
from .control import (
    AutotuneParams,
    ControlChannel,
    Controller,
    ControlPolicy,
    DegradedModeParams,
    DegradedModePolicy,
    MetricsHistory,
    PrismaAutotunePolicy,
    RetryPolicy,
    RpcApplicationError,
    RpcError,
    RpcRetriesExhausted,
    RpcTimeout,
    RpcTransportError,
    StaticPolicy,
)
from .filename_queue import FilenameQueue
from .optimization import MetricsSnapshot, OptimizationObject, TuningSettings
from .prefetcher import ParallelPrefetcher
from .shared import SharedDatasetPrefetcher
from .stage import PrismaStage
from .tiering import TieringObject

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator
    from ..storage.posix import PosixLike

__all__ = [
    "AutotuneParams",
    "ControlChannel",
    "ControlPolicy",
    "Controller",
    "DegradedModeParams",
    "DegradedModePolicy",
    "FilenameQueue",
    "MetricsHistory",
    "MetricsSnapshot",
    "OptimizationObject",
    "ParallelPrefetcher",
    "PrefetchBuffer",
    "PrismaAutotunePolicy",
    "PrismaStage",
    "RetryPolicy",
    "RpcApplicationError",
    "RpcError",
    "RpcRetriesExhausted",
    "RpcTimeout",
    "RpcTransportError",
    "SharedDatasetPrefetcher",
    "StaticPolicy",
    "TieringObject",
    "TuningSettings",
    "build_prisma",
]


def build_prisma(
    sim: "Simulator",
    backend: "PosixLike",
    control_period: float,
    policy: Optional[ControlPolicy] = None,
    producers: int = 2,
    buffer_capacity: int = 256,
    max_producers: int = 8,
    name: str = "prisma",
) -> Tuple[PrismaStage, ParallelPrefetcher, Controller]:
    """Assemble a complete PRISMA stack over ``backend``.

    Returns ``(stage, prefetcher, controller)``; the controller is already
    started.  ``control_period`` is in simulated seconds — experiments scale
    it together with the dataset so the number of control decisions per
    epoch matches an unscaled deployment.
    """
    prefetcher = ParallelPrefetcher(
        sim,
        backend,
        producers=producers,
        buffer_capacity=buffer_capacity,
        max_producers=max_producers,
        name=f"{name}.prefetch",
    )
    stage = PrismaStage(sim, backend, [prefetcher], name=f"{name}.stage")
    controller = Controller(sim, period=control_period, name=f"{name}.controller")
    controller.register(stage, policy or PrismaAutotunePolicy())
    controller.start()
    return stage, prefetcher, controller
