"""``repro.core`` — PRISMA: the paper's primary contribution.

The Software-Defined Storage middleware for DL training: the data plane
(:class:`PrismaStage` hosting :class:`OptimizationObject` implementations,
chiefly the :class:`ParallelPrefetcher`), the control plane
(:mod:`repro.core.control`), and the TensorFlow / PyTorch integrations
(:mod:`repro.core.integrations`).

:func:`build_prisma` wires a complete SDS stack in one call; it is
configured with a typed :class:`PrismaConfig`.
"""

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional, Tuple

from ..storage.backend import BackendConfig, build_backend

from .buffer import PrefetchBuffer
from .control import (
    AutotuneParams,
    ControlChannel,
    Controller,
    ControlPolicy,
    DegradedModeParams,
    DegradedModePolicy,
    MetricsHistory,
    PredictiveParams,
    PredictivePolicy,
    PrismaAutotunePolicy,
    RetryPolicy,
    RpcApplicationError,
    RpcError,
    RpcRetriesExhausted,
    RpcTimeout,
    RpcTransportError,
    StaticPolicy,
)
from .filename_queue import FilenameQueue
from .optimization import MetricsSnapshot, OptimizationObject, TuningSettings
from .prefetcher import ParallelPrefetcher
from .schedule import NEVER, LookaheadSchedule
from .shared import SharedDatasetPrefetcher
from .stage import PrismaStage
from .tiering import ClairvoyantTieringObject, TieringConfig, TieringObject

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator
    from ..storage.posix import PosixLike

__all__ = [
    "AutotuneParams",
    "ClairvoyantTieringObject",
    "ControlChannel",
    "ControlPolicy",
    "Controller",
    "DegradedModeParams",
    "DegradedModePolicy",
    "FilenameQueue",
    "LookaheadSchedule",
    "MetricsHistory",
    "MetricsSnapshot",
    "NEVER",
    "OptimizationObject",
    "ParallelPrefetcher",
    "PrefetchBuffer",
    "PredictiveParams",
    "PredictivePolicy",
    "PrismaAutotunePolicy",
    "PrismaStage",
    "RetryPolicy",
    "RpcApplicationError",
    "RpcError",
    "RpcRetriesExhausted",
    "RpcTimeout",
    "RpcTransportError",
    "SharedDatasetPrefetcher",
    "PrismaConfig",
    "StaticPolicy",
    "TieringConfig",
    "TieringObject",
    "TuningSettings",
    "build_prisma",
]


@dataclass(frozen=True)
class PrismaConfig:
    """Typed configuration for :func:`build_prisma`.

    One value object instead of a drift-prone keyword list: experiments
    construct a config once, ``dataclasses.replace`` it per trial, and the
    same object can be logged next to the results it produced.
    """

    #: control-loop period in simulated seconds (experiments scale it with
    #: the dataset so decisions-per-epoch match an unscaled deployment)
    control_period: float = 0.05
    #: control policy; ``None`` selects a fresh :class:`PrismaAutotunePolicy`
    policy: Optional[ControlPolicy] = None
    #: initial producer threads *t*
    producers: int = 2
    #: initial buffer capacity *N* (samples)
    buffer_capacity: int = 256
    #: hard ceiling the control plane may never push *t* beyond
    max_producers: int = 8
    #: component-name prefix (``<name>.stage``, ``<name>.prefetch``, …)
    name: str = "prisma"
    #: epochs past the live one the prefetcher may fetch ahead (0 = off;
    #: takes effect once a :class:`LookaheadSchedule` is installed)
    lookahead_epochs: int = 0
    #: optional node-local fast tier between the buffer and the backend
    tiering: Optional[TieringConfig] = None
    #: optional storage-backend spec; when set, :func:`build_prisma` builds
    #: the backend itself (POSIX filesystem or object store) instead of
    #: being handed one — the config fully describes the deployment
    backend: Optional[BackendConfig] = None

    def __post_init__(self) -> None:
        if self.control_period <= 0:
            raise ValueError("control_period must be positive")
        if self.producers < 1:
            raise ValueError("producers must be >= 1")
        if self.buffer_capacity < 1:
            raise ValueError("buffer_capacity must be >= 1")
        if self.max_producers < self.producers:
            raise ValueError("max_producers must be >= producers")
        if isinstance(self.lookahead_epochs, bool) or not isinstance(
            self.lookahead_epochs, int
        ):
            raise ValueError(
                f"lookahead_epochs must be an int, got {self.lookahead_epochs!r}"
            )
        if self.lookahead_epochs < 0:
            raise ValueError("lookahead_epochs must be >= 0")
        if self.tiering is not None and not isinstance(self.tiering, TieringConfig):
            raise ValueError(
                f"tiering must be a TieringConfig, got {type(self.tiering).__name__}"
            )
        if self.backend is not None and not isinstance(self.backend, BackendConfig):
            raise ValueError(
                f"backend must be a BackendConfig, got {type(self.backend).__name__}"
            )

    def with_overrides(self, **overrides) -> "PrismaConfig":
        """A copy with the given fields replaced (sugar over ``replace``)."""
        return replace(self, **overrides)


def build_prisma(
    sim: "Simulator",
    backend: Optional["PosixLike"] = None,
    config: Optional[PrismaConfig] = None,
) -> Tuple[PrismaStage, ParallelPrefetcher, Controller]:
    """Assemble a complete PRISMA stack over ``backend``.

    Returns ``(stage, prefetcher, controller)``; the controller is already
    started.  ``backend`` may be any :class:`~repro.storage.posix.PosixLike`
    built by the caller, **or** omitted when ``config.backend`` carries a
    :class:`~repro.storage.backend.BackendConfig` — then the storage stack
    (POSIX filesystem or object store, per ``kind``) is constructed here
    and wrapped in a :class:`~repro.storage.posix.PosixLayer`; the built
    backend is reachable as ``stage.backend.fs``.  All tuning comes in as
    a :class:`PrismaConfig`.
    """
    if config is None:
        config = PrismaConfig()
    if config.backend is not None:
        if backend is not None:
            raise ValueError(
                "pass either a backend instance or PrismaConfig.backend, not both"
            )
        from ..storage.posix import PosixLayer

        backend = PosixLayer(sim, build_backend(sim, config.backend))
    elif backend is None:
        raise ValueError(
            "build_prisma needs a backend: pass one, or set PrismaConfig.backend"
        )
    tiering = None
    prefetch_backend = backend
    if config.tiering is not None:
        from ..storage.device import PROFILES, BlockDevice
        from ..storage.filesystem import Filesystem

        tcfg = config.tiering
        if tcfg.backing_capacity_bytes is None:
            # No declared backing size: measure the backend we were handed.
            fs = getattr(backend, "fs", None)
            total = fs.total_bytes() if fs is not None else 0
            if total > 0 and tcfg.fast_capacity_bytes >= total:
                raise ValueError(
                    f"fast tier ({tcfg.fast_capacity_bytes} B) holds the entire "
                    f"backing store ({total} B); tiering would be a no-op — "
                    "shrink fast_capacity_bytes or drop the tiering config"
                )
        fast_fs = Filesystem(
            sim,
            BlockDevice(sim, PROFILES[tcfg.fast_profile]()),
            name=f"{config.name}.fast",
        )
        if tcfg.clairvoyant:
            tiering = ClairvoyantTieringObject(
                sim, backend, fast_fs, tcfg.fast_capacity_bytes,
                name=f"{config.name}.tiering",
            )
        else:
            tiering = TieringObject(
                sim, backend, fast_fs, tcfg.fast_capacity_bytes,
                promote_after=tcfg.promote_after, name=f"{config.name}.tiering",
            )
        # The hierarchy: RAM buffer (prefetcher) → fast tier → backing FS.
        prefetch_backend = tiering
    prefetcher = ParallelPrefetcher(
        sim,
        prefetch_backend,
        producers=config.producers,
        buffer_capacity=config.buffer_capacity,
        max_producers=config.max_producers,
        lookahead_epochs=config.lookahead_epochs,
        name=f"{config.name}.prefetch",
    )
    optimizations = [prefetcher] if tiering is None else [prefetcher, tiering]
    stage = PrismaStage(sim, backend, optimizations, name=f"{config.name}.stage")
    stage.tiering = tiering
    # Label the stage with its workload features so control.decision
    # telemetry is self-describing performance-model training data; the
    # framework integration adds batch_size when it binds.
    stage.feature_labels["backend_kind"] = (
        config.backend.kind if config.backend is not None else "posix"
    )
    stage.feature_labels["lookahead_epochs"] = config.lookahead_epochs
    controller = Controller(
        sim, period=config.control_period, name=f"{config.name}.controller"
    )
    controller.register(stage, config.policy or PrismaAutotunePolicy())
    controller.start()
    return stage, prefetcher, controller
