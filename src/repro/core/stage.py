"""The PRISMA data-plane stage (paper §III-A).

A stage is the framework-agnostic middleware unit that sits between a DL
framework and the storage backend.  Internally it has the paper's three
modules:

1. **optimization objects** — pluggable I/O logic
   (:class:`~repro.core.optimization.OptimizationObject`); requests are
   offered to each object in order, and fall through to the backend when
   none claims them;
2. a **POSIX-compliant interface** — the stage *is* a
   :class:`~repro.storage.posix.PosixLike`, so any framework that can open
   and read files through that surface runs over PRISMA unmodified;
3. a **control interface** — ``control_snapshot`` / ``control_apply``,
   called by the control plane over a
   :class:`~repro.core.control.rpc.ControlChannel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from ..simcore.event import Event, chain_result
from ..telemetry import CounterSet
from ..storage.posix import BadFileDescriptor, PosixLike
from .optimization import MetricsSnapshot, OptimizationObject, TuningSettings

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator


@dataclass
class _StageOpenFile:
    path: str
    offset: int = 0


class PrismaStage(PosixLike):
    """A data-plane stage: optimization objects behind a POSIX facade."""

    def __init__(
        self,
        sim: "Simulator",
        backend: PosixLike,
        optimizations: Optional[List[OptimizationObject]] = None,
        name: str = "prisma.stage",
        latency_recorder=None,
    ) -> None:
        self.sim = sim
        self.backend = backend
        self.name = name
        self.optimizations: List[OptimizationObject] = list(optimizations or [])
        self._next_fd = 1000  # distinct range from the backend's table
        self._open: Dict[int, _StageOpenFile] = {}
        self.counters = CounterSet()
        #: optional :class:`~repro.telemetry.LatencyRecorder` fed
        #: with per-request service times (the monitoring plane's "I/O rate"
        #: metrics, at distribution granularity)
        self.latency_recorder = latency_recorder
        #: workload feature labels (backend kind, batch size, lookahead …)
        #: merged into every ``control.decision`` instant so exported
        #: telemetry is self-describing performance-model training data;
        #: populated by :func:`~repro.core.build_prisma` and the framework
        #: integrations, extendable by callers
        self.feature_labels: Dict[str, object] = {}

    def add_optimization(self, opt: OptimizationObject) -> None:
        self.optimizations.append(opt)

    # -- epoch coordination ------------------------------------------------------
    def load_epoch(self, paths: Iterable[str]) -> None:
        """Hand the framework's shuffled filenames list to every object."""
        paths = list(paths)
        for opt in self.optimizations:
            opt.on_epoch(paths)

    # -- POSIX facade ------------------------------------------------------------
    def open(self, path: str) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self._open[fd] = _StageOpenFile(path)
        return fd

    def _entry(self, fd: int) -> _StageOpenFile:
        try:
            return self._open[fd]
        except KeyError:
            raise BadFileDescriptor(fd) from None

    def close(self, fd: int) -> None:
        self._entry(fd)
        del self._open[fd]

    def fstat_size(self, fd: int) -> int:
        # Metadata is not intercepted; ask the backend.
        path = self._entry(fd).path
        bfd = self.backend.open(path)
        try:
            return self.backend.fstat_size(bfd)
        finally:
            self.backend.close(bfd)

    def _serve_whole(self, path: str) -> Event:
        """Offer the read to optimization objects, else hit the backend.

        When traced, this is the root span of one consumer read: a fresh
        :class:`~repro.telemetry.TraceContext` is current while the request
        is routed, so every span the optimization objects open synchronously
        (serve, buffer hit/wait) inherits this request's ``trace_id``.
        """
        tel = self.sim.telemetry
        if tel is None:
            return self._route_whole(path)
        ctx = tel.new_context(path)
        root = tel.begin("stage.read", self.name, "stage", ctx=ctx, lane=True, path=path)
        with tel.with_context(ctx):
            event = self._route_whole(path)
        tel.end_on(root, event)
        return event

    def _route_whole(self, path: str) -> Event:
        for opt in self.optimizations:
            event = opt.serve(path)
            if event is not None:
                self.counters.add("optimized_reads")
                return self._timed(event)
        self.counters.add("fallback_reads")
        return self._timed(self.backend.read_whole(path))

    def _timed(self, event: Event) -> Event:
        """Feed per-request service time to the latency recorder, if any."""
        if self.latency_recorder is None:
            return event
        start = self.sim.now
        event.add_callback(
            lambda ev: self.latency_recorder.record(self.sim.now, self.sim.now - start)
            if ev.ok
            else None
        )
        return event

    def pread(self, fd: int, length: int, offset: int) -> Event:
        """Positional read — the call TensorFlow's integration replaces.

        Whole-file reads from offset 0 (the DL sample-load pattern) are
        routed through the optimization objects; partial reads fall through
        to the backend untouched, preserving POSIX semantics for any other
        access pattern.
        """
        entry = self._entry(fd)
        if offset == 0:
            return self._clamped_whole(entry.path, length)
        return self._backend_pread(entry.path, length, offset)

    def read(self, fd: int, length: int) -> Event:
        entry = self._entry(fd)
        done = Event(self.sim, name=f"{self.name}.read")
        if entry.offset == 0:
            inner = self._clamped_whole(entry.path, length)
        else:
            inner = self._backend_pread(entry.path, length, entry.offset)

        def advance(nbytes: int) -> int:
            entry.offset += nbytes
            return nbytes

        return chain_result(inner, done, advance)

    def read_whole(self, path: str) -> Event:
        self.counters.add("reads")
        return self._serve_whole(path)

    # -- helpers ---------------------------------------------------------------
    def _clamped_whole(self, path: str, length: int) -> Event:
        """Whole-file service, clamped to ``length`` for POSIX fidelity."""
        done = Event(self.sim, name=f"{self.name}.pread")
        inner = self._serve_whole(path)
        chain_result(inner, done, lambda nbytes: min(nbytes, length))
        self.counters.add("reads")
        return done

    def _backend_pread(self, path: str, length: int, offset: int) -> Event:
        self.counters.add("fallback_reads")
        bfd = self.backend.open(path)
        done = Event(self.sim, name=f"{self.name}.bpread")
        inner = self.backend.pread(bfd, length, offset)

        # Callbacks run in registration order: close before forwarding.
        inner.add_callback(lambda ev: self.backend.close(bfd))
        return chain_result(inner, done)

    # -- control interface ----------------------------------------------------------
    def control_snapshot(self) -> List[MetricsSnapshot]:
        """Monitoring hook: one snapshot per optimization object."""
        return [opt.snapshot() for opt in self.optimizations]

    def control_apply(self, settings: TuningSettings) -> None:
        """Enforcement hook: push new knob values to every object."""
        for opt in self.optimizations:
            opt.apply_settings(settings)

    def control_features(self) -> Dict[str, object]:
        """Workload feature labels for control-plane telemetry (a copy)."""
        return dict(self.feature_labels)

    def __repr__(self) -> str:
        return f"<PrismaStage {self.name!r} optimizations={len(self.optimizations)}>"
