"""The FIFO filename queue feeding PRISMA's producers.

Paper §IV: *"The order in which files are read is given by an internal FIFO
queue that stores the filenames of dataset samples.  A filenames list,
populated by the DL framework at the beginning of the training phase, is
shared with PRISMA so it knows in advance which files will be requested."*

The queue is a plain synchronous deque (producers poll it between reads; it
is never a blocking rendezvous point), plus the bookkeeping the stage needs:
which paths are covered by prefetching in the current epoch, and how much
work remains.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Set


class FilenameQueue:
    """FIFO of paths to prefetch, reloaded once per epoch."""

    def __init__(self, name: str = "prisma.queue") -> None:
        self.name = name
        self._queue: Deque[str] = deque()
        self._covered: Set[str] = set()
        self.epochs_loaded = 0
        self.total_enqueued = 0

    def load(self, paths: Iterable[str], prestaged: Iterable[str] = ()) -> None:
        """Install a new epoch's shuffled filenames list.

        Loading replaces the *coverage set* (which paths the stage may serve
        from the buffer) while appending to the pending work — leftover
        entries from a previous epoch would indicate a protocol violation,
        so they are rejected loudly rather than silently merged.

        ``prestaged`` names paths a clairvoyant prefetcher already staged
        across the epoch boundary: they stay *covered* (the buffer serves
        them) but are not enqueued again — re-fetching them would violate
        the buffer's staged-exactly-once-per-epoch contract.
        """
        if self._queue:
            raise ValueError(
                f"{self.name}: loading a new epoch with {len(self._queue)} "
                "paths still pending (previous epoch not fully consumed)"
            )
        paths = list(paths)
        seen = set(paths)
        if len(seen) != len(paths):
            raise ValueError(f"{self.name}: duplicate paths in epoch list")
        prestaged = set(prestaged)
        if not prestaged <= seen:
            raise ValueError(
                f"{self.name}: prestaged paths not in the epoch list: "
                f"{sorted(prestaged - seen)[:3]}"
            )
        pending = [p for p in paths if p not in prestaged]
        self._queue.extend(pending)
        self._covered = seen
        self.epochs_loaded += 1
        self.total_enqueued += len(pending)

    def next(self) -> Optional[str]:
        """Pop the next path to prefetch, or None if the epoch is drained."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def requeue(self, path: str) -> None:
        """Return a claimed-but-unserved path to the *front* of the queue.

        Crash recovery: when a producer dies between dequeuing a path and
        staging its sample, the path would otherwise be lost for the epoch
        and the consumer waiting on it would hang.  Front placement keeps
        the consumer's wait bounded (it was next in line before the crash).
        """
        if path not in self._covered:
            raise ValueError(f"{self.name}: requeue of uncovered path {path!r}")
        if path in self._queue:
            raise ValueError(f"{self.name}: {path!r} is already pending")
        self._queue.appendleft(path)

    def covers(self, path: str) -> bool:
        """Whether ``path`` belongs to the current epoch's prefetch list."""
        return path in self._covered

    @property
    def remaining(self) -> int:
        return len(self._queue)

    def pending_paths(self) -> List[str]:
        return list(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:
        return f"<FilenameQueue {self.name!r} remaining={len(self._queue)}>"
