"""The fault injector: drives a :class:`FaultPlan` against live components.

The injector owns no policy — it is the mechanism that turns schedule rows
into state changes on attached components, using the simulation kernel's
own event loop (``Simulator.at``) so faults fire at exact simulated times,
interleaved deterministically with the workload:

* ``device_slowdown``  → :meth:`BlockDevice.degrade_reads` for the window;
* ``read_error_burst`` / ``latency_spike`` → a ``fault_hook`` installed on
  attached filesystems, answering per-read with a
  :class:`~repro.storage.filesystem.ReadFault` (probabilistic errors draw
  from a named RNG stream, so runs replay exactly);
* ``producer_crash``   → :meth:`ParallelPrefetcher.crash_producer`;
* ``rpc_drop`` / ``rpc_delay`` → :meth:`ControlChannel.inject_drops` /
  :meth:`ControlChannel.inject_delay` for the window.

Overlap semantics: concurrent ``rpc_drop`` windows union (drops stay on
until the last window closes); concurrent ``device_slowdown`` and
``rpc_delay`` windows apply the most recently started severity, reverting
to the next surviving window (or health) as each closes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..simcore.random import RandomStreams
from ..telemetry import CounterSet
from ..storage.filesystem import ReadFault, TransientReadError
from .plan import (
    DEVICE_SLOWDOWN,
    LATENCY_SPIKE,
    PRODUCER_CRASH,
    READ_ERROR_BURST,
    RPC_DELAY,
    RPC_DROP,
    WINDOWED_KINDS,
    FaultEvent,
    FaultPlan,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.control.rpc import ControlChannel
    from ..core.prefetcher import ParallelPrefetcher
    from ..simcore.kernel import Simulator
    from ..telemetry import Tracer
    from ..storage.device import BlockDevice


class FaultInjector:
    """Installs :class:`FaultPlan` schedules on attached components.

    Attach targets first (:meth:`attach_device` & friends), then
    :meth:`install` one or more plans.  Counters
    (``faults_injected``, per-kind counts, ``read_errors_injected``)
    feed the fault-sweep report and the chaos tests; pass a
    :class:`~repro.telemetry.Tracer` to get ``fault.begin`` /
    ``fault.end`` rows on the experiment trace.
    """

    def __init__(
        self,
        sim: "Simulator",
        streams: Optional[RandomStreams] = None,
        tracer: Optional["Tracer"] = None,
        name: str = "faults",
    ) -> None:
        self.sim = sim
        self.name = name
        self.tracer = tracer
        self.counters = CounterSet()
        self._rng = (streams or RandomStreams(0)).stream(f"{name}.reads")
        self._devices: List["BlockDevice"] = []
        self._filesystems: List[Any] = []
        self._prefetchers: List["ParallelPrefetcher"] = []
        self._channels: List["ControlChannel"] = []
        #: every installed event, for introspection
        self.installed: List[FaultEvent] = []
        # Read-path windows the fault hook consults per read.
        self._error_events: List[FaultEvent] = []
        self._latency_events: List[FaultEvent] = []
        # Overlap bookkeeping for exclusive knobs.
        self._active_slowdowns: List[FaultEvent] = []
        self._active_delays: List[FaultEvent] = []
        self._drop_windows = 0

    # -- attachment -------------------------------------------------------------
    def attach_device(self, device: "BlockDevice") -> None:
        self._devices.append(device)

    def attach_filesystem(self, fs: Any) -> None:
        """Install this injector's read hook on ``fs``.

        ``fs`` is anything exposing the ``fault_hook`` seam —
        :class:`~repro.storage.filesystem.Filesystem` or
        :class:`~repro.storage.distributed.DistributedFilesystem`.
        """
        if getattr(fs, "fault_hook", None) is not None:
            raise ValueError(f"{self.name}: filesystem already has a fault hook")
        fs.fault_hook = self._read_hook
        self._filesystems.append(fs)

    def attach_prefetcher(self, prefetcher: "ParallelPrefetcher") -> None:
        self._prefetchers.append(prefetcher)

    def attach_channel(self, channel: "ControlChannel") -> None:
        self._channels.append(channel)

    # -- installation -----------------------------------------------------------
    def install(self, plan: FaultPlan) -> None:
        """Schedule every event in ``plan`` on the simulator clock."""
        for ev in plan:
            self.installed.append(ev)
            if ev.kind == READ_ERROR_BURST:
                self._error_events.append(ev)
            elif ev.kind == LATENCY_SPIKE:
                self._latency_events.append(ev)
            self.sim.at(ev.time, self._begin, ev)
            if ev.kind in WINDOWED_KINDS:
                self.sim.at(ev.end, self._end, ev)

    @property
    def faults_injected(self) -> float:
        return self.counters.get("faults_injected")

    # -- event firing -------------------------------------------------------------
    def _trace(self, edge: str, ev: FaultEvent, detail: Optional[Dict[str, Any]] = None) -> None:
        if self.tracer is not None:
            payload = {"kind": ev.kind, "severity": ev.severity, "target": ev.target}
            if detail:
                payload.update(detail)
            self.tracer.record(f"fault.{edge}", payload)

    def _begin(self, ev: FaultEvent) -> None:
        self.counters.add("faults_injected")
        self.counters.add(ev.kind)
        if ev.kind == DEVICE_SLOWDOWN:
            self._active_slowdowns.append(ev)
            for dev in self._devices:
                dev.degrade_reads(ev.severity)
        elif ev.kind == PRODUCER_CRASH:
            kills = 0
            for _ in range(int(round(ev.severity))):
                for pf in self._prefetchers:
                    if pf.crash_producer(cause=f"{self.name}: scheduled crash"):
                        kills += 1
            self.counters.add("producers_crashed", kills)
            self._trace("begin", ev, {"killed": kills})
            return
        elif ev.kind == RPC_DROP:
            self._drop_windows += 1
            for ch in self._channels:
                ch.inject_drops(True)
        elif ev.kind == RPC_DELAY:
            self._active_delays.append(ev)
            for ch in self._channels:
                ch.inject_delay(ev.severity)
        # read_error_burst / latency_spike act purely via the read hook.
        self._trace("begin", ev)

    def _end(self, ev: FaultEvent) -> None:
        if ev.kind == DEVICE_SLOWDOWN:
            self._active_slowdowns.remove(ev)
            factor = self._active_slowdowns[-1].severity if self._active_slowdowns else 1.0
            for dev in self._devices:
                dev.degrade_reads(factor)
        elif ev.kind == RPC_DROP:
            self._drop_windows -= 1
            if self._drop_windows == 0:
                for ch in self._channels:
                    ch.inject_drops(False)
        elif ev.kind == RPC_DELAY:
            self._active_delays.remove(ev)
            extra = self._active_delays[-1].severity if self._active_delays else 0.0
            for ch in self._channels:
                ch.inject_delay(extra)
        self._trace("end", ev)

    # -- read-path hook -----------------------------------------------------------
    def _read_hook(self, path: str, nbytes: int) -> Optional[ReadFault]:
        """Per-read fault decision (installed as a filesystem ``fault_hook``)."""
        now = self.sim.now
        extra = 0.0
        for ev in self._latency_events:
            if ev.active_at(now) and ev.matches(path):
                extra += ev.severity
        error: Optional[Exception] = None
        for ev in self._error_events:
            if ev.active_at(now) and ev.matches(path):
                if float(self._rng.random()) < ev.severity:
                    error = TransientReadError(
                        f"{self.name}: injected read failure for {path!r}"
                    )
                    self.counters.add("read_errors_injected")
                    break
        if extra > 0:
            self.counters.add("latency_spikes_applied")
        if error is None and extra == 0.0:
            return None
        return ReadFault(error=error, extra_latency=extra)
