"""``repro.faults`` — deterministic fault injection and chaos schedules.

Failure is an input, not an accident: a :class:`FaultPlan` declares what
goes wrong and when (device slowdowns, read-error bursts, latency spikes,
producer crashes, control-plane RPC drops and delays), and a
:class:`FaultInjector` replays it against live components through the
simulation kernel.  The same root seed always produces the same failure
scenario, so every chaos-test discovery is a reproducer.

The graceful-degradation counterparts live where the recovery happens:
serve-side retry and producer supervision in
:class:`~repro.core.prefetcher.ParallelPrefetcher`, typed errors and
retry/backoff in :mod:`repro.core.control.rpc`, and the
:class:`~repro.core.control.policy.DegradedModePolicy` control wrapper.
"""

from .injector import FaultInjector
from .plan import (
    DEVICE_SLOWDOWN,
    FAULT_KINDS,
    LATENCY_SPIKE,
    PRODUCER_CRASH,
    READ_ERROR_BURST,
    RPC_DELAY,
    RPC_DROP,
    WINDOWED_KINDS,
    FaultEvent,
    FaultPlan,
)

__all__ = [
    "DEVICE_SLOWDOWN",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "LATENCY_SPIKE",
    "PRODUCER_CRASH",
    "READ_ERROR_BURST",
    "RPC_DELAY",
    "RPC_DROP",
    "WINDOWED_KINDS",
]
