"""``repro.multitenant`` — shared-storage, multi-job scenarios.

Implements the paper's system-wide-visibility motivation (§II) and its
§VII research directions: N tenants over one backend
(:class:`SharedStorageCluster`) under independent vs globally coordinated
control, with fairness and priority policies (:mod:`.fairness`).
"""

from .cluster import ClusterResult, SharedStorageCluster, TenantJob
from .fairness import FairShareGlobalPolicy, PriorityGlobalPolicy

__all__ = [
    "ClusterResult",
    "FairShareGlobalPolicy",
    "PriorityGlobalPolicy",
    "SharedStorageCluster",
    "TenantJob",
]
