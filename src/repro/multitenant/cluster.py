"""Multi-tenant training cluster over shared storage.

The paper's §II argues framework-intrinsic optimizations have *partial
visibility*: concurrent jobs each tune themselves as if alone, thrashing the
shared backend.  §VII proposes coordinated access as future work.  This
package builds that scenario: ``n`` training jobs — each a full stack of
dataset + pipeline + PRISMA stage — over one shared filesystem/device, with
either *independent* per-job controllers (the status quo) or one *global*
controller enforcing a cluster-wide policy (the SDS vision).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from ..cluster import ClusterStore
from ..core import (
    Controller,
    ParallelPrefetcher,
    PrismaAutotunePolicy,
    PrismaStage,
)
from ..core.control import ControlChannel, GlobalPolicy
from ..dataset.catalog import DatasetCatalog
from ..dataset.shuffle import EpochShuffler
from ..frameworks.models import GpuEnsemble, ModelProfile
from ..frameworks.training import Trainer, TrainingConfig, TrainingResult
from ..core.integrations.tf_binding import PrismaTensorFlowPipeline
from ..frameworks.tensorflow.pipeline import tf_baseline
from ..simcore.random import RandomStreams
from ..storage.posix import PosixLike

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator


@dataclass
class TenantJob:
    """One training job in the shared cluster."""

    index: int
    model: ModelProfile
    trainer: Trainer
    stage: Optional[PrismaStage]
    prefetcher: Optional[ParallelPrefetcher]
    result: Optional[TrainingResult] = None
    #: simulated delay before this job launches (job churn scenarios)
    start_delay: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None


@dataclass
class ClusterResult:
    """Outcome of a multi-tenant run."""

    jobs: List[TenantJob] = field(default_factory=list)
    makespan: float = 0.0

    def job_times(self) -> List[float]:
        return [j.result.total_time for j in self.jobs if j.result is not None]

    def mean_job_time(self) -> float:
        times = self.job_times()
        return sum(times) / len(times) if times else 0.0


class SharedStorageCluster:
    """Builds and runs N tenants over one shared filesystem.

    ``coordination`` selects the control architecture:

    * ``"independent"`` — each PRISMA stage has its own controller running
      the standard auto-tune policy blind to the other tenants;
    * ``"global"`` — one controller with every stage registered and a
      :class:`GlobalPolicy` deciding over all of them at once;
    * ``"none"`` — no PRISMA at all (vanilla framework pipelines).
    """

    def __init__(
        self,
        sim: "Simulator",
        shared_posix: PosixLike,
        control_period: float,
        coordination: str = "independent",
        global_policy: Optional[GlobalPolicy] = None,
        max_producers_per_job: int = 8,
        cluster_store: Optional[ClusterStore] = None,
    ) -> None:
        if coordination not in ("independent", "global", "none"):
            raise ValueError(f"unknown coordination mode {coordination!r}")
        if coordination == "global" and global_policy is None:
            raise ValueError("global coordination requires a global_policy")
        self.sim = sim
        self.shared_posix = shared_posix
        self.control_period = control_period
        self.coordination = coordination
        self.max_producers_per_job = max_producers_per_job
        #: optional cooperative cache shared by the tenants: each job's
        #: *training* pipeline mounts one cluster node, so concurrent jobs
        #: scanning the same dataset stop multiplying backing-store reads
        #: (the §VII "access coordination to shared datasets" scenario).
        #: Validation traffic stays on the shared backend — those catalogs
        #: are outside the sharded sample catalog anyway.
        self.cluster_store = cluster_store
        self.jobs: List[TenantJob] = []
        self._controllers: List[Controller] = []
        self._global_controller: Optional[Controller] = None
        if coordination == "global":
            self._global_controller = Controller(
                sim, period=control_period, global_policy=global_policy, name="global.ctl"
            )

    def add_job(
        self,
        catalog: DatasetCatalog,
        val_catalog: DatasetCatalog,
        model: ModelProfile,
        config: TrainingConfig,
        streams: RandomStreams,
        start_delay: float = 0.0,
    ) -> TenantJob:
        """Register one tenant; must be called before :meth:`run`.

        ``start_delay`` defers the job's launch by simulated seconds —
        staggered arrivals are where a global controller visibly
        reallocates I/O resources as the tenant mix changes.
        """
        if start_delay < 0:
            raise ValueError("start_delay must be non-negative")
        index = len(self.jobs)
        tr_sh = EpochShuffler(len(catalog), streams.spawn(f"job{index}.train"))
        va_sh = EpochShuffler(len(val_catalog), streams.spawn(f"job{index}.val"))
        gpus = GpuEnsemble(self.sim, name=f"job{index}.gpu")

        train_posix = (
            self.cluster_store.mount(index % len(self.cluster_store))
            if self.cluster_store is not None
            else self.shared_posix
        )
        stage: Optional[PrismaStage] = None
        prefetcher: Optional[ParallelPrefetcher] = None
        if self.coordination == "none":
            train_src = tf_baseline(
                self.sim, catalog, tr_sh, config.global_batch, train_posix,
                model, name=f"job{index}.train",
            )
        else:
            prefetcher = ParallelPrefetcher(
                self.sim,
                train_posix,
                max_producers=self.max_producers_per_job,
                name=f"job{index}.prefetch",
            )
            stage = PrismaStage(
                self.sim, train_posix, [prefetcher], name=f"job{index}.stage"
            )
            # Either way the stage attaches through the same kernel
            # registration surface, over a per-job named channel (so
            # fault injection and telemetry can single out one tenant).
            channel = ControlChannel(self.sim, name=f"job{index}.ctl.ch")
            if self.coordination == "independent":
                ctl = Controller(
                    self.sim, period=self.control_period, name=f"job{index}.ctl"
                )
                ctl.register(stage, PrismaAutotunePolicy(), channel=channel)
                self._controllers.append(ctl)
            else:
                assert self._global_controller is not None
                self._global_controller.register(stage, channel=channel)
            train_src = PrismaTensorFlowPipeline(
                self.sim, catalog, tr_sh, config.global_batch, stage, model,
                name=f"job{index}.train",
            )
        val_src = tf_baseline(
            self.sim, val_catalog, va_sh, config.global_batch, self.shared_posix,
            model, name=f"job{index}.val",
        )
        trainer = Trainer(
            self.sim, model, gpus, train_src, config, val_src, setup=f"tenant{index}"
        )
        job = TenantJob(index, model, trainer, stage, prefetcher, start_delay=start_delay)
        self.jobs.append(job)
        return job

    def _launch(self, job: TenantJob):
        """Start one tenant after its arrival delay; returns its result."""
        if job.start_delay > 0:
            yield self.sim.timeout(job.start_delay)
        job.started_at = self.sim.now
        result = yield job.trainer.start()
        job.finished_at = self.sim.now
        return result

    def run(self) -> ClusterResult:
        """Start all controllers and tenants; drive to completion."""
        if self.cluster_store is not None:
            self.cluster_store.begin_epoch()
        for ctl in self._controllers:
            ctl.start()
        if self._global_controller is not None:
            self._global_controller.start()
        events = [
            self.sim.process(self._launch(job), name=f"tenant{job.index}.launch")
            for job in self.jobs
        ]
        done = self.sim.all_of(events)
        start = self.sim.now
        self.sim.run(until=done)
        for job, ev in zip(self.jobs, events):
            job.result = ev.value
        for ctl in self._controllers:
            ctl.stop()
        if self._global_controller is not None:
            self._global_controller.stop()
        return ClusterResult(jobs=list(self.jobs), makespan=self.sim.now - start)
