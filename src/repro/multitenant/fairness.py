"""Cluster-wide control policies (the paper's §VII research directions).

These are :class:`~repro.core.control.kernel.GlobalPolicy` implementations —
control logic that *requires* the SDS architecture, because it decides over
every tenant's data plane at once.  They are execution-agnostic: the same
policy objects drive simulated clusters here and real
:class:`~repro.core.live.LivePrefetcher` pools under a
:class:`~repro.core.live.LiveController` (see ``repro live-demo``):

* :class:`FairShareGlobalPolicy` — divides a cluster-wide producer-thread
  budget among tenants; starving tenants receive the shares idle tenants
  don't use.  This is the "performance isolation and resource fairness"
  direction of §VII.
* :class:`PriorityGlobalPolicy` — strict priority tiers: high-priority jobs
  are provisioned first, best-effort jobs share what remains ("prioritize
  workloads", §III).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..core.control.kernel import GlobalPolicy
from ..core.control.monitor import MetricsHistory
from ..core.optimization import TuningSettings


def _demand_estimate(history: MetricsHistory) -> float:
    """A tenant's I/O appetite: recent starvation × activity.

    Starving tenants with real traffic score high; idle or compute-bound
    tenants score ~0 and can safely lend their share.
    """
    latest, prev = history.latest, history.previous
    if latest is None or latest.queue_remaining == 0:
        return 0.0
    starvation = latest.starvation(prev)
    requests = latest.requests - (prev.requests if prev else 0.0)
    if requests <= 0:
        return 0.0
    return max(starvation, 0.01)


@dataclass
class FairShareGlobalPolicy(GlobalPolicy):
    """Max-min fair division of ``total_producer_budget`` across tenants.

    Each active tenant starts from an equal share; shares unused by
    low-demand tenants are redistributed to starving ones, bounded by
    ``per_job_cap``.  Every tenant always keeps at least one producer so no
    job is starved outright.
    """

    total_producer_budget: int = 16
    per_job_cap: int = 8

    def __post_init__(self) -> None:
        if self.total_producer_budget < 1:
            raise ValueError("budget must be >= 1")
        if self.per_job_cap < 1:
            raise ValueError("per_job_cap must be >= 1")

    def decide_all(self, histories: Dict[str, MetricsHistory]) -> Dict[str, TuningSettings]:
        active = {
            name: h for name, h in histories.items() if h.latest is not None
        }
        if not active:
            return {}
        demands = {name: _demand_estimate(h) for name, h in active.items()}
        allocation = self._allocate(demands)
        decisions: Dict[str, TuningSettings] = {}
        for name, target in allocation.items():
            latest = active[name].latest
            assert latest is not None
            if latest.producers_allocated != target and latest.queue_remaining > 0:
                decisions[name] = TuningSettings(producers=target)
        return decisions

    def _allocate(self, demands: Dict[str, float]) -> Dict[str, int]:
        """Water-filling: equal shares, redistribute unneeded capacity."""
        names = list(demands)
        n = len(names)
        base = max(self.total_producer_budget // n, 1)
        allocation = {name: 1 for name in names}
        budget = self.total_producer_budget - n  # the guaranteed minimum
        if budget <= 0:
            return allocation
        # Starving tenants queue for extra shares proportional to demand.
        starving = [name for name in names if demands[name] > 0.05]
        calm = [name for name in names if name not in starving]
        # Calm tenants get up to the equal share only if they show traffic.
        for name in calm:
            extra = min(base - 1, budget) if demands[name] > 0 else 0
            allocation[name] += extra
            budget -= extra
        # Starving tenants round-robin the remainder up to the cap.
        while budget > 0 and starving:
            progressed = False
            for name in starving:
                if budget == 0:
                    break
                if allocation[name] < self.per_job_cap:
                    allocation[name] += 1
                    budget -= 1
                    progressed = True
            if not progressed:
                break
        return allocation


@dataclass
class PriorityGlobalPolicy(GlobalPolicy):
    """Strict two-tier priority: listed tenants are provisioned first."""

    high_priority: Sequence[str] = ()
    total_producer_budget: int = 16
    high_priority_producers: int = 6
    best_effort_cap: int = 2

    def decide_all(self, histories: Dict[str, MetricsHistory]) -> Dict[str, TuningSettings]:
        decisions: Dict[str, TuningSettings] = {}
        budget = self.total_producer_budget
        for name, history in histories.items():
            latest = history.latest
            if latest is None or latest.queue_remaining == 0:
                continue
            if name in self.high_priority:
                target = min(self.high_priority_producers, budget)
            else:
                target = min(self.best_effort_cap, max(budget, 1))
            target = max(target, 1)
            budget = max(budget - target, 0)
            if latest.producers_allocated != target:
                decisions[name] = TuningSettings(producers=target)
        return decisions
