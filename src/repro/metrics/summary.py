"""Run-level statistics: mean/std over repeated seeded runs.

The paper reports "the average and standard deviation of 5 runs" (§V); the
harness mirrors that by re-running each configuration under different root
seeds and aggregating with these helpers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence


@dataclass(frozen=True)
class RunStats:
    """Mean / std / extremes of one measured quantity across runs."""

    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.1f} ± {self.std:.1f} (n={self.n})"


def run_stats(values: Sequence[float]) -> RunStats:
    """Sample statistics (ddof=1 std, matching the paper's error bars)."""
    vals = list(values)
    if not vals:
        raise ValueError("run_stats requires at least one value")
    n = len(vals)
    mean = sum(vals) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in vals) / (n - 1)
        std = math.sqrt(var)
    else:
        std = 0.0
    return RunStats(mean=mean, std=std, minimum=min(vals), maximum=max(vals), n=n)


def reduction_percent(baseline: float, improved: float) -> float:
    """The paper's headline metric: % training-time reduction vs baseline."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (1.0 - improved / baseline) * 100.0


def speedup(baseline: float, improved: float) -> float:
    if improved <= 0:
        raise ValueError("improved time must be positive")
    return baseline / improved


@dataclass(frozen=True)
class Comparison:
    """Measured-vs-paper record for EXPERIMENTS.md."""

    label: str
    paper_value: float
    measured_value: float
    unit: str = "s"

    @property
    def relative_error(self) -> float:
        if self.paper_value == 0:
            return math.inf
        return (self.measured_value - self.paper_value) / self.paper_value

    def row(self) -> str:
        return (
            f"{self.label}: paper={self.paper_value:.0f}{self.unit} "
            f"measured={self.measured_value:.0f}{self.unit} "
            f"({self.relative_error:+.0%})"
        )


def jain_fairness(values: Iterable[float]) -> float:
    """Jain's fairness index over per-tenant allocations (1.0 = equal)."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("fairness of an empty allocation is undefined")
    num = sum(vals) ** 2
    den = len(vals) * sum(v * v for v in vals)
    if den == 0:
        return 1.0
    return num / den


def aggregate_by_key(rows: List[Dict[str, object]], key: str, value: str) -> Dict[object, RunStats]:
    """Group ``rows`` by ``row[key]`` and summarize ``row[value]``."""
    groups: Dict[object, List[float]] = {}
    for row in rows:
        groups.setdefault(row[key], []).append(float(row[value]))  # type: ignore[arg-type]
    return {k: run_stats(v) for k, v in groups.items()}
