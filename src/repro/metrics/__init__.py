"""``repro.metrics`` — measurement post-processing.

Run statistics matching the paper's methodology (:mod:`.summary`) and the
time-weighted CDF machinery behind Figure 3 (:mod:`.cdf`).

The latency-recording classes (``LatencyRecorder``, ``LatencySummary``)
live in :mod:`repro.telemetry`.
"""

from .cdf import DiscreteCDF, cdf_from_histogram, empirical_cdf, thread_usage_ratio
from .timeseries import bin_rate, percentile_table
from .summary import (
    Comparison,
    RunStats,
    aggregate_by_key,
    jain_fairness,
    reduction_percent,
    run_stats,
    speedup,
)

__all__ = [
    "Comparison",
    "DiscreteCDF",
    "RunStats",
    "aggregate_by_key",
    "bin_rate",
    "cdf_from_histogram",
    "empirical_cdf",
    "jain_fairness",
    "percentile_table",
    "reduction_percent",
    "run_stats",
    "speedup",
    "thread_usage_ratio",
]
