"""``repro.metrics`` — measurement post-processing.

Run statistics matching the paper's methodology (:mod:`.summary`) and the
time-weighted CDF machinery behind Figure 3 (:mod:`.cdf`).

The latency-recording classes (``LatencyRecorder``, ``LatencySummary``)
moved to :mod:`repro.telemetry`; importing them from here still works for
one release but emits a :class:`DeprecationWarning`.
"""

import warnings

from .cdf import DiscreteCDF, cdf_from_histogram, empirical_cdf, thread_usage_ratio
from .timeseries import bin_rate, percentile_table
from .summary import (
    Comparison,
    RunStats,
    aggregate_by_key,
    jain_fairness,
    reduction_percent,
    run_stats,
    speedup,
)

_MOVED_TO_TELEMETRY = ("LatencyRecorder", "LatencySummary")


def __getattr__(name):
    if name in _MOVED_TO_TELEMETRY:
        warnings.warn(
            f"repro.metrics.{name} is deprecated; import it from repro.telemetry instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from .. import telemetry

        return getattr(telemetry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Comparison",
    "DiscreteCDF",
    "LatencyRecorder",
    "LatencySummary",
    "RunStats",
    "aggregate_by_key",
    "bin_rate",
    "cdf_from_histogram",
    "empirical_cdf",
    "jain_fairness",
    "percentile_table",
    "reduction_percent",
    "run_stats",
    "speedup",
    "thread_usage_ratio",
]
