"""CDF utilities for the paper's Figure 3.

Figure 3 plots, for TF-optimized and PRISMA, the *cumulative distribution
function of the time percentage spent at each number of concurrently
reading threads*.  The raw input is a :class:`TimeWeightedGauge` histogram
(seconds at each thread count); these helpers normalize, build step CDFs,
and compute the summary statistics the paper quotes (max threads used,
"2–7× more threads").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class DiscreteCDF:
    """A right-continuous step CDF over discrete values."""

    values: Tuple[float, ...]
    cumulative: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.cumulative):
            raise ValueError("values and cumulative must have equal length")
        if list(self.values) != sorted(self.values):
            raise ValueError("values must be sorted ascending")
        if any(b < a - 1e-12 for a, b in zip(self.cumulative, self.cumulative[1:])):
            raise ValueError("cumulative must be non-decreasing")
        if self.cumulative and not (abs(self.cumulative[-1] - 1.0) < 1e-9):
            raise ValueError("cumulative must end at 1.0")

    def at(self, value: float) -> float:
        """P(X <= value)."""
        result = 0.0
        for v, c in zip(self.values, self.cumulative):
            if v <= value:
                result = c
            else:
                break
        return result

    def quantile(self, q: float) -> float:
        """Smallest value with cumulative probability >= q."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must lie in [0, 1]")
        for v, c in zip(self.values, self.cumulative):
            if c >= q - 1e-12:
                return v
        return self.values[-1]

    @property
    def maximum(self) -> float:
        return self.values[-1]

    def points(self) -> List[Tuple[float, float]]:
        return list(zip(self.values, self.cumulative))


def cdf_from_histogram(histogram: Dict[float, float], drop_zero: bool = False) -> DiscreteCDF:
    """Build a time-fraction CDF from a {value: seconds} histogram.

    ``drop_zero`` excludes the zero-thread state — the paper's Figure 3
    measures "time spent by I/O threads actively reading", conditioning on
    the training phase being active.
    """
    items = {float(v): float(t) for v, t in histogram.items() if t > 0}
    if drop_zero:
        items.pop(0.0, None)
    if not items:
        raise ValueError("histogram is empty (after filtering)")
    total = sum(items.values())
    values = sorted(items)
    cum: List[float] = []
    acc = 0.0
    for v in values:
        acc += items[v] / total
        cum.append(acc)
    cum[-1] = 1.0  # kill accumulated float error
    return DiscreteCDF(tuple(values), tuple(cum))


def thread_usage_ratio(a: DiscreteCDF, b: DiscreteCDF, quantiles: Sequence[float] = (0.5, 0.9, 0.99)) -> Dict[float, float]:
    """Per-quantile ratio of thread counts (the paper's "2–7x more").

    Returns {q: a.quantile(q) / b.quantile(q)}; zero denominators map to inf.
    """
    out: Dict[float, float] = {}
    for q in quantiles:
        denom = b.quantile(q)
        out[q] = float("inf") if denom == 0 else a.quantile(q) / denom
    return out


def empirical_cdf(samples: Sequence[float]) -> DiscreteCDF:
    """Standard ECDF over raw samples (each sample weighted equally)."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("samples are empty")
    values, counts = np.unique(arr, return_counts=True)
    cum = np.cumsum(counts) / arr.size
    cum[-1] = 1.0
    return DiscreteCDF(tuple(values.tolist()), tuple(cum.tolist()))
