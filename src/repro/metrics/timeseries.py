"""Time-series utilities: rate binning and percentile tables.

The latency-recording classes (:class:`~repro.telemetry.LatencyRecorder`,
:class:`~repro.telemetry.LatencySummary`) live in the unified
:mod:`repro.telemetry` subsystem; this module keeps only the pure
post-processing helpers (:func:`bin_rate`, :func:`percentile_table`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry import LatencyRecorder


def bin_rate(
    events: Sequence[Tuple[float, float]],
    bin_width: float,
    t_end: float | None = None,
) -> List[Tuple[float, float]]:
    """Aggregate (time, amount) events into per-bin rates.

    Returns ``(bin_start, amount_per_second)`` rows covering ``[0, t_end)``;
    useful for bandwidth-over-time plots from byte-count traces.
    """
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    if not events:
        return []
    end = t_end if t_end is not None else max(t for t, _ in events) + bin_width
    n_bins = max(int(np.ceil(end / bin_width)), 1)
    totals = np.zeros(n_bins)
    for t, amount in events:
        index = int(t / bin_width)
        if 0 <= index < n_bins:
            totals[index] += amount
    return [(i * bin_width, totals[i] / bin_width) for i in range(n_bins)]


def percentile_table(recorders: "Dict[str, LatencyRecorder]") -> str:
    """One-line-per-recorder percentile comparison table."""
    lines = []
    for name, rec in recorders.items():
        lines.append(f"{name}: {rec.summary().row()}")
    return "\n".join(lines)
