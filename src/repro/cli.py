"""Command-line interface: regenerate the paper's figures.

Usage::

    python -m repro figure2 [--quick] [--models lenet alexnet] [--batches 64 256]
    python -m repro figure3 [--quick]
    python -m repro figure4 [--quick] [--workers 0 2 4 8 16]
    python -m repro ablation {autotune,device,period}
    python -m repro faults-demo [--seed N] [--files N]
    python -m repro writes [--quick] [--files N] [--epochs N]
    python -m repro clairvoyant [--files N] [--epochs N] [--lookahead N]
    python -m repro cluster [--quick] [--nodes 128 256 512 1024] [--files N]
    python -m repro predict [--quick] [--samples FILE] [--model-out FILE]
    python -m repro live-demo [--jobs N] [--files N] [--budget N]
    python -m repro trace --experiment figure2 --out trace.json
    python -m repro profile simcore [--top N] [--sort cumulative|tottime|ncalls]
    python -m repro demo

(or the installed ``prisma-repro`` script).

Every experiment command accepts the shared flags ``--seed N``,
``--out FILE`` (results as JSON; ``--json`` is a deprecated spelling),
``--trace FILE`` (Chrome-trace of the run, load in ``chrome://tracing``
or Perfetto), and ``--quiet`` (suppress charts and progress chatter).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional


def _progress(trial) -> None:
    workers = f" w={trial.num_workers}" if trial.num_workers is not None else ""
    print(
        f"  ran {trial.model}/{trial.setup} bs={trial.batch_size}{workers}: "
        f"{trial.paper_equivalent_seconds:.0f}s (paper-equivalent)",
        file=sys.stderr,
        flush=True,
    )


def _note(args, message: str) -> None:
    if not args.quiet:
        print(message, file=sys.stderr)


def _telemetry_for(args):
    """A Telemetry hub when ``--trace`` was given, else ``None``."""
    if not getattr(args, "trace", None):
        return None
    from .telemetry import Telemetry

    return Telemetry()


def _finish_trace(telemetry, args) -> None:
    if telemetry is None:
        return
    from .telemetry import write_chrome_trace

    stats = write_chrome_trace(telemetry, args.trace)
    _note(args, f"wrote {args.trace} ({stats['events']} trace events)")


def _reject_unsupported(args, command: str) -> Optional[int]:
    """Fail fast when a shared flag has no effect on this command."""
    if getattr(args, "trace", None):
        print(f"error: --trace is not supported for {command!r}", file=sys.stderr)
        return 2
    if getattr(args, "seed", 0):
        print(f"error: --seed is not supported for {command!r}", file=sys.stderr)
        return 2
    if getattr(args, "out", None):
        print(f"error: --out is not supported for {command!r}", file=sys.stderr)
        return 2
    return None


def _cmd_figure2(args) -> int:
    from .experiments import figure2_scale, run_figure2
    from .experiments.figure2 import DEFAULT_MODELS
    from .experiments.report import figure2_chart, format_figure2
    from .frameworks.models import get_model

    models = (
        tuple(get_model(m) for m in args.models) if args.models else DEFAULT_MODELS
    )
    batches = tuple(args.batches) if args.batches else (64, 128, 256)
    scale = figure2_scale(quick=args.quick)
    telemetry = _telemetry_for(args)
    result = run_figure2(
        scale=scale,
        models=models,
        batch_sizes=batches,
        progress=_progress if args.verbose and not args.quiet else None,
        base_seed=args.seed,
        telemetry=telemetry,
    )
    _finish_trace(telemetry, args)
    if args.out:
        from .experiments.export import dump_json, figure2_to_dict

        dump_json(figure2_to_dict(result, scale), args.out)
        _note(args, f"wrote {args.out}")
    print(format_figure2(result))
    if not args.quiet:
        chart_batch = batches[-1]
        try:
            print()
            print(figure2_chart(result, batch_size=chart_batch))
        except KeyError:
            pass  # partial grids may not contain the chart batch
    return 0


def _cmd_figure3(args) -> int:
    from .experiments import figure2_scale, run_figure3
    from .experiments.report import figure3_chart, format_figure3

    scale = figure2_scale(quick=args.quick)
    telemetry = _telemetry_for(args)
    result = run_figure3(
        scale=scale,
        progress=_progress if args.verbose and not args.quiet else None,
        base_seed=args.seed,
        telemetry=telemetry,
    )
    _finish_trace(telemetry, args)
    if args.out:
        from .experiments.export import dump_json, figure3_to_dict

        dump_json(figure3_to_dict(result, scale), args.out)
        _note(args, f"wrote {args.out}")
    print(format_figure3(result))
    if not args.quiet:
        print()
        print(figure3_chart(result))
    return 0


def _cmd_figure4(args) -> int:
    from .experiments import figure4_scale, run_figure4
    from .experiments.report import figure4_chart, format_figure4

    workers = tuple(args.workers) if args.workers else (0, 2, 4, 8, 16)
    scale = figure4_scale(quick=args.quick)
    telemetry = _telemetry_for(args)
    result = run_figure4(
        scale=scale,
        worker_counts=workers,
        progress=_progress if args.verbose and not args.quiet else None,
        base_seed=args.seed,
        telemetry=telemetry,
    )
    _finish_trace(telemetry, args)
    if args.out:
        from .experiments.export import dump_json, figure4_to_dict

        dump_json(figure4_to_dict(result, scale), args.out)
        _note(args, f"wrote {args.out}")
    print(format_figure4(result))
    if not args.quiet:
        print()
        print(figure4_chart(result))
    return 0


def _cmd_ablation(args) -> int:
    code = _reject_unsupported(args, "ablation")
    if code is not None:
        return code
    from .experiments.ablation import (
        autotune_point,
        best_static,
        control_period_sensitivity,
        device_sensitivity,
        static_grid,
    )
    from .experiments.report import format_ablation

    if args.which == "autotune":
        auto = autotune_point()
        grid = static_grid()
        print(format_ablation("Auto-tune vs static grid", [auto] + grid, baseline=best_static(grid)))
    elif args.which == "device":
        print(format_ablation("Device sensitivity", device_sensitivity()))
    elif args.which == "period":
        print(format_ablation("Control-period sensitivity", control_period_sensitivity()))
    return 0


def _cmd_distributed(args) -> int:
    code = _reject_unsupported(args, "distributed")
    if code is not None:
        return code
    from .experiments.extensions import format_distributed_sweep, run_distributed_sweep

    nodes = tuple(args.nodes) if args.nodes else (1, 2, 4)
    rows = run_distributed_sweep(node_counts=nodes)
    print(format_distributed_sweep(rows))
    return 0


def _cmd_multitenant(args) -> int:
    code = _reject_unsupported(args, "multitenant")
    if code is not None:
        return code
    from .experiments.extensions import format_multitenant, run_multitenant_comparison

    rows = run_multitenant_comparison(n_jobs=args.jobs)
    print(format_multitenant(rows))
    return 0


def _cmd_latency(args) -> int:
    code = _reject_unsupported(args, "latency")
    if code is not None:
        return code
    from .experiments.extensions import format_latency, run_latency_comparison

    print(format_latency(run_latency_comparison()))
    return 0


def _cmd_faults_demo(args) -> int:
    from .experiments.faults import format_fault_sweep, run_fault_sweep

    telemetry = _telemetry_for(args)
    report = run_fault_sweep(seed=args.seed, n_files=args.files, telemetry=telemetry)
    _finish_trace(telemetry, args)
    if args.out:
        from .experiments.export import dump_json

        dump_json(report.metrics_dict(), args.out)
        _note(args, f"wrote {args.out}")
    print(format_fault_sweep(report))
    return 0 if report.completed else 1


def _cmd_writes(args) -> int:
    from .experiments.writes import run_write_workloads, format_writes

    telemetry = _telemetry_for(args)
    kwargs = dict(seed=args.seed, telemetry=telemetry)
    if args.quick:
        kwargs.update(n_files=320, epochs=1, ckpt_every=4, ckpt_bytes=48_000_000)
    if args.files is not None:
        kwargs["n_files"] = args.files
    if args.epochs is not None:
        kwargs["epochs"] = args.epochs
    report = run_write_workloads(**kwargs)
    _finish_trace(telemetry, args)
    if args.out:
        from .experiments.export import dump_json

        dump_json(report.metrics_dict(), args.out)
        _note(args, f"wrote {args.out}")
    print(format_writes(report))
    return 0


def _cmd_cluster(args) -> int:
    from .experiments.cluster import format_cluster_sweep, run_cluster_sweep

    nodes = tuple(args.nodes) if args.nodes else (128, 256, 512, 1024)
    if args.quick:
        nodes = tuple(args.nodes) if args.nodes else (16, 32, 64)
    files = args.files if args.files is not None else (256 if args.quick else 1024)

    def progress(report) -> None:
        _note(
            args,
            f"  ran n={report.n_nodes}: {report.requests} requests, "
            f"{report.backing_reads} backing reads, "
            f"hit rate {report.cluster_hit_rate:.1%}",
        )

    telemetry = _telemetry_for(args)
    reports = run_cluster_sweep(
        node_counts=nodes,
        seed=args.seed,
        n_files=files,
        epochs=args.epochs,
        telemetry=telemetry,
        progress=progress if not args.quiet else None,
    )
    _finish_trace(telemetry, args)
    if args.out:
        from .experiments.export import dump_json

        dump_json([r.metrics_dict() for r in reports], args.out)
        _note(args, f"wrote {args.out}")
    print(format_cluster_sweep(reports))
    return 0 if all(r.completed for r in reports) else 1


def _cmd_clairvoyant(args) -> int:
    from .experiments.clairvoyant import format_clairvoyant, run_clairvoyant_comparison

    telemetry = _telemetry_for(args)
    report = run_clairvoyant_comparison(
        seed=args.seed,
        n_files=args.files,
        epochs=args.epochs,
        lookahead_epochs=args.lookahead,
        telemetry=telemetry,
    )
    _finish_trace(telemetry, args)
    if args.out:
        from .experiments.export import dump_json

        dump_json(report.metrics_dict(), args.out)
        _note(args, f"wrote {args.out}")
    print(format_clairvoyant(report))
    return 0 if report.reactive.completed and report.clairvoyant.completed else 1


def _cmd_live_demo(args) -> int:
    """Live PRISMA with global coordination: real threads, real files.

    Builds ``--jobs`` prefetcher pools over temporary on-disk datasets and
    registers them all with ONE live controller running a
    :class:`FairShareGlobalPolicy` — the same kernel, policies, and
    telemetry as the simulated control plane, driving actual I/O.  Control
    cycles are stepped deterministically between reads so the printed
    allocation is reproducible.
    """
    if getattr(args, "seed", 0):
        print("error: --seed is not supported for 'live-demo'", file=sys.stderr)
        return 2
    import os
    import tempfile

    from .core.live import LiveController, LivePrefetcher
    from .multitenant.fairness import FairShareGlobalPolicy

    telemetry = _telemetry_for(args)
    policy = FairShareGlobalPolicy(
        total_producer_budget=args.budget, per_job_cap=max(args.budget - 1, 1)
    )
    controller = LiveController(global_policy=policy, telemetry=telemetry)
    prefetchers = [
        LivePrefetcher(producers=1, buffer_capacity=8, max_producers=args.budget,
                       name=f"job{j}.pf")
        for j in range(args.jobs)
    ]
    for pf in prefetchers:
        controller.register(pf)

    with tempfile.TemporaryDirectory(prefix="prisma-live-") as root:
        datasets = []
        for job, pf in enumerate(prefetchers):
            paths = []
            for i in range(args.files):
                path = os.path.join(root, f"job{job}_{i:05d}.bin")
                with open(path, "wb") as fh:
                    fh.write(b"\x5a" * 4096)
                paths.append(path)
            datasets.append(paths)
            pf.load_epoch(paths)
        try:
            # Interleave the tenants' reads, running one control cycle per
            # round — the global policy reallocates the thread budget as
            # every tenant's demand becomes visible.
            for i in range(args.files):
                for pf, paths in zip(prefetchers, datasets):
                    pf.read(paths[i], timeout=30.0)
                if (i + 1) % 4 == 0:
                    controller.run_cycle()
            controller.run_cycle()
        finally:
            for pf in prefetchers:
                pf.close()

    _finish_trace(telemetry, args)
    summary = {
        "jobs": [
            {
                "name": pf.name,
                "files": pf.files_fetched,
                "hit_rate": pf.buffer.hit_rate(),
                "producers": pf.target_producers,
            }
            for pf in prefetchers
        ],
        "control": {
            "cycles": controller.cycles,
            "enforcements": controller.enforcements,
            "rpc_failures": controller.rpc_failures,
        },
    }
    if args.out:
        from .experiments.export import dump_json

        dump_json(summary, args.out)
        _note(args, f"wrote {args.out}")
    print(f"live PRISMA, {args.jobs} tenants under one global controller "
          f"(budget={args.budget} producer threads):")
    for job in summary["jobs"]:
        print(
            f"  {job['name']}: {job['files']} files prefetched, "
            f"hit rate {job['hit_rate']:.0%}, final producers {job['producers']}"
        )
    ctl = summary["control"]
    print(
        f"  control: {ctl['cycles']} cycles, {ctl['enforcements']} enforcements, "
        f"{ctl['rpc_failures']} rpc failures"
    )
    return 0


def _cmd_predict(args) -> int:
    """Predictive vs reactive control head-to-head (sweep → fit → jump)."""
    if getattr(args, "trace", None):
        print("error: --trace is not supported for 'predict'", file=sys.stderr)
        return 2
    from .experiments.predictive import format_predictive, run_predictive_comparison

    kwargs = dict(seed=args.seed)
    if args.quick:
        kwargs.update(n_files=64, epochs=2, sweep_n_files=32)
    if args.files is not None:
        kwargs["n_files"] = args.files
    if args.epochs is not None:
        kwargs["epochs"] = args.epochs
    report = run_predictive_comparison(**kwargs)
    if args.samples:
        from .perfmodel import write_samples_jsonl

        write_samples_jsonl(report.samples, args.samples)
        _note(args, f"wrote {args.samples} ({len(report.samples)} sweep samples)")
    if args.model_out and report.model is not None:
        report.model.save(args.model_out)
        _note(args, f"wrote {args.model_out}")
    if args.out:
        from .experiments.export import dump_json

        dump_json(report.metrics_dict(), args.out)
        _note(args, f"wrote {args.out}")
    print(format_predictive(report))
    ok = all(r.live_parity and not r.fell_back for r in report.results)
    return 0 if ok else 1


def _cmd_trace(args) -> int:
    """One representative traced trial per experiment family."""
    from .telemetry import Telemetry, write_chrome_trace

    out = args.out or "trace.json"
    telemetry = Telemetry()
    if args.experiment in ("figure2", "figure3"):
        from .experiments import figure2_scale
        from .experiments.runner import run_tf_trial
        from .frameworks.models import LENET

        trial = run_tf_trial(
            "tf-prisma", LENET, 256, figure2_scale(quick=True),
            seed=args.seed, telemetry=telemetry,
        )
        headline = (
            f"traced tf-prisma/lenet bs=256: "
            f"{trial.paper_equivalent_seconds:.0f}s (paper-equivalent)"
        )
    elif args.experiment == "figure4":
        from .experiments import figure4_scale
        from .experiments.runner import run_torch_trial
        from .frameworks.models import LENET

        trial = run_torch_trial(
            "torch-prisma", LENET, 256, 2, figure4_scale(quick=True),
            seed=args.seed, telemetry=telemetry,
        )
        headline = (
            f"traced torch-prisma/lenet bs=256 w=2: "
            f"{trial.paper_equivalent_seconds:.0f}s (paper-equivalent)"
        )
    else:  # faults-demo
        from .experiments.faults import run_fault_sweep

        report = run_fault_sweep(seed=args.seed, telemetry=telemetry)
        headline = (
            f"traced fault sweep: served {report.files_served} files, "
            f"{report.serve_failures} failures"
        )
    stats = write_chrome_trace(telemetry, out)
    if not args.quiet:
        print(headline)
        print(
            f"wrote {out}: {stats['events']} trace events "
            f"({stats['unfinished_spans']} unfinished, "
            f"{stats['dropped_events']} dropped)"
        )
    return 0


def _cmd_demo(_args) -> int:
    from . import quick_demo

    print(quick_demo())
    return 0


#: Named profiling workloads: name -> (description, zero-arg callable).
#: Each runs a bounded, deterministic simulation heavy enough for a
#: meaningful cProfile picture (a few hundred thousand kernel events).
def _profile_workloads():
    def simcore():
        from .simcore import Simulator
        from .simcore.workloads import canonical_mixed_workload

        sim = Simulator()
        canonical_mixed_workload(sim, scale=8)
        sim.run()

    def cluster():
        from .experiments.cluster import run_cluster_serving

        run_cluster_serving(n_nodes=64, n_files=512, epochs=2)

    def writes():
        from .experiments.writes import run_write_workloads

        run_write_workloads(n_files=320, epochs=1, ckpt_every=4,
                            ckpt_bytes=48_000_000)

    def clairvoyant():
        from .experiments.clairvoyant import run_clairvoyant_comparison

        run_clairvoyant_comparison(n_files=200, epochs=3, lookahead_epochs=2)

    def figure2():
        from .experiments import figure2_scale
        from .experiments.runner import run_tf_trial
        from .frameworks.models import LENET

        run_tf_trial("tf-prisma", LENET, 256, figure2_scale(quick=True), seed=0)

    def predict():
        from .experiments.predictive import run_predictive_comparison

        run_predictive_comparison(n_files=64, epochs=2, sweep_n_files=32)

    return {
        "simcore": ("canonical mixed kernel workload (scale=8)", simcore),
        "cluster": ("peer-to-peer serving, 64 nodes / 512 files", cluster),
        "writes": ("checkpoint write workloads, 320 files", writes),
        "clairvoyant": ("reactive vs clairvoyant tiering comparison", clairvoyant),
        "figure2": ("one quick-scale tf-prisma trial", figure2),
        "predict": ("predictive-control sweep + head-to-head comparison", predict),
    }


def _cmd_profile(args) -> int:
    """cProfile a named benchmark workload; print the hottest functions."""
    code = _reject_unsupported(args, "profile")
    if code is not None:
        return code
    import cProfile
    import pstats

    description, fn = _profile_workloads()[args.workload]
    _note(args, f"profiling {args.workload!r}: {description}")
    profiler = cProfile.Profile()
    profiler.enable()
    fn()
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


def _shared_flags() -> argparse.ArgumentParser:
    """Parent parser carried by every experiment subcommand."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=0, help="base RNG seed")
    common.add_argument(
        "--out", "--json", dest="out", metavar="FILE",
        help="also write results as JSON (--json is the deprecated spelling)",
    )
    common.add_argument(
        "--trace", metavar="FILE",
        help="write a Chrome-trace (chrome://tracing / Perfetto) of the run",
    )
    common.add_argument(
        "--quiet", action="store_true", help="suppress charts and progress chatter"
    )
    return common


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="prisma-repro",
        description="Reproduce the PRISMA (CLUSTER 2021) evaluation",
    )
    parser.add_argument("-v", "--verbose", action="store_true", help="per-trial progress")
    sub = parser.add_subparsers(dest="command", required=True)
    common = _shared_flags()

    p2 = sub.add_parser(
        "figure2", parents=[common],
        help="TF baseline/optimized/PRISMA training times",
    )
    p2.add_argument("--quick", action="store_true", help="coarser scale, 1 epoch")
    p2.add_argument("--models", nargs="+", choices=["lenet", "alexnet", "resnet50"])
    p2.add_argument("--batches", nargs="+", type=int)
    p2.set_defaults(func=_cmd_figure2)

    p3 = sub.add_parser(
        "figure3", parents=[common], help="concurrent-reader-thread CDFs"
    )
    p3.add_argument("--quick", action="store_true")
    p3.set_defaults(func=_cmd_figure3)

    p4 = sub.add_parser(
        "figure4", parents=[common], help="PyTorch worker sweep vs PRISMA"
    )
    p4.add_argument("--quick", action="store_true")
    p4.add_argument("--workers", nargs="+", type=int)
    p4.set_defaults(func=_cmd_figure4)

    pa = sub.add_parser("ablation", parents=[common], help="design-choice ablations")
    pa.add_argument("which", choices=["autotune", "device", "period"])
    pa.set_defaults(func=_cmd_ablation)

    pdist = sub.add_parser(
        "distributed", parents=[common], help="multi-node training over a shared PFS"
    )
    pdist.add_argument("--nodes", nargs="+", type=int)
    pdist.set_defaults(func=_cmd_distributed)

    pmt = sub.add_parser(
        "multitenant", parents=[common],
        help="N jobs on shared storage, 3 control modes",
    )
    pmt.add_argument("--jobs", type=int, default=3)
    pmt.set_defaults(func=_cmd_multitenant)

    plat = sub.add_parser(
        "latency", parents=[common],
        help="per-read latency distribution, baseline vs PRISMA",
    )
    plat.set_defaults(func=_cmd_latency)

    pf = sub.add_parser(
        "faults-demo", parents=[common], help="PRISMA under an injected fault storm"
    )
    pf.add_argument("--files", type=int, default=600)
    pf.set_defaults(func=_cmd_faults_demo)

    pw = sub.add_parser(
        "writes", parents=[common],
        help="checkpoint write traffic vs the read path, POSIX and object store",
    )
    pw.add_argument("--files", type=int, default=None, help="training files (default 640)")
    pw.add_argument("--epochs", type=int, default=None, help="epochs (default 2)")
    pw.add_argument(
        "--quick", action="store_true", help="smaller matrix for a fast look"
    )
    pw.set_defaults(func=_cmd_writes)

    pcl = sub.add_parser(
        "cluster", parents=[common],
        help="sharded peer-to-peer sample serving, cooperative-cache sweep",
    )
    pcl.add_argument(
        "--nodes", nargs="+", type=int,
        help="cluster sizes to sweep (default 128 256 512 1024)",
    )
    pcl.add_argument(
        "--files", type=int, default=None,
        help="catalog size (default 1024; 256 with --quick)",
    )
    pcl.add_argument("--epochs", type=int, default=2)
    pcl.add_argument(
        "--quick", action="store_true", help="small node counts for a fast look"
    )
    pcl.set_defaults(func=_cmd_cluster)

    pcv = sub.add_parser(
        "clairvoyant", parents=[common],
        help="reactive vs clairvoyant prefetching over the tier hierarchy",
    )
    pcv.add_argument("--files", type=int, default=200)
    pcv.add_argument("--epochs", type=int, default=3)
    pcv.add_argument(
        "--lookahead", type=int, default=2,
        help="epochs of cross-epoch prefetch for the clairvoyant run",
    )
    pcv.set_defaults(func=_cmd_clairvoyant)

    ppr = sub.add_parser(
        "predict", parents=[common],
        help="predictive vs reactive control: sweep, fit, jump to the optimum",
    )
    ppr.add_argument("--files", type=int, default=None, help="comparison files (default 128)")
    ppr.add_argument("--epochs", type=int, default=None, help="comparison epochs (default 3)")
    ppr.add_argument(
        "--quick", action="store_true", help="smaller sweep and workload for a fast look"
    )
    ppr.add_argument(
        "--samples", metavar="FILE",
        help="also write the sweep's training samples as JSONL",
    )
    ppr.add_argument(
        "--model-out", metavar="FILE",
        help="also write the fitted throughput model as JSON",
    )
    ppr.set_defaults(func=_cmd_predict)

    plive = sub.add_parser(
        "live-demo", parents=[common],
        help="live PRISMA: N real prefetcher pools under one global controller",
    )
    plive.add_argument("--files", type=int, default=32, help="files per tenant")
    plive.add_argument("--jobs", type=int, default=2, help="tenant count")
    plive.add_argument(
        "--budget", type=int, default=6, help="cluster-wide producer-thread budget"
    )
    plive.set_defaults(func=_cmd_live_demo)

    pt = sub.add_parser(
        "trace", parents=[common],
        help="run one representative traced trial, write a Chrome-trace",
    )
    pt.add_argument(
        "--experiment",
        choices=["figure2", "figure3", "figure4", "faults-demo"],
        default="figure2",
        help="which experiment family to trace",
    )
    pt.set_defaults(func=_cmd_trace)

    pd = sub.add_parser("demo", help="tiny PRISMA-vs-baseline smoke demo")
    pd.set_defaults(func=_cmd_demo)

    pp = sub.add_parser(
        "profile", parents=[common],
        help="cProfile a named benchmark workload, dump the hottest functions",
    )
    pp.add_argument(
        "workload",
        choices=["simcore", "cluster", "writes", "clairvoyant", "figure2", "predict"],
        help="which canonical workload to profile",
    )
    pp.add_argument(
        "--top", type=int, default=25, metavar="N",
        help="number of functions to print (default 25)",
    )
    pp.add_argument(
        "--sort", choices=["cumulative", "tottime", "ncalls"],
        default="cumulative", help="pstats sort key (default cumulative)",
    )
    pp.set_defaults(func=_cmd_profile)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    start = time.time()
    code = args.func(args)
    if args.verbose and not getattr(args, "quiet", False):
        print(f"[done in {time.time() - start:.1f}s wall]", file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
