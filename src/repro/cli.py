"""Command-line interface: regenerate the paper's figures.

Usage::

    python -m repro figure2 [--quick] [--models lenet alexnet] [--batches 64 256]
    python -m repro figure3 [--quick]
    python -m repro figure4 [--quick] [--workers 0 2 4 8 16]
    python -m repro ablation {autotune,device,period}
    python -m repro faults-demo [--seed N] [--files N]
    python -m repro demo

(or the installed ``prisma-repro`` script).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional


def _progress(trial) -> None:
    workers = f" w={trial.num_workers}" if trial.num_workers is not None else ""
    print(
        f"  ran {trial.model}/{trial.setup} bs={trial.batch_size}{workers}: "
        f"{trial.paper_equivalent_seconds:.0f}s (paper-equivalent)",
        file=sys.stderr,
        flush=True,
    )


def _cmd_figure2(args) -> int:
    from .experiments import figure2_scale, run_figure2
    from .experiments.figure2 import DEFAULT_MODELS
    from .experiments.report import figure2_chart, format_figure2
    from .frameworks.models import get_model

    models = (
        tuple(get_model(m) for m in args.models) if args.models else DEFAULT_MODELS
    )
    batches = tuple(args.batches) if args.batches else (64, 128, 256)
    scale = figure2_scale(quick=args.quick)
    result = run_figure2(
        scale=scale,
        models=models,
        batch_sizes=batches,
        progress=_progress if args.verbose else None,
    )
    if args.json:
        from .experiments.export import dump_json, figure2_to_dict

        dump_json(figure2_to_dict(result, scale), args.json)
        print(f"wrote {args.json}", file=sys.stderr)
    print(format_figure2(result))
    chart_batch = batches[-1]
    try:
        print()
        print(figure2_chart(result, batch_size=chart_batch))
    except KeyError:
        pass  # partial grids may not contain the chart batch
    return 0


def _cmd_figure3(args) -> int:
    from .experiments import figure2_scale, run_figure3
    from .experiments.report import figure3_chart, format_figure3

    scale = figure2_scale(quick=args.quick)
    result = run_figure3(
        scale=scale,
        progress=_progress if args.verbose else None,
    )
    if args.json:
        from .experiments.export import dump_json, figure3_to_dict

        dump_json(figure3_to_dict(result, scale), args.json)
        print(f"wrote {args.json}", file=sys.stderr)
    print(format_figure3(result))
    print()
    print(figure3_chart(result))
    return 0


def _cmd_figure4(args) -> int:
    from .experiments import figure4_scale, run_figure4
    from .experiments.report import figure4_chart, format_figure4

    workers = tuple(args.workers) if args.workers else (0, 2, 4, 8, 16)
    scale = figure4_scale(quick=args.quick)
    result = run_figure4(
        scale=scale,
        worker_counts=workers,
        progress=_progress if args.verbose else None,
    )
    if args.json:
        from .experiments.export import dump_json, figure4_to_dict

        dump_json(figure4_to_dict(result, scale), args.json)
        print(f"wrote {args.json}", file=sys.stderr)
    print(format_figure4(result))
    print()
    print(figure4_chart(result))
    return 0


def _cmd_ablation(args) -> int:
    from .experiments.ablation import (
        autotune_point,
        best_static,
        control_period_sensitivity,
        device_sensitivity,
        static_grid,
    )
    from .experiments.report import format_ablation

    if args.which == "autotune":
        auto = autotune_point()
        grid = static_grid()
        print(format_ablation("Auto-tune vs static grid", [auto] + grid, baseline=best_static(grid)))
    elif args.which == "device":
        print(format_ablation("Device sensitivity", device_sensitivity()))
    elif args.which == "period":
        print(format_ablation("Control-period sensitivity", control_period_sensitivity()))
    return 0


def _cmd_distributed(args) -> int:
    from .experiments.extensions import format_distributed_sweep, run_distributed_sweep

    nodes = tuple(args.nodes) if args.nodes else (1, 2, 4)
    rows = run_distributed_sweep(node_counts=nodes)
    print(format_distributed_sweep(rows))
    return 0


def _cmd_multitenant(args) -> int:
    from .experiments.extensions import format_multitenant, run_multitenant_comparison

    rows = run_multitenant_comparison(n_jobs=args.jobs)
    print(format_multitenant(rows))
    return 0


def _cmd_latency(_args) -> int:
    from .experiments.extensions import format_latency, run_latency_comparison

    print(format_latency(run_latency_comparison()))
    return 0


def _cmd_faults_demo(args) -> int:
    from .experiments.faults import format_fault_sweep, run_fault_sweep

    report = run_fault_sweep(seed=args.seed, n_files=args.files)
    if args.json:
        from .experiments.export import dump_json

        dump_json(report.metrics_dict(), args.json)
        print(f"wrote {args.json}", file=sys.stderr)
    print(format_fault_sweep(report))
    return 0 if report.completed else 1


def _cmd_demo(_args) -> int:
    from . import quick_demo

    print(quick_demo())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="prisma-repro",
        description="Reproduce the PRISMA (CLUSTER 2021) evaluation",
    )
    parser.add_argument("-v", "--verbose", action="store_true", help="per-trial progress")
    sub = parser.add_subparsers(dest="command", required=True)

    p2 = sub.add_parser("figure2", help="TF baseline/optimized/PRISMA training times")
    p2.add_argument("--json", metavar="FILE", help="also write results as JSON")
    p2.add_argument("--quick", action="store_true", help="coarser scale, 1 epoch")
    p2.add_argument("--models", nargs="+", choices=["lenet", "alexnet", "resnet50"])
    p2.add_argument("--batches", nargs="+", type=int)
    p2.set_defaults(func=_cmd_figure2)

    p3 = sub.add_parser("figure3", help="concurrent-reader-thread CDFs")
    p3.add_argument("--json", metavar="FILE", help="also write results as JSON")
    p3.add_argument("--quick", action="store_true")
    p3.set_defaults(func=_cmd_figure3)

    p4 = sub.add_parser("figure4", help="PyTorch worker sweep vs PRISMA")
    p4.add_argument("--json", metavar="FILE", help="also write results as JSON")
    p4.add_argument("--quick", action="store_true")
    p4.add_argument("--workers", nargs="+", type=int)
    p4.set_defaults(func=_cmd_figure4)

    pa = sub.add_parser("ablation", help="design-choice ablations")
    pa.add_argument("which", choices=["autotune", "device", "period"])
    pa.set_defaults(func=_cmd_ablation)

    pdist = sub.add_parser("distributed", help="multi-node training over a shared PFS")
    pdist.add_argument("--nodes", nargs="+", type=int)
    pdist.set_defaults(func=_cmd_distributed)

    pmt = sub.add_parser("multitenant", help="N jobs on shared storage, 3 control modes")
    pmt.add_argument("--jobs", type=int, default=3)
    pmt.set_defaults(func=_cmd_multitenant)

    plat = sub.add_parser("latency", help="per-read latency distribution, baseline vs PRISMA")
    plat.set_defaults(func=_cmd_latency)

    pf = sub.add_parser("faults-demo", help="PRISMA under an injected fault storm")
    pf.add_argument("--json", metavar="FILE", help="also write the metrics as JSON")
    pf.add_argument("--seed", type=int, default=0)
    pf.add_argument("--files", type=int, default=600)
    pf.set_defaults(func=_cmd_faults_demo)

    pd = sub.add_parser("demo", help="tiny PRISMA-vs-baseline smoke demo")
    pd.set_defaults(func=_cmd_demo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    start = time.time()
    code = args.func(args)
    if args.verbose:
        print(f"[done in {time.time() - start:.1f}s wall]", file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
