"""PRISMA reproduction — storage optimization decoupling for DL frameworks.

A full reimplementation of the system from *"The Case for Storage
Optimization Decoupling in Deep Learning Frameworks"* (CLUSTER 2021):
a Software-Defined Storage middleware whose **data plane** provides
self-contained I/O optimizations (parallel prefetching into a bounded
in-memory buffer behind a POSIX facade) and whose **control plane** runs a
feedback auto-tuner over the number of producer threads *t* and buffer
capacity *N* — portable across TensorFlow- and PyTorch-style data loaders.

Layers (bottom-up):

* :mod:`repro.simcore` — discrete-event simulation kernel;
* :mod:`repro.storage` — devices, filesystems, POSIX, distributed PFS;
* :mod:`repro.dataset` — catalogs, synthetic ImageNet, epoch shuffling;
* :mod:`repro.frameworks` — TF/PyTorch input-pipeline + GPU simulators;
* :mod:`repro.core` — **PRISMA** (the paper's contribution) + integrations;
* :mod:`repro.core.live` — a real-threads PRISMA usable on actual files;
* :mod:`repro.perfmodel` — the learned (t, N) → throughput model behind
  :class:`~repro.core.control.policy.PredictivePolicy`;
* :mod:`repro.multitenant` — shared-storage multi-job coordination;
* :mod:`repro.cluster` — sharded peer-to-peer sample serving with a
  cluster-wide cooperative cache;
* :mod:`repro.faults` — deterministic fault injection & chaos schedules;
* :mod:`repro.experiments` — the harness regenerating every paper figure.

Quickstart::

    from repro import quick_demo
    print(quick_demo())
"""

from .cluster import ClusterConfig, ClusterMount, ClusterNode, ClusterStore, ShardMap
from .core import (
    ClairvoyantTieringObject,
    Controller,
    DegradedModePolicy,
    LookaheadSchedule,
    ParallelPrefetcher,
    PredictivePolicy,
    PrismaAutotunePolicy,
    PrismaConfig,
    PrismaStage,
    StaticPolicy,
    TieringConfig,
    TieringObject,
    build_prisma,
)
from .faults import FaultEvent, FaultInjector, FaultPlan
from .simcore import RandomStreams, Simulator

__version__ = "1.0.0"

__all__ = [
    "ClairvoyantTieringObject",
    "ClusterConfig",
    "ClusterMount",
    "ClusterNode",
    "ClusterStore",
    "Controller",
    "DegradedModePolicy",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "LookaheadSchedule",
    "ParallelPrefetcher",
    "PredictivePolicy",
    "PrismaAutotunePolicy",
    "PrismaConfig",
    "PrismaStage",
    "RandomStreams",
    "ShardMap",
    "Simulator",
    "StaticPolicy",
    "TieringConfig",
    "TieringObject",
    "__version__",
    "build_prisma",
    "quick_demo",
]


def quick_demo() -> str:
    """Run a tiny PRISMA-vs-baseline comparison; returns a summary string.

    Uses a CI-sized dataset so it completes in well under a second — see
    ``examples/quickstart.py`` for the narrated version.
    """
    from .core.integrations import PrismaTensorFlowPipeline
    from .dataset.shuffle import EpochShuffler
    from .dataset.synthetic import tiny_dataset
    from .frameworks.models import LENET, GpuEnsemble
    from .frameworks.tensorflow.pipeline import tf_baseline
    from .frameworks.training import Trainer, TrainingConfig
    from .storage.backend import BackendConfig, build_backend
    from .storage.posix import PosixLayer

    def run(prisma: bool) -> float:
        streams = RandomStreams(0)
        sim = Simulator()
        fs = build_backend(sim, BackendConfig(device_profile="intel-p4600"))
        split = tiny_dataset(streams, n_train=512, n_val=64)
        split.materialize(fs)
        posix = PosixLayer(sim, fs)
        shuffler = EpochShuffler(len(split.train), streams.spawn("t"))
        val_sh = EpochShuffler(len(split.validation), streams.spawn("v"))
        if prisma:
            stage, _, controller = build_prisma(
                sim, posix, PrismaConfig(control_period=0.01)
            )
            train = PrismaTensorFlowPipeline(sim, split.train, shuffler, 32, stage, LENET)
        else:
            controller = None
            train = tf_baseline(sim, split.train, shuffler, 32, posix, LENET)
        val = tf_baseline(sim, split.validation, val_sh, 32, posix, LENET, name="val")
        trainer = Trainer(
            sim, LENET, GpuEnsemble(sim), train,
            TrainingConfig(epochs=2, global_batch=32), val,
            setup="prisma" if prisma else "baseline",
        )
        result = trainer.run_to_completion()
        if controller is not None:
            controller.stop()
        return result.total_time

    baseline = run(prisma=False)
    prisma = run(prisma=True)
    return (
        f"baseline={baseline:.3f}s prisma={prisma:.3f}s "
        f"reduction={100 * (1 - prisma / baseline):.0f}%"
    )
