"""One storage node of the peer-to-peer serving cluster.

A :class:`ClusterNode` is the unit the cooperative cache is built from: it
owns one shard of the catalog (per the cluster's
:class:`~repro.cluster.shard.ShardMap`), keeps that shard hot in a local
fast tier (a :class:`~repro.core.tiering.TieringObject` over a node-local
filesystem), and answers two kinds of traffic:

* **local reads** — its own trainer asking for any sample.  Owned samples
  read through the tier (first touch fetches from the backing store once,
  coalesced); non-owned samples are requested from the owning peer over the
  RPC channel layer, falling back to the backing store only when the peer
  is unreachable past the retry budget.
* **peer serves** — other nodes asking for samples *this* node owns,
  served from the same tier through the same coalesced read-through path,
  so a sample is fetched from the backing store at most once no matter how
  many peers race for it.

:class:`ClusterMount` wraps a node in the
:class:`~repro.storage.posix.PosixLike` interface so unmodified pipelines
(prefetchers, PRISMA stages, framework simulators) mount the cluster the
same way they mount a local filesystem — the paper's portability claim
extended across nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from ..core.control.rpc import ControlChannel, RetryPolicy, RpcError
from ..core.tiering import TieringObject
from ..simcore.event import Event, chain_result
from ..storage.filesystem import Filesystem
from ..storage.posix import BadFileDescriptor, PosixLike
from ..telemetry import CounterSet
from .shard import ShardMap, UnknownSample

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator
    from .store import ClusterStore


class ClusterNode:
    """One node: a tier over its shard, a service channel, and a client path."""

    def __init__(
        self,
        sim: "Simulator",
        index: int,
        store: "ClusterStore",
        fast_fs: Filesystem,
        tier_capacity_bytes: int,
        channel: ControlChannel,
        retry_policy: RetryPolicy,
        rpc_timeout: Optional[float],
        cache_remote_reads: bool = False,
        name: str = "cluster.n0",
    ) -> None:
        self.sim = sim
        self.index = index
        self.store = store
        self.channel = channel
        self.retry_policy = retry_policy
        self.rpc_timeout = rpc_timeout
        self.cache_remote_reads = cache_remote_reads
        self.name = name
        self.counters = CounterSet()
        # The tier's fill path is routed through this node (owned samples
        # come from the backing store, remote ones from the owning peer) —
        # the "peer tier as a promotion source" seam in core/tiering.
        self.tier = TieringObject(
            sim,
            backend=store.backing_reader,
            fast_fs=fast_fs,
            fast_capacity_bytes=tier_capacity_bytes,
            promote_after=1,
            name=f"{name}.tier",
            promotion_source=self._tier_source,
        )

    # -- client path ------------------------------------------------------------
    @property
    def shard_map(self) -> ShardMap:
        return self.store.shard_map

    def read(self, path: str) -> Event:
        """Serve one sample request from the cooperative cache.

        Owned samples read through the local tier; non-owned samples are
        admitted to it only when ``cache_remote_reads`` is on (a requester
        must not displace its own shard by default — evicting owned samples
        would force peers back to the backing store).
        """
        self.counters.add("reads")
        owner = self.shard_map.owner_of(path)
        if owner == self.index:
            self.counters.add("local_requests")
            admit = True
        else:
            self.counters.add("remote_requests")
            admit = self.cache_remote_reads
        return self.tier.fetch_through(path, admit=admit)

    def _tier_source(self, path: str) -> Event:
        """Where the tier's read-through fetches get their bytes."""
        owner = self.shard_map.owner_of(path)
        if owner == self.index:
            return self.store.backing_read(path)
        return self._peer_fetch(path, owner)

    def _peer_fetch(self, path: str, owner: int) -> Event:
        """Request ``path`` from its owner; fall back to the backing store.

        The peer exchange rides :meth:`ControlChannel.request_with_retry`
        (transport losses and timeouts retried under the node's
        :class:`RetryPolicy`); once retries are exhausted — or the peer
        fails fatally — the sample is read from the backing store instead,
        trading the cooperative invariant for availability.
        """
        peer = self.store.nodes[owner]
        done = Event(self.sim, name=f"{self.name}.peer:{path}")

        def fetch():
            tel = self.sim.telemetry
            span = None
            if tel is not None:
                span = tel.begin(
                    "cluster.remote_read", f"cluster.{self.name}", "cluster",
                    lane=True, path=path, owner=owner,
                )
            try:
                nbytes = yield peer.channel.request_with_retry(
                    peer.serve, path,
                    policy=self.retry_policy, timeout=self.rpc_timeout,
                )
            except RpcError:
                self.counters.add("peer_misses")
                self.counters.add("fallback_reads")
                if tel is not None:
                    tel.registry.counter(
                        "cluster.peer_misses_total", object=self.name
                    ).inc()
                try:
                    nbytes = yield self.store.backing_read(path)
                except BaseException as exc:
                    if span is not None:
                        tel.end(span, outcome="error", error=type(exc).__name__)
                    raise
                if span is not None:
                    tel.end(span, outcome="fallback")
                return nbytes
            self.counters.add("peer_hits")
            if tel is not None:
                tel.registry.counter(
                    "cluster.peer_hits_total", object=self.name
                ).inc()
                tel.end(span, outcome="peer")
            return nbytes

        proc = self.sim.process(fetch(), name=f"{self.name}.peer_fetch")
        return chain_result(proc, done)

    # -- service path -----------------------------------------------------------
    def serve(self, path: str) -> Event:
        """Far-side RPC handler: serve an owned sample from the tier.

        Called (over this node's channel) by peers; the read-through tier
        coalesces concurrent serves of the same cold sample onto one
        backing fetch, which is what keeps retried at-most-once requests
        from double-reading the backing store.
        """
        if self.shard_map.owner_of(path) != self.index:
            raise UnknownSample(f"{self.name} does not own {path!r}")
        self.counters.add("peer_serves")
        return self.tier.fetch_through(path)

    # -- observability -----------------------------------------------------------
    @property
    def resident_files(self) -> int:
        return self.tier.resident_files

    @property
    def resident_bytes(self) -> int:
        return self.tier.resident_bytes

    def __repr__(self) -> str:
        return (
            f"<ClusterNode {self.name!r} shard={len(self.shard_map.shard(self.index))} "
            f"resident={self.resident_files}>"
        )


@dataclass
class _OpenFile:
    path: str
    offset: int = 0


class ClusterMount(PosixLike):
    """POSIX facade over one node's view of the cluster store.

    Whole-file reads of cataloged samples (the DL sample-load pattern) go
    through the cooperative cache; partial reads and paths outside the
    catalog (validation sets, checkpoints) fall through to the backing
    store untouched — the same covered/uncovered split a PRISMA stage
    applies to its optimization objects.
    """

    def __init__(self, node: ClusterNode) -> None:
        self.node = node
        self.sim = node.sim
        self._next_fd = 3
        self._open: Dict[int, _OpenFile] = {}

    # -- descriptor management ---------------------------------------------------
    def open(self, path: str) -> int:
        self.node.store.backing.stat(path)  # raises FileNotFound
        fd = self._next_fd
        self._next_fd += 1
        self._open[fd] = _OpenFile(path)
        return fd

    def _entry(self, fd: int) -> _OpenFile:
        try:
            return self._open[fd]
        except KeyError:
            raise BadFileDescriptor(fd) from None

    def close(self, fd: int) -> None:
        self._entry(fd)
        del self._open[fd]

    def fstat_size(self, fd: int) -> int:
        return self.node.store.backing.stat(self._entry(fd).path).size

    # -- data path ----------------------------------------------------------------
    def _whole(self, path: str) -> Event:
        if self.node.shard_map.covers(path):
            return self.node.read(path)
        return self.node.store.backing.read_whole(path)

    def pread(self, fd: int, length: int, offset: int) -> Event:
        entry = self._entry(fd)
        if offset == 0 and self.node.shard_map.covers(entry.path):
            done = Event(self.sim, name=f"{self.node.name}.pread")
            return chain_result(
                self.node.read(entry.path), done, lambda nbytes: min(nbytes, length)
            )
        return self.node.store.backing.read(entry.path, offset, length)

    def read(self, fd: int, length: int) -> Event:
        entry = self._entry(fd)
        done = Event(self.sim, name=f"{self.node.name}.read")
        inner = self.pread(fd, length, entry.offset)

        def advance(nbytes: int) -> int:
            entry.offset += nbytes
            return nbytes

        return chain_result(inner, done, advance)

    def read_whole(self, path: str) -> Event:
        """Whole-sample read through the cooperative cache (prefetcher API)."""
        return self._whole(path)
