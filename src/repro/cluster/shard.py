"""Stable-hash partitioning of a sample catalog across cluster nodes.

FanStore's core idea (PAPERS.md: Zhang et al.): shard the dataset across
the *compute* nodes so the cluster's aggregate fast storage — not the
shared backing store — absorbs the epoch's read traffic.  Node ``k`` owns
the samples whose path hashes to ``k``; every node can compute any sample's
owner locally, with no metadata service in the loop.

The placement function is the same convention as
:meth:`~repro.storage.distributed.DistributedFilesystem._place` (a blake2s
digest of the path modulo the node count), so the shard map is:

* **deterministic** — a pure function of ``(path, n_nodes, salt)``; any
  two nodes (or two runs) agree without communication;
* **total** — every catalog path has exactly one owner;
* **balanced** — hash placement keeps the max/min shard-size ratio bounded
  for catalogs meaningfully larger than the node count (the property suite
  draws node counts and checks the bound).

``salt`` perturbs placement (it is mixed into the digest as the blake2s
key) so tests and rebalancing experiments can draw *different* maps over
the same catalog while each stays individually deterministic.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Iterator, List, Tuple

from ..storage.filesystem import StorageError


class UnknownSample(StorageError):
    """A path outside the catalog was asked for by owner lookup."""


class ShardMap:
    """Immutable path → owning-node assignment over a fixed catalog."""

    def __init__(self, paths: Iterable[str], n_nodes: int, salt: int = 0) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if salt < 0:
            raise ValueError("salt must be non-negative")
        self.n_nodes = n_nodes
        self.salt = salt
        self._key = salt.to_bytes(8, "little") if salt else b""
        self._owners: Dict[str, int] = {}
        shards: List[List[str]] = [[] for _ in range(n_nodes)]
        for path in paths:
            if path in self._owners:
                raise ValueError(f"duplicate catalog path {path!r}")
            owner = self.place(path)
            self._owners[path] = owner
            shards[owner].append(path)
        self._shards: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(shard) for shard in shards
        )

    # -- placement ----------------------------------------------------------------
    def place(self, path: str) -> int:
        """The pure hash placement for *any* path (cataloged or not)."""
        digest = hashlib.blake2s(
            path.encode(), digest_size=4, key=self._key
        ).digest()
        return int.from_bytes(digest, "little") % self.n_nodes

    def owner_of(self, path: str) -> int:
        """The owning node of a cataloged path; :class:`UnknownSample` else."""
        try:
            return self._owners[path]
        except KeyError:
            raise UnknownSample(path) from None

    def covers(self, path: str) -> bool:
        return path in self._owners

    __contains__ = covers

    # -- views --------------------------------------------------------------------
    def shard(self, node: int) -> Tuple[str, ...]:
        """The paths node ``node`` owns, in catalog order."""
        return self._shards[node]

    def shard_sizes(self) -> List[int]:
        return [len(shard) for shard in self._shards]

    def assignments(self) -> Iterator[Tuple[str, int]]:
        return iter(self._owners.items())

    def __len__(self) -> int:
        return len(self._owners)

    # -- balance ------------------------------------------------------------------
    def imbalance(self) -> float:
        """max/mean shard-size ratio (1.0 = perfectly even)."""
        sizes = self.shard_sizes()
        mean = sum(sizes) / len(sizes)
        return max(sizes) / mean if mean > 0 else 1.0

    def spread(self) -> float:
        """max/min shard-size ratio; ``inf`` when some node owns nothing."""
        sizes = self.shard_sizes()
        largest, smallest = max(sizes), min(sizes)
        if smallest == 0:
            return float("inf") if largest > 0 else 1.0
        return largest / smallest

    def __repr__(self) -> str:
        return (
            f"<ShardMap {len(self._owners)} paths over {self.n_nodes} nodes "
            f"imbalance={self.imbalance():.2f}>"
        )
