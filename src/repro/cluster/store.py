"""The cluster store: N peer nodes cooperating over one backing store.

This is the deployment the FanStore line of work argues for (PAPERS.md:
Zhang et al.) recast as a PRISMA storage optimization: the catalog is
sharded across the compute nodes (:class:`~repro.cluster.shard.ShardMap`),
each node keeps its shard hot in a node-local fast tier, and non-owners
fetch over the RPC layer instead of hammering the shared parallel
filesystem.  The cooperative-cache invariant — **each sample hits the
backing store at most once per epoch cluster-wide** — falls out of three
mechanisms, none cluster-specific:

* deterministic hash placement (every node agrees on owners locally);
* read-through tiers with in-flight coalescing (a cold sample is fetched
  from the backing store exactly once no matter how many peers race);
* typed RPC failures with backing-store fallback (faults degrade the
  invariant gracefully instead of hanging the epoch).

:class:`ClusterStore` wires those together and keeps the aggregate
accounting (cluster-wide hit rate, per-epoch backing-read ledger) the
experiments and the CI regression gate read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

from ..core.control.rpc import REMOTE_LATENCY, ControlChannel, RetryPolicy
from ..simcore.event import Event
from ..storage.device import PROFILES, BlockDevice
from ..storage.filesystem import Filesystem
from ..telemetry import CounterSet
from .node import ClusterMount, ClusterNode
from .shard import ShardMap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator
    from ..storage.backend import StorageBackend


@dataclass(frozen=True)
class ClusterConfig:
    """Validated knobs for one :class:`ClusterStore`.

    ``tier_capacity_bytes`` is **per node**; size it to hold one shard
    (``total_bytes / n_nodes`` plus slack) or the cooperative invariant
    degrades to whatever the eviction policy salvages.  ``rpc_timeout``
    bounds one peer exchange *including* the far-side tier read; the
    retry policy then governs how long a node nurses a struggling peer
    before falling back to the backing store.
    """

    n_nodes: int
    tier_capacity_bytes: int
    fast_profile: str = "ramdisk"
    rpc_latency: float = REMOTE_LATENCY
    rpc_timeout: Optional[float] = 50e-3
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    cache_remote_reads: bool = False
    salt: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.tier_capacity_bytes <= 0:
            raise ValueError("tier_capacity_bytes must be positive")
        if self.fast_profile not in PROFILES:
            raise ValueError(
                f"unknown fast_profile {self.fast_profile!r}; "
                f"choose one of {sorted(PROFILES)}"
            )
        if self.rpc_latency < 0:
            raise ValueError("rpc_latency must be non-negative")
        if self.rpc_timeout is not None and self.rpc_timeout <= 0:
            raise ValueError("rpc_timeout must be positive (or None)")
        if self.salt < 0:
            raise ValueError("salt must be non-negative")


class _BackingReader:
    """Adapter giving the tier layer its ``read_whole`` backend protocol.

    Every byte that leaves the backing store for a tier fill flows through
    :meth:`ClusterStore.backing_read`, so the store's ledger cannot be
    bypassed by a policy that reads the backend directly.
    """

    def __init__(self, store: "ClusterStore") -> None:
        self._store = store

    def read_whole(self, path: str) -> Event:
        return self._store.backing_read(path)


class ClusterStore:
    """N sharded peer nodes over one shared backing filesystem."""

    def __init__(
        self,
        sim: "Simulator",
        backing: "StorageBackend",
        paths: Iterable[str],
        config: ClusterConfig,
        name: str = "cluster",
    ) -> None:
        self.sim = sim
        self.backing: "StorageBackend" = backing
        self.config = config
        self.name = name
        self.shard_map = ShardMap(paths, config.n_nodes, salt=config.salt)
        self.counters = CounterSet()
        self.backing_reader = _BackingReader(self)
        #: per-epoch ledger of backing-store reads issued through the
        #: cluster (path -> count); the invariant check reads off this.
        self._epoch_backing: Dict[str, int] = {}
        profile_fn = PROFILES[config.fast_profile]
        self.nodes: List[ClusterNode] = []
        for i in range(config.n_nodes):
            fast_dev = BlockDevice(sim, profile_fn(), name=f"{name}.n{i}.fastdev")
            fast_fs = Filesystem(sim, fast_dev, name=f"{name}.n{i}.fast")
            channel = ControlChannel(
                sim, latency=config.rpc_latency, name=f"{name}.n{i}.ch"
            )
            self.nodes.append(
                ClusterNode(
                    sim,
                    index=i,
                    store=self,
                    fast_fs=fast_fs,
                    tier_capacity_bytes=config.tier_capacity_bytes,
                    channel=channel,
                    retry_policy=config.retry,
                    rpc_timeout=config.rpc_timeout,
                    cache_remote_reads=config.cache_remote_reads,
                    name=f"{name}.n{i}",
                )
            )

    # -- topology ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, index: int) -> ClusterNode:
        return self.nodes[index]

    def mount(self, index: int) -> ClusterMount:
        """A :class:`~repro.storage.posix.PosixLike` view from node ``index``."""
        return ClusterMount(self.nodes[index])

    def channels(self) -> List[ControlChannel]:
        """Every node's service channel (the fault injector's attach points)."""
        return [node.channel for node in self.nodes]

    # -- backing-store funnel --------------------------------------------------------
    def backing_read(self, path: str) -> Event:
        """The one road to the backing store; every read is ledgered."""
        self.counters.add("backing_reads")
        self._epoch_backing[path] = self._epoch_backing.get(path, 0) + 1
        tel = self.sim.telemetry
        if tel is not None:
            tel.registry.counter(
                "cluster.backing_reads_total", object=self.name
            ).inc()
        return self.backing.read_whole(path)

    # -- epoch accounting -------------------------------------------------------------
    def begin_epoch(self) -> None:
        """Reset the per-epoch ledgers (call at each epoch boundary)."""
        self._epoch_backing.clear()
        if hasattr(self.backing, "begin_epoch"):
            self.backing.begin_epoch()

    @property
    def epoch_backing_reads(self) -> int:
        """Backing-store reads issued through the cluster this epoch."""
        return sum(self._epoch_backing.values())

    @property
    def epoch_unique_backing_reads(self) -> int:
        return len(self._epoch_backing)

    def max_epoch_reads_per_path(self) -> int:
        """Worst per-sample redundancy this epoch (1 = perfectly cooperative)."""
        return max(self._epoch_backing.values(), default=0)

    def epoch_redundancy(self) -> float:
        """Mean backing reads per *touched* sample this epoch (>= 1.0)."""
        unique = len(self._epoch_backing)
        return self.epoch_backing_reads / unique if unique else 0.0

    # -- aggregate accounting ----------------------------------------------------------
    def totals(self) -> Dict[str, int]:
        """Cluster-wide counter sums (node counters + the backing funnel)."""
        keys = (
            "reads",
            "local_requests",
            "remote_requests",
            "peer_hits",
            "peer_misses",
            "fallback_reads",
            "peer_serves",
        )
        out = {key: sum(n.counters.get(key) for n in self.nodes) for key in keys}
        out["backing_reads"] = self.counters.get("backing_reads")
        out["tier_fast_hits"] = sum(
            n.tier.counters.get("fast_hits") for n in self.nodes
        )
        out["tier_coalesced"] = sum(
            n.tier.counters.get("coalesced_fetches") for n in self.nodes
        )
        return out

    def cluster_hit_rate(self) -> float:
        """Fraction of sample requests absorbed by the cluster's tiers.

        A request misses the cluster cache only when it reaches the backing
        store, so the rate is ``1 - backing_reads / reads`` — the aggregate
        the paper's §VII "access coordination" argument is about.
        """
        totals = self.totals()
        reads = totals["reads"]
        if reads <= 0:
            return 0.0
        return max(0.0, 1.0 - totals["backing_reads"] / reads)

    def peer_hit_rate(self) -> float:
        """Of remote requests, the fraction the owning peer actually served."""
        totals = self.totals()
        remote = totals["remote_requests"]
        return totals["peer_hits"] / remote if remote > 0 else 0.0

    def resident_files(self) -> int:
        return sum(n.resident_files for n in self.nodes)

    def resident_bytes(self) -> int:
        return sum(n.resident_bytes for n in self.nodes)

    def shard_paths(self, index: int) -> Sequence[str]:
        return self.shard_map.shard(index)

    def __repr__(self) -> str:
        return (
            f"<ClusterStore {self.name!r} nodes={len(self.nodes)} "
            f"catalog={len(self.shard_map)}>"
        )
