"""Sharded peer-to-peer sample serving with a cluster-wide cooperative cache.

The paper's decoupling argument, scaled out: when storage optimizations are
self-contained objects behind a stable interface, nothing stops the "cache"
from being the *aggregate* fast storage of the whole cluster.  This package
shards the sample catalog across N simulated storage nodes by stable hash
(:class:`ShardMap`), keeps each shard hot in the owner's node-local tier,
and serves non-owner reads peer-to-peer over the RPC layer — so each sample
hits the shared backing store at most once per epoch cluster-wide
(:class:`ClusterStore` ledgers exactly that invariant).

Entry points: build a :class:`ClusterStore` over any filesystem-like
backing store, then :meth:`ClusterStore.mount` a node to get a
:class:`~repro.storage.posix.PosixLike` view any existing pipeline can use
unchanged.  ``repro cluster`` sweeps node counts from the CLI;
``experiments/cluster.py`` holds the reproducible sweep.
"""

from .node import ClusterMount, ClusterNode
from .shard import ShardMap, UnknownSample
from .store import ClusterConfig, ClusterStore

__all__ = [
    "ClusterConfig",
    "ClusterMount",
    "ClusterNode",
    "ClusterStore",
    "ShardMap",
    "UnknownSample",
]
