"""Replaying recorded traces against a (possibly different) storage stack.

Two replay disciplines, the standard pair in storage evaluation:

* **open-loop** (``timed=True``) — requests are issued at their recorded
  timestamps regardless of completion; measures how a stack copes with the
  original arrival process (queueing grows if it's slower).
* **closed-loop** (``timed=False``) — requests are issued ``concurrency``
  at a time, next-on-completion; measures the stack's intrinsic service
  capability for this request mix.

The replayed target is anything :class:`~repro.storage.posix.PosixLike`
whose namespace contains the trace's paths — a raw backend, or a PRISMA
stage (load the trace's paths as its epoch list first to exercise the
prefetcher).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from ..telemetry import LatencyRecorder
from .format import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator
    from ..storage.posix import PosixLike


@dataclass
class ReplayResult:
    """Outcome of one replay run."""

    requests: int
    duration: float
    total_bytes: int
    mean_latency: float
    p99_latency: float
    errors: int

    def throughput(self) -> float:
        return self.total_bytes / self.duration if self.duration > 0 else 0.0


class TraceReplayer:
    """Drives a recorded trace through a POSIX-like target."""

    def __init__(self, sim: "Simulator", target: "PosixLike") -> None:
        self.sim = sim
        self.target = target

    def replay(
        self,
        trace: Trace,
        timed: bool = True,
        concurrency: int = 1,
        time_scale: float = 1.0,
    ) -> ReplayResult:
        """Run the whole trace to completion and summarize service quality.

        ``time_scale`` stretches (>1) or compresses (<1) recorded
        inter-arrival gaps in open-loop mode — the standard load-scaling
        knob for "what if this workload arrived twice as fast?".
        """
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if len(trace) == 0:
            raise ValueError("cannot replay an empty trace")

        recorder = LatencyRecorder("replay")
        state = {"bytes": 0, "errors": 0}
        start = self.sim.now
        base_issue = trace.records[0].issue_time

        def issue_one(record):
            issued = self.sim.now
            try:
                nbytes = yield self.target.read_whole(record.path)
                state["bytes"] += nbytes
                recorder.record(self.sim.now, self.sim.now - issued)
            except Exception:  # noqa: BLE001 - count and continue
                state["errors"] += 1

        if timed:
            def open_loop():
                pending = []
                for record in trace.records:
                    target_time = start + (record.issue_time - base_issue) * time_scale
                    delay = target_time - self.sim.now
                    if delay > 0:
                        yield self.sim.timeout(delay)
                    pending.append(self.sim.process(issue_one(record)))
                yield self.sim.all_of(pending)

            done = self.sim.process(open_loop(), name="replay.open")
        else:
            queue: List = list(trace.records)

            def worker():
                while queue:
                    record = queue.pop(0)
                    yield from issue_one(record)

            def closed_loop():
                workers = [
                    self.sim.process(worker(), name=f"replay.w{i}")
                    for i in range(concurrency)
                ]
                yield self.sim.all_of(workers)

            done = self.sim.process(closed_loop(), name="replay.closed")

        self.sim.run(until=done)
        summary = recorder.summary() if len(recorder) else None
        return ReplayResult(
            requests=len(trace),
            duration=self.sim.now - start,
            total_bytes=state["bytes"],
            mean_latency=summary.mean if summary else 0.0,
            p99_latency=summary.p99 if summary else 0.0,
            errors=state["errors"],
        )
