"""``repro.traces`` — I/O trace recording, characterization, and replay.

Record request-level storage traffic from any point in the stack
(:class:`TracingPosix`), persist it as JSON Lines (:class:`Trace`), and
replay it open- or closed-loop against a different storage configuration
(:class:`TraceReplayer`) — the standard storage-evaluation workflow, built
on the same POSIX seam PRISMA itself uses.
"""

from .format import FORMAT_VERSION, SOURCES, Trace, TraceHeader, TraceRecord
from .recorder import TracingPosix
from .replay import ReplayResult, TraceReplayer

__all__ = [
    "FORMAT_VERSION",
    "ReplayResult",
    "SOURCES",
    "Trace",
    "TraceHeader",
    "TraceRecord",
    "TraceReplayer",
    "TracingPosix",
]
