"""Recording traces from a running data plane.

:class:`TracingPosix` wraps any :class:`~repro.storage.posix.PosixLike`
(the raw backend, or a whole PRISMA stage) and records every whole-file
read into a :class:`~repro.traces.format.Trace`.  Because it implements the
same interface it slots *anywhere* in the stack — above the stage to see
the framework's view (latencies include buffer service), or below it to
see the backend's view (what actually hit the device).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..simcore.event import Event
from ..storage.posix import PosixLike
from .format import Trace, TraceHeader, TraceRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator


class TracingPosix(PosixLike):
    """Pass-through POSIX layer that records every whole-file read."""

    def __init__(
        self,
        sim: "Simulator",
        inner: PosixLike,
        header: Optional[TraceHeader] = None,
        source_label: str = "backend",
    ) -> None:
        self.sim = sim
        self.inner = inner
        self.trace = Trace(header)
        self.source_label = source_label

    # -- interception -------------------------------------------------------------
    def read_whole(self, path: str) -> Event:
        issued = self.sim.now
        event = self.inner.read_whole(path)

        def log(ev: Event) -> None:
            if ev.ok:
                self.trace.append(
                    TraceRecord(
                        issue_time=issued,
                        path=path,
                        nbytes=int(ev.value),
                        latency=self.sim.now - issued,
                        source=self.source_label,
                    )
                )

        event.add_callback(log)
        return event

    # -- pass-through ------------------------------------------------------------
    def open(self, path: str) -> int:
        return self.inner.open(path)

    def close(self, fd: int) -> None:
        self.inner.close(fd)

    def fstat_size(self, fd: int) -> int:
        return self.inner.fstat_size(fd)

    def pread(self, fd: int, length: int, offset: int) -> Event:
        return self.inner.pread(fd, length, offset)

    def read(self, fd: int, length: int) -> Event:
        return self.inner.read(fd, length)
