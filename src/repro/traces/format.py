"""I/O trace records and (de)serialization.

A *trace* is the request-level record of a training run's storage traffic:
one row per read with its issue time, path, size, service latency, and how
it was served (backend, buffer hit, buffer wait, fast tier).  Traces are
the lingua franca of storage evaluation — they let one run's workload be
inspected, characterized, and replayed against a different stack.

The on-disk format is JSON Lines with a one-object header, chosen over a
binary format deliberately: traces here are analysis artifacts (thousands
to millions of rows), not hot-path data, and greppability wins.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import IO, Iterable, Iterator, List, Optional

FORMAT_VERSION = 1

#: How a request was served (mirrors the data-plane service paths).
SOURCES = ("backend", "buffer_hit", "buffer_wait", "fast_tier")


@dataclass(frozen=True)
class TraceRecord:
    """One storage request."""

    issue_time: float
    path: str
    nbytes: int
    latency: float
    source: str = "backend"

    def __post_init__(self) -> None:
        if self.issue_time < 0 or self.latency < 0 or self.nbytes < 0:
            raise ValueError("trace fields must be non-negative")
        if self.source not in SOURCES:
            raise ValueError(f"unknown source {self.source!r}; expected {SOURCES}")

    @property
    def completion_time(self) -> float:
        return self.issue_time + self.latency


@dataclass(frozen=True)
class TraceHeader:
    """Run metadata stored as the file's first line."""

    description: str = ""
    workload: str = ""
    setup: str = ""
    version: int = FORMAT_VERSION


class Trace:
    """An in-memory trace: header + time-ordered records."""

    def __init__(self, header: Optional[TraceHeader] = None, records: Optional[Iterable[TraceRecord]] = None) -> None:
        self.header = header or TraceHeader()
        self.records: List[TraceRecord] = sorted(
            records or [], key=lambda r: r.issue_time
        )

    def append(self, record: TraceRecord) -> None:
        self.records.append(record)

    def finalize(self) -> None:
        """Sort records by issue time (append order may interleave)."""
        self.records.sort(key=lambda r: r.issue_time)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    # -- characterization ----------------------------------------------------------
    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self.records)

    def duration(self) -> float:
        if not self.records:
            return 0.0
        return max(r.completion_time for r in self.records) - self.records[0].issue_time

    def mean_latency(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.latency for r in self.records) / len(self.records)

    def source_mix(self) -> dict:
        mix: dict = {}
        for r in self.records:
            mix[r.source] = mix.get(r.source, 0) + 1
        return mix

    # -- serialization ------------------------------------------------------------
    def dump(self, fh: IO[str]) -> None:
        fh.write(json.dumps({"header": asdict(self.header)}) + "\n")
        for r in self.records:
            fh.write(json.dumps(asdict(r), separators=(",", ":")) + "\n")

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            self.dump(fh)

    @classmethod
    def load_stream(cls, fh: IO[str]) -> "Trace":
        first = fh.readline()
        if not first:
            raise ValueError("empty trace file")
        head = json.loads(first)
        if "header" not in head:
            raise ValueError("trace file missing header line")
        header_fields = head["header"]
        version = header_fields.get("version", 0)
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace version {version} (supported: {FORMAT_VERSION})"
            )
        header = TraceHeader(**header_fields)
        records = []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            records.append(TraceRecord(**json.loads(line)))
        return cls(header, records)

    @classmethod
    def load(cls, path: str) -> "Trace":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.load_stream(fh)
