"""``repro.distributed`` — multi-node synchronous data-parallel training.

The paper's §VII "distributed training settings" direction: N compute
nodes with per-node GPU ensembles and input pipelines (optionally each
behind a PRISMA stage under one logically centralized controller), sharded
sampling over one shared storage backend, and a gradient all-reduce
barrier coupling every step.
"""

from .barrier import StepBarrier
from .training import (
    ALLREDUCE_BUS_BANDWIDTH,
    ALLREDUCE_LATENCY,
    GRADIENT_BYTES,
    DistributedResult,
    DistributedTrainingJob,
    NodeResult,
    allreduce_cost,
)

__all__ = [
    "ALLREDUCE_BUS_BANDWIDTH",
    "ALLREDUCE_LATENCY",
    "DistributedResult",
    "DistributedTrainingJob",
    "GRADIENT_BYTES",
    "NodeResult",
    "StepBarrier",
    "allreduce_cost",
]
