"""Synchronization primitives for multi-node data-parallel training.

Synchronous SGD couples all nodes at every optimizer step: nobody starts
step *k+1* before the gradient all-reduce of step *k* completes.  The
:class:`StepBarrier` models that rendezvous — arrival events plus a
configurable collective-communication cost — and is the mechanism through
which one node's slow storage stalls the whole job (the paper's §II
"performance variation" motivation, at training-job scale).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from ..simcore.event import Event
from ..telemetry import CounterSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator


class StepBarrier:
    """An N-party barrier with a per-round completion cost.

    ``arrive(round)`` returns an event that triggers once all ``parties``
    have arrived for that round *and* ``round_cost`` simulated seconds have
    elapsed (the all-reduce).  Rounds may be arrived at out of lock-step by
    at most one round (standard pipelined-allreduce slack is not modelled —
    training here is strictly synchronous).
    """

    def __init__(self, sim: "Simulator", parties: int, round_cost: float = 0.0, name: str = "barrier") -> None:
        if parties < 1:
            raise ValueError("parties must be >= 1")
        if round_cost < 0:
            raise ValueError("round_cost must be non-negative")
        self.sim = sim
        self.parties = parties
        self.round_cost = round_cost
        self.name = name
        self._arrivals: Dict[int, int] = {}
        self._gates: Dict[int, Event] = {}
        self._highest_completed = -1
        self.counters = CounterSet()
        #: cumulative time parties spent blocked at the barrier
        self.total_wait = 0.0
        self._arrival_times: Dict[int, List[float]] = {}

    def arrive(self, round_index: int) -> Event:
        """Register this party's arrival; event fires when the round opens."""
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        if round_index <= self._highest_completed:
            raise ValueError(
                f"{self.name}: arrival for round {round_index}, which already "
                "completed — a party is out of step"
            )
        gate = self._gates.get(round_index)
        if gate is None:
            gate = Event(self.sim, name=f"{self.name}.r{round_index}")
            self._gates[round_index] = gate
        count = self._arrivals.get(round_index, 0) + 1
        self._arrivals[round_index] = count
        self._arrival_times.setdefault(round_index, []).append(self.sim.now)
        if count > self.parties:
            raise ValueError(
                f"{self.name}: round {round_index} got {count} arrivals for "
                f"{self.parties} parties"
            )
        if count == self.parties:
            self.counters.add("rounds")
            self._highest_completed = max(self._highest_completed, round_index)
            times = self._arrival_times.pop(round_index)
            last = max(times)
            self.total_wait += sum(last - t for t in times)

            def release():
                if self.round_cost > 0:
                    yield self.sim.timeout(self.round_cost)
                gate.succeed()
                # Allow long trainings without unbounded dictionaries.
                self._gates.pop(round_index, None)
                self._arrivals.pop(round_index, None)

            self.sim.process(release(), name=f"{self.name}.release{round_index}")
        return gate

    def mean_wait_per_round(self) -> float:
        rounds = self.counters.get("rounds")
        return self.total_wait / rounds if rounds > 0 else 0.0
