"""Multi-node synchronous data-parallel training (paper §VII).

*"While we demonstrate the impact of SDS-enabled optimizations in a local
setting, it would be interesting to explore their impact on large-scale DL
deployments, that require tight coordination and holistic tunning of data
plane stages."*

This module builds that deployment: ``n`` compute nodes, each with its own
GPU ensemble, its own input pipeline over a *shard* of the dataset
(``DistributedSampler`` semantics: node *k* takes every *n*-th index of the
epoch permutation), and optionally its own PRISMA stage — all reading one
shared parallel filesystem and synchronizing gradients at every step
through a :class:`~repro.distributed.barrier.StepBarrier`.

Because steps are synchronous, per-node storage jitter multiplies: the job
advances at the pace of the *slowest* node's data path each step, which is
precisely where coordinated, globally visible I/O control earns its keep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from ..cluster import ClusterStore
from ..core import Controller, ParallelPrefetcher, PrismaAutotunePolicy, PrismaStage
from ..core.control import ControlChannel
from ..core.integrations.tf_binding import PrismaTensorFlowPipeline
from ..dataset.catalog import DatasetCatalog
from ..dataset.shuffle import EpochShuffler
from ..frameworks.models import GpuEnsemble, ModelProfile
from ..frameworks.tensorflow.pipeline import tf_baseline
from ..simcore.event import Event
from ..simcore.random import RandomStreams
from .barrier import StepBarrier

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator
    from ..storage.posix import PosixLike

#: Gradient payload exchanged per step, bytes (FP32 parameter counts).
GRADIENT_BYTES: Dict[str, float] = {
    "lenet": 0.25e6,  # ~62k params
    "alexnet": 244e6,  # ~61M params
    "resnet50": 102e6,  # ~25.5M params
}

#: Effective all-reduce bus bandwidth between nodes (NCCL-over-IB class).
ALLREDUCE_BUS_BANDWIDTH = 10e9
#: Fixed per-collective latency (rendezvous + launch).
ALLREDUCE_LATENCY = 150e-6


def allreduce_cost(model: ModelProfile, n_nodes: int) -> float:
    """Ring all-reduce time: 2(n-1)/n · bytes / bus bandwidth + latency."""
    if n_nodes <= 1:
        return 0.0
    payload = GRADIENT_BYTES.get(model.name, 50e6)
    return ALLREDUCE_LATENCY + 2 * (n_nodes - 1) / n_nodes * payload / ALLREDUCE_BUS_BANDWIDTH


class _ShardShuffler:
    """Node-local view of the global epoch permutation (every n-th index)."""

    def __init__(self, global_shuffler: EpochShuffler, node: int, n_nodes: int) -> None:
        self.global_shuffler = global_shuffler
        self.node = node
        self.n_nodes = n_nodes

    def order(self, epoch: int) -> np.ndarray:
        return self.global_shuffler.order(epoch)[self.node :: self.n_nodes]


@dataclass
class NodeResult:
    node: int
    train_time: float
    barrier_wait: float = 0.0


@dataclass
class DistributedResult:
    n_nodes: int
    total_time: float
    steps: int
    nodes: List[NodeResult] = field(default_factory=list)
    mean_barrier_wait: float = 0.0

    def scaling_efficiency(self, single_node_time: float) -> float:
        """Ideal-linear efficiency vs a 1-node run of the same job."""
        if self.total_time <= 0:
            return 0.0
        return single_node_time / (self.n_nodes * self.total_time)


class DistributedTrainingJob:
    """Synchronous data-parallel training over shared storage.

    ``use_prisma`` gives every node its own data-plane stage over the
    shared backend; one logically centralized controller tunes all of them
    (the coordinated deployment of §VII).
    """

    def __init__(
        self,
        sim: "Simulator",
        shared_posix: "PosixLike",
        catalog: DatasetCatalog,
        model: ModelProfile,
        n_nodes: int,
        global_batch: int,
        epochs: int,
        streams: RandomStreams,
        use_prisma: bool = False,
        control_period: float = 1e-3,
        cluster_store: Optional[ClusterStore] = None,
        name: str = "distjob",
    ) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if global_batch < n_nodes:
            raise ValueError("global_batch must be >= n_nodes")
        if global_batch % n_nodes != 0:
            raise ValueError("global_batch must divide evenly across nodes")
        self.sim = sim
        self.catalog = catalog
        self.model = model
        self.n_nodes = n_nodes
        self.global_batch = global_batch
        self.local_batch = global_batch // n_nodes
        self.epochs = epochs
        self.name = name
        self.use_prisma = use_prisma
        #: optional peer-to-peer cooperative cache: when set, every node's
        #: input pipeline mounts its cluster-store node instead of reading
        #: the shared backend directly, so the epoch's redundant reads are
        #: absorbed by the cluster's aggregate fast storage.
        self.cluster_store = cluster_store

        #: steps per epoch: every node must run the same count, so the
        #: shard remainder is dropped (torch's DistributedSampler pads;
        #: dropping keeps byte accounting exact and changes nothing else).
        self.steps_per_epoch = (len(catalog) // n_nodes) // self.local_batch
        if self.steps_per_epoch < 1:
            raise ValueError("dataset too small for this node/batch configuration")

        self.barrier = StepBarrier(
            sim, n_nodes, round_cost=allreduce_cost(model, n_nodes),
            name=f"{name}.allreduce",
        )
        global_shuffler = EpochShuffler(len(catalog), streams.spawn("order"))

        self.controller: Optional[Controller] = None
        self.prefetchers: List[ParallelPrefetcher] = []
        if use_prisma:
            self.controller = Controller(
                sim, period=control_period, name=f"{name}.ctl"
            )

        self._sources = []
        self._gpus: List[GpuEnsemble] = []
        for node in range(n_nodes):
            shard = _ShardShuffler(global_shuffler, node, n_nodes)
            gpus = GpuEnsemble(sim, name=f"{name}.n{node}.gpu")
            self._gpus.append(gpus)
            # Each node reads through its own mount of the cooperative
            # cache when one is configured; otherwise straight to the
            # shared backend (the uncoordinated baseline).
            node_posix = (
                cluster_store.mount(node % len(cluster_store))
                if cluster_store is not None
                else shared_posix
            )
            if use_prisma:
                prefetcher = ParallelPrefetcher(
                    sim, node_posix, name=f"{name}.n{node}.pf"
                )
                stage = PrismaStage(
                    sim, node_posix, [prefetcher], name=f"{name}.n{node}.stage"
                )
                assert self.controller is not None
                # One logically centralized controller, one named channel
                # per node — remote-latency tuning and per-node fault
                # injection both key off the channel name.
                self.controller.register(
                    stage,
                    PrismaAutotunePolicy(),
                    channel=ControlChannel(sim, name=f"{name}.n{node}.ctl.ch"),
                )
                self.prefetchers.append(prefetcher)
                source = PrismaTensorFlowPipeline(
                    sim, catalog, shard, self.local_batch, stage, model,
                    name=f"{name}.n{node}.src",
                )
            else:
                source = tf_baseline(
                    sim, catalog, shard, self.local_batch, node_posix, model,
                    name=f"{name}.n{node}.src",
                )
            self._sources.append(source)

    # -- execution --------------------------------------------------------------
    def _node_process(self, node: int, result: NodeResult):
        source = self._sources[node]
        gpus = self._gpus[node]
        start = self.sim.now
        step_index = 0
        for epoch in range(self.epochs):
            source.begin_epoch(epoch)
            for _ in range(self.steps_per_epoch):
                batch = yield source.next_batch()
                assert batch is not None
                yield gpus.train_step(self.model, batch)
                yield self.barrier.arrive(step_index)
                step_index += 1
            # Drain the shard's remainder so the pipeline processes finish.
            while True:
                batch = yield source.next_batch()
                if batch is None:
                    break
            yield gpus.drain()
            source.end_epoch()
        result.train_time = self.sim.now - start
        return result

    def run(self) -> DistributedResult:
        if self.cluster_store is not None:
            # Fresh ledger for the job; per-epoch resets are the concern of
            # the experiment harness (nodes cross epoch boundaries skewed).
            self.cluster_store.begin_epoch()
        if self.controller is not None:
            self.controller.start()
        node_results = [NodeResult(node=i, train_time=0.0) for i in range(self.n_nodes)]
        events: List[Event] = [
            self.sim.process(self._node_process(i, node_results[i]), name=f"{self.name}.n{i}")
            for i in range(self.n_nodes)
        ]
        done = self.sim.all_of(events)
        start = self.sim.now
        self.sim.run(until=done)
        if self.controller is not None:
            self.controller.stop()
        total_steps = self.epochs * self.steps_per_epoch
        return DistributedResult(
            n_nodes=self.n_nodes,
            total_time=self.sim.now - start,
            steps=total_steps,
            nodes=node_results,
            mean_barrier_wait=self.barrier.mean_wait_per_round(),
        )
