"""The storage-backend protocol: the seam every PRISMA consumer codes against.

The paper's decoupling argument cuts both ways: if storage optimizations
live in a layer of their own, that layer must not care *which* storage it
optimizes.  Historically the codebase expressed this as an implicit
``Filesystem`` duck-type — anything with ``read``/``read_file``/``stat``
worked, but nothing named the contract, and each new backend (the
distributed PFS, now the object store) rediscovered it by grep.

:class:`StorageBackend` makes the contract explicit.  Three implementations
conform —

* :class:`~repro.storage.filesystem.Filesystem` — local device + page cache;
* :class:`~repro.storage.distributed.DistributedFilesystem` — hash-placed
  OSTs behind a shared network link;
* :class:`~repro.storage.object_store.ObjectStore` — S3-like: high
  per-request latency, high parallelism, whole-object GET/PUT, no page
  cache —

and every consumer (the POSIX facade, prefetcher, tiering promotion source,
cluster backing store, checkpoint writer, experiment runners) types against
the protocol, never a concrete class.  CI greps enforce that no consumer
reintroduces an ``isinstance(..., Filesystem)`` check.

Canonical read spelling: **``read_whole(path)``** is *the* whole-file read
(the pre-protocol ``read_file`` alias has been removed).

:class:`BackendConfig` + :func:`build_backend` let configuration select the
backend (``kind="posix"`` or ``"object"``) so callers — including
:func:`repro.core.build_prisma` via ``PrismaConfig.backend`` — construct
either stack without code changes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable, List, Optional, Protocol, Union, runtime_checkable

from .device import PROFILES, BlockDevice, DeviceProfile
from .filesystem import FaultHook, Filesystem, SimFile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.event import Event
    from ..simcore.kernel import Simulator
    from ..simcore.random import RandomStreams
    from .object_store import ObjectStoreProfile


def validate_byte_count(value: object, name: str = "bytes", allow_zero: bool = False) -> int:
    """Normalize a byte quantity to an int (the discrete-byte convention).

    Byte accounting across the codebase is integer arithmetic — buffer
    capacities, tier residency, checkpoint payloads.  ``bool``, NaN,
    infinities, and fractional floats are rejected; integral floats (a
    config written ``0.75e6`` or a policy computing ``0.5 * total``) are
    normalized to int.  ``allow_zero`` admits 0 for "disabled" knobs.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{name} must be an int, got {value!r}")
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ValueError(f"{name} must be finite, got {value!r}")
        if value != int(value):
            raise ValueError(f"{name} must be a whole number of bytes, got {value!r}")
        value = int(value)
    if value < 0 or (value == 0 and not allow_zero):
        bound = "non-negative" if allow_zero else "positive"
        raise ValueError(f"{name} must be {bound}, got {value!r}")
    return value


@runtime_checkable
class SampleSource(Protocol):
    """The minimal read surface a data-plane optimization needs.

    Prefetchers and tiering objects only ever *read whole samples*; typing
    them against this one-method protocol (rather than the full backend)
    is what lets optimization objects stack — a tiering object is itself a
    valid ``SampleSource`` for the prefetcher above it, and a cluster
    node's peer adapter is a valid promotion source for its tier.
    """

    def read_whole(self, path: str) -> "Event":
        """Whole-file read; event value = bytes read."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class StorageBackend(Protocol):
    """What every storage backend must provide.

    The contract has four parts:

    * **namespace** — ``create``/``create_many``/``exists``/``stat``/
      ``unlink``/``list_prefix``/``total_bytes`` over a flat path space of
      :class:`~repro.storage.filesystem.SimFile` metadata;
    * **data path** — ``read`` (ranged), ``read_whole`` (the canonical
      whole-file read), and ``write``, each returning a kernel
      :class:`~repro.simcore.event.Event` valued with the byte count;
    * **fault seam** — a ``fault_hook`` attribute consulted per data read,
      the :class:`~repro.faults.FaultInjector` attachment point;
    * **telemetry seam** — operations emit spans and the
      ``storage.write_bytes_total`` counter through ``sim.telemetry`` when
      a hub is attached, and expose cumulative ``bytes_read()`` /
      ``bytes_written()`` for experiment accounting.
    """

    sim: "Simulator"
    name: str
    fault_hook: Optional[FaultHook]

    # -- namespace ----------------------------------------------------------
    def create(self, path: str, size: int) -> SimFile: ...  # pragma: no cover
    def create_many(self, entries: Iterable[tuple]) -> None: ...  # pragma: no cover
    def exists(self, path: str) -> bool: ...  # pragma: no cover
    def stat(self, path: str) -> SimFile: ...  # pragma: no cover
    def unlink(self, path: str) -> None: ...  # pragma: no cover
    def list_prefix(self, prefix: str) -> List[str]: ...  # pragma: no cover
    def total_bytes(self) -> int: ...  # pragma: no cover

    # -- data path ----------------------------------------------------------
    def read(self, path: str, offset: int = 0, length: Optional[int] = None) -> "Event":
        ...  # pragma: no cover

    def read_whole(self, path: str) -> "Event": ...  # pragma: no cover

    def write(self, path: str, nbytes: int, offset: int = 0) -> "Event":
        ...  # pragma: no cover

    # -- observability ------------------------------------------------------
    def bytes_read(self) -> float: ...  # pragma: no cover
    def bytes_written(self) -> float: ...  # pragma: no cover


BACKEND_KINDS = ("posix", "object")


@dataclass(frozen=True)
class BackendConfig:
    """Validated backend selection for :func:`build_backend`.

    ``kind="posix"`` builds a :class:`~repro.storage.filesystem.Filesystem`
    over a :class:`~repro.storage.device.BlockDevice`; ``kind="object"``
    builds an :class:`~repro.storage.object_store.ObjectStore`.  Profiles
    may be named presets (a key of :data:`~repro.storage.device.PROFILES`
    or :data:`~repro.storage.object_store.OBJECT_PROFILES`) or full profile
    objects; the scalar overrides apply on top of the resolved profile so a
    config can express "the stock S3 preset but 5 ms GETs" without
    defining a whole new preset.
    """

    kind: str = "posix"
    #: posix: the block-device preset name or a full profile
    device_profile: Union[str, DeviceProfile] = "intel-p4600"
    #: posix: page-cache capacity in bytes (0 = no cache)
    cache_bytes: int = 0
    #: posix: override the profile's ``mixed_write_penalty`` (None = keep)
    write_penalty: Optional[float] = None
    #: object: the object-store preset name or a full profile
    object_profile: Union[str, "ObjectStoreProfile"] = "s3"
    #: object: override per-request GET / PUT latency (seconds)
    request_latency: Optional[float] = None
    put_latency: Optional[float] = None
    #: object: override the aggregate service bandwidth (bytes/s)
    bandwidth: Optional[float] = None
    #: object: override the concurrency-knee parameter (higher = more
    #: streams needed to approach the aggregate rate)
    kappa: Optional[float] = None
    #: object: override the request-parallelism ceiling
    max_concurrency: Optional[int] = None
    #: component name; None picks a per-kind default ("fs" / "objstore")
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in BACKEND_KINDS:
            raise ValueError(
                f"unknown backend kind {self.kind!r}; choose one of {list(BACKEND_KINDS)}"
            )
        if isinstance(self.device_profile, str) and self.device_profile not in PROFILES:
            raise ValueError(
                f"unknown device_profile {self.device_profile!r}; "
                f"choose one of {sorted(PROFILES)}"
            )
        object.__setattr__(
            self, "cache_bytes",
            validate_byte_count(self.cache_bytes, "cache_bytes", allow_zero=True),
        )
        if self.write_penalty is not None and not 0.0 <= self.write_penalty < 1.0:
            raise ValueError("write_penalty must be in [0, 1)")
        if isinstance(self.object_profile, str):
            from .object_store import OBJECT_PROFILES

            if self.object_profile not in OBJECT_PROFILES:
                raise ValueError(
                    f"unknown object_profile {self.object_profile!r}; "
                    f"choose one of {sorted(OBJECT_PROFILES)}"
                )
        for field_name in ("request_latency", "put_latency"):
            value = getattr(self, field_name)
            if value is not None and value < 0:
                raise ValueError(f"{field_name} must be non-negative")
        for field_name in ("bandwidth", "kappa"):
            value = getattr(self, field_name)
            if value is not None and value <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.max_concurrency is not None and self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")

    def with_overrides(self, **overrides) -> "BackendConfig":
        """A copy with the given fields replaced (sugar over ``replace``)."""
        return replace(self, **overrides)


def build_backend(
    sim: "Simulator",
    config: Optional[BackendConfig] = None,
    streams: Optional["RandomStreams"] = None,
) -> StorageBackend:
    """Construct the backend a :class:`BackendConfig` describes.

    ``streams`` feeds the device's latency-jitter RNG for posix backends
    whose profile enables it (the stock presets are fully deterministic).
    """
    config = config or BackendConfig()
    if config.kind == "posix":
        from .cache import PageCache

        profile = config.device_profile
        if isinstance(profile, str):
            profile = PROFILES[profile]()
        if config.write_penalty is not None:
            profile = replace(profile, mixed_write_penalty=config.write_penalty)
        name = config.name or "fs"
        device = BlockDevice(sim, profile, streams=streams, name=f"{name}.dev")
        cache = PageCache(sim, config.cache_bytes) if config.cache_bytes else None
        return Filesystem(sim, device, cache=cache, name=name)

    from .object_store import OBJECT_PROFILES, ObjectStore

    profile = config.object_profile
    if isinstance(profile, str):
        profile = OBJECT_PROFILES[profile]()
    overrides = {
        key: value
        for key, value in (
            ("get_latency", config.request_latency),
            ("put_latency", config.put_latency),
            ("aggregate_bandwidth", config.bandwidth),
            ("kappa", config.kappa),
            ("max_concurrency", config.max_concurrency),
        )
        if value is not None
    }
    if overrides:
        profile = replace(profile, **overrides)
    return ObjectStore(sim, profile, name=config.name or "objstore")
