"""S3-like object store: high latency, high parallelism, whole-object PUT.

The third :class:`~repro.storage.backend.StorageBackend` implementation,
modelling cloud object storage as DL training sees it:

* every request pays a large fixed first-byte latency (an HTTPS round trip
  to a regional endpoint — milliseconds, vs microseconds for NVMe);
* per-stream bandwidth is modest but the service scales almost linearly
  with concurrent requests (a very high concurrency knee): one reader
  crawls, hundreds approach the aggregate rate — exactly the regime where
  PRISMA's auto-tuner pays off, since the optimal producer count is far
  from the POSIX optimum and no framework default finds it;
* **no page cache** — every GET goes to the service;
* writes are whole-object PUTs: no partial or extending writes, an upload
  replaces the object.  GETs may be ranged (the REST API allows it), which
  keeps the POSIX facade's ``pread`` working unmodified.

GETs and PUTs share one client link, so checkpoint uploads and prefetch
reads interfere naturally — the mixed-workload contention the write-path
experiments measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from ..simcore.event import Event, chain_result
from ..telemetry import CounterSet
from .device import GiB
from .filesystem import FaultHook, FileExists, FileNotFound, InvalidRead, SimFile
from .fluid import FairShareChannel, saturating_capacity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator


@dataclass(frozen=True)
class ObjectStoreProfile:
    """Static performance parameters of an object-storage service.

    ``kappa`` is the concurrency knee of the saturating capacity curve
    (one stream gets ``aggregate_bandwidth / (1 + kappa)``); object stores
    sit at the opposite end of the spectrum from local flash — a single
    stream sees ~1% of the service rate and only massive request
    parallelism approaches the ceiling.
    """

    name: str
    #: fixed first-byte latency of a GET (request + TTFB)
    get_latency: float = 12e-3
    #: fixed latency of a PUT before bytes flow
    put_latency: float = 25e-3
    #: service-side ceiling at high request concurrency (bytes/s)
    aggregate_bandwidth: float = 8 * GiB
    #: concurrency knee: one stream gets ``aggregate / (1 + kappa)``
    kappa: float = 100.0
    #: request-parallelism ceiling (client connection pool)
    max_concurrency: int = 256

    def __post_init__(self) -> None:
        if self.get_latency < 0 or self.put_latency < 0:
            raise ValueError("latencies must be non-negative")
        if self.aggregate_bandwidth <= 0:
            raise ValueError("aggregate_bandwidth must be positive")
        if self.kappa <= 0:
            raise ValueError("kappa must be positive")
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")

    def single_stream_bandwidth(self) -> float:
        """Rate one lone request streams at (before latency)."""
        return self.aggregate_bandwidth / (1.0 + self.kappa)


def s3_like() -> ObjectStoreProfile:
    """A standard-tier regional object store.

    Calibration: one stream sustains ≈81 MiB/s (8 GiB/s ÷ 101) — the
    classic single-connection S3 rate — while 100+ concurrent requests
    reach multi-GiB/s aggregate, and every request pays a ~12 ms round
    trip.  On ~110 KiB samples a lone reader is latency-bound at ≈8 MiB/s,
    so throughput is almost linear in the producer count.
    """
    return ObjectStoreProfile(name="s3-like")


def premium_object() -> ObjectStoreProfile:
    """A low-latency "express" tier: same parallelism story, 10× lower RTT."""
    return ObjectStoreProfile(
        name="object-premium",
        get_latency=1.5e-3,
        put_latency=3e-3,
        aggregate_bandwidth=10 * GiB,
        kappa=60.0,
        max_concurrency=512,
    )


OBJECT_PROFILES = {
    "s3": s3_like,
    "premium": premium_object,
}


class ObjectStore:
    """A flat namespace of objects behind one high-latency client link.

    Implements the full :class:`~repro.storage.backend.StorageBackend`
    protocol.  Differences from :class:`~repro.storage.filesystem.Filesystem`
    callers may observe: there is no page cache (repeat GETs cost full
    price), and :meth:`write` is a whole-object PUT — ``offset`` must be 0
    and the upload *replaces* the object's size rather than extending it.
    """

    def __init__(
        self,
        sim: "Simulator",
        profile: Optional[ObjectStoreProfile] = None,
        name: str = "objstore",
    ) -> None:
        self.sim = sim
        self.profile = profile or s3_like()
        self.name = name
        self.link = FairShareChannel(
            sim,
            saturating_capacity(self.profile.aggregate_bandwidth, self.profile.kappa),
            name=f"{name}.link",
            max_concurrency=self.profile.max_concurrency,
        )
        self._objects: Dict[str, SimFile] = {}
        #: fault-injection seam, same contract as :class:`Filesystem`'s
        self.fault_hook: Optional[FaultHook] = None
        self.counters = CounterSet()

    # -- namespace ---------------------------------------------------------------
    def create(self, path: str, size: int) -> SimFile:
        """Register an object (metadata only — no I/O is simulated)."""
        if path in self._objects:
            raise FileExists(path)
        obj = SimFile(path, int(size))
        self._objects[path] = obj
        return obj

    def create_many(self, entries: Iterable[tuple]) -> None:
        for path, size in entries:
            self.create(path, size)

    def exists(self, path: str) -> bool:
        return path in self._objects

    def stat(self, path: str) -> SimFile:
        try:
            return self._objects[path]
        except KeyError:
            raise FileNotFound(path) from None

    def unlink(self, path: str) -> None:
        if path not in self._objects:
            raise FileNotFound(path)
        del self._objects[path]

    def list_prefix(self, prefix: str) -> List[str]:
        return sorted(p for p in self._objects if p.startswith(prefix))

    @property
    def file_count(self) -> int:
        return len(self._objects)

    def total_bytes(self) -> int:
        return sum(obj.size for obj in self._objects.values())

    # -- data path --------------------------------------------------------------
    def read(self, path: str, offset: int = 0, length: Optional[int] = None) -> Event:
        """A (possibly ranged) GET; event value = bytes actually read.

        Range semantics match POSIX reads: clamped at the object's end,
        reads at or past the end return 0 bytes after the request latency.
        """
        meta = self.stat(path)
        if offset < 0:
            raise InvalidRead(f"negative offset {offset} for {path!r}")
        end = meta.size if length is None else min(offset + max(length, 0), meta.size)
        nbytes = max(end - offset, 0)
        done = Event(self.sim, name=f"get:{path}")

        def get_process():
            tel = self.sim.telemetry
            span = None
            if tel is not None:
                span = tel.begin(
                    "objstore.get", f"storage.{self.name}", "storage", lane=True,
                    path=path, bytes=nbytes,
                )
            try:
                yield self.sim.timeout(self.profile.get_latency)
                if nbytes == 0:
                    if span is not None:
                        tel.end(span, outcome="empty")
                    return 0
                fault = self.fault_hook(path, nbytes) if self.fault_hook is not None else None
                if fault is not None:
                    if fault.extra_latency > 0:
                        yield self.sim.timeout(fault.extra_latency)
                    if fault.error is not None:
                        raise fault.error
                yield self.link.transfer(nbytes)
            except BaseException as exc:
                if span is not None:
                    tel.end(span, outcome="error", error=type(exc).__name__)
                raise
            self.counters.add("gets")
            self.counters.add("read_bytes", nbytes)
            if span is not None:
                tel.end(span, outcome="service")
            return nbytes

        proc = self.sim.process(get_process(), name=f"get:{path}")
        return chain_result(proc, done)

    def read_whole(self, path: str) -> Event:
        """Whole-object GET (the canonical sample-loading operation)."""
        return self.read(path, 0, None)

    def write(self, path: str, nbytes: int, offset: int = 0) -> Event:
        """A whole-object PUT; event value = bytes written.

        Object stores have no partial writes: ``offset`` must be 0 and the
        upload replaces the object (size becomes exactly ``nbytes``).
        """
        meta = self.stat(path)
        if offset != 0:
            raise InvalidRead(
                f"object PUT is whole-object; offset must be 0, got {offset} for {path!r}"
            )
        if nbytes < 0:
            raise InvalidRead(f"negative PUT size for {path!r}")
        done = Event(self.sim, name=f"put:{path}")

        def put_process():
            tel = self.sim.telemetry
            span = None
            if tel is not None:
                span = tel.begin(
                    "objstore.put", f"storage.{self.name}", "storage", lane=True,
                    path=path, bytes=nbytes,
                )
            try:
                yield self.sim.timeout(self.profile.put_latency)
                if nbytes > 0:
                    yield self.link.transfer(nbytes)
            except BaseException as exc:
                if span is not None:
                    tel.end(span, outcome="error", error=type(exc).__name__)
                raise
            meta.size = int(nbytes)
            self.counters.add("puts")
            self.counters.add("write_bytes", nbytes)
            if tel is not None:
                tel.registry.counter(
                    "storage.write_bytes_total", object=self.name
                ).inc(nbytes)
                tel.end(span, outcome="service")
            return nbytes

        proc = self.sim.process(put_process(), name=f"put:{path}")
        return chain_result(proc, done)

    # -- observability ------------------------------------------------------------
    def bytes_read(self) -> float:
        return self.counters.get("read_bytes")

    def bytes_written(self) -> float:
        return self.counters.get("write_bytes")

    def __repr__(self) -> str:
        return f"<ObjectStore {self.name!r} objects={len(self._objects)}>"
