"""Distributed parallel-filesystem model (Lustre/GPFS/BeeGFS class).

Used by the multi-tenant experiments (paper §II "partial visibility" and
§VII "access coordination to shared datasets"): several DL jobs, each with
its own PRISMA stage or framework-intrinsic optimizer, compete for one
shared backend.

Topology modelled:

* ``n_targets`` object storage targets (OSTs), each a :class:`BlockDevice`;
  files are placed on OSTs by a stable hash of the path (whole-file
  placement — ImageNet sample files are far smaller than a Lustre stripe).
* one shared client network link (a fluid channel) plus a fixed RPC
  round-trip latency per request.

The same duck-typed read API as :class:`~repro.storage.filesystem.Filesystem`
is exposed, so every higher layer (POSIX, PRISMA, framework simulators) runs
unmodified over local or distributed storage — which is precisely the
portability property the paper's data plane claims.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from ..simcore.event import Event, chain_result
from ..telemetry import CounterSet
from .cache import PageCache
from .device import BlockDevice, DeviceProfile, GiB, intel_p4600
from .filesystem import FaultHook, FileExists, FileNotFound, InvalidRead, SimFile
from .fluid import FairShareChannel, saturating_capacity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator
    from ..simcore.random import RandomStreams


class StorageTarget:
    """One OST: a device plus the set of files it owns."""

    def __init__(self, sim: "Simulator", index: int, profile: DeviceProfile) -> None:
        self.index = index
        self.device = BlockDevice(sim, profile, name=f"ost{index}")
        self.file_count = 0

    def __repr__(self) -> str:
        return f"<StorageTarget {self.index} files={self.file_count}>"


class DistributedFilesystem:
    """A shared PFS: hash-placed files over OSTs behind one network link."""

    def __init__(
        self,
        sim: "Simulator",
        n_targets: int = 4,
        target_profile: Optional[DeviceProfile] = None,
        network_bandwidth: float = 10.0 * GiB,
        network_kappa: float = 0.5,
        rpc_latency: float = 250e-6,
        name: str = "pfs",
    ) -> None:
        if n_targets < 1:
            raise ValueError("n_targets must be >= 1")
        if rpc_latency < 0:
            raise ValueError("rpc_latency must be non-negative")
        self.sim = sim
        self.name = name
        self.rpc_latency = rpc_latency
        profile = target_profile or intel_p4600()
        self.targets: List[StorageTarget] = [
            StorageTarget(sim, i, profile) for i in range(n_targets)
        ]
        self.network = FairShareChannel(
            sim,
            saturating_capacity(network_bandwidth, network_kappa),
            name=f"{name}.net",
        )
        # Distributed deployments are exactly the regime where the training
        # set exceeds client memory; no client cache by default.
        self.cache = PageCache(sim, 0.0, name=f"{name}.cache")
        self._files: Dict[str, SimFile] = {}
        self._placement: Dict[str, int] = {}
        self.counters = CounterSet()
        #: fault-injection seam, same contract as :class:`Filesystem`'s
        self.fault_hook: Optional[FaultHook] = None
        #: per-epoch read ledger: path -> completed reads since the last
        #: :meth:`begin_epoch`.  The cooperative-cache acceptance check
        #: ("each sample hits the backing store at most once per epoch
        #: cluster-wide") reads straight off this dict.
        self._epoch_reads: Dict[str, int] = {}

    # -- namespace (Filesystem-compatible) ----------------------------------------
    def _place(self, path: str) -> int:
        digest = hashlib.blake2s(path.encode(), digest_size=4).digest()
        return int.from_bytes(digest, "little") % len(self.targets)

    def create(self, path: str, size: int) -> SimFile:
        if path in self._files:
            raise FileExists(path)
        f = SimFile(path, int(size))
        self._files[path] = f
        ost = self._place(path)
        self._placement[path] = ost
        self.targets[ost].file_count += 1
        return f

    def create_many(self, entries: Iterable[tuple[str, int]]) -> None:
        for path, size in entries:
            self.create(path, size)

    def exists(self, path: str) -> bool:
        return path in self._files

    def stat(self, path: str) -> SimFile:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFound(path) from None

    def target_of(self, path: str) -> StorageTarget:
        self.stat(path)
        return self.targets[self._placement[path]]

    def unlink(self, path: str) -> None:
        if path not in self._files:
            raise FileNotFound(path)
        del self._files[path]
        self.targets[self._placement.pop(path)].file_count -= 1
        self.cache.invalidate(path)

    def list_prefix(self, prefix: str) -> List[str]:
        return sorted(p for p in self._files if p.startswith(prefix))

    @property
    def file_count(self) -> int:
        return len(self._files)

    def total_bytes(self) -> int:
        return sum(f.size for f in self._files.values())

    # -- data path --------------------------------------------------------------
    def read(self, path: str, offset: int = 0, length: Optional[int] = None) -> Event:
        """RPC to the owning OST: latency + device read + network transfer."""
        meta = self.stat(path)
        if offset < 0:
            raise InvalidRead(f"negative offset {offset} for {path!r}")
        end = meta.size if length is None else min(offset + max(length, 0), meta.size)
        nbytes = max(end - offset, 0)
        target = self.targets[self._placement[path]]
        done = Event(self.sim, name=f"pfsread:{path}")

        def read_process():
            tel = self.sim.telemetry
            span = None
            if tel is not None:
                span = tel.begin(
                    "pfs.read", f"storage.{self.name}", "storage", lane=True,
                    path=path, bytes=nbytes,
                )
            try:
                yield self.sim.timeout(self.rpc_latency)
                if nbytes == 0:
                    if span is not None:
                        tel.end(span, outcome="empty")
                    return 0
                fault = self.fault_hook(path, nbytes) if self.fault_hook is not None else None
                if fault is not None:
                    if fault.extra_latency > 0:
                        yield self.sim.timeout(fault.extra_latency)
                    if fault.error is not None:
                        raise fault.error
                yield target.device.read(nbytes)
                yield self.network.transfer(nbytes)
            except BaseException as exc:
                if span is not None:
                    tel.end(span, outcome="error", error=type(exc).__name__)
                raise
            self.counters.add("reads")
            self.counters.add("read_bytes", nbytes)
            self._epoch_reads[path] = self._epoch_reads.get(path, 0) + 1
            if span is not None:
                tel.end(span, outcome="ost")
            return nbytes

        proc = self.sim.process(read_process(), name=f"pfsread:{path}")
        return chain_result(proc, done)

    def read_whole(self, path: str) -> Event:
        """Whole-file read — the canonical spelling of the backend protocol.

        A :class:`DistributedFilesystem` can sit directly under a
        :class:`~repro.core.tiering.TieringObject` or prefetcher without a
        POSIX adapter — the peer-serving cluster mounts it this way.
        """
        return self.read(path, 0, None)

    def write(self, path: str, nbytes: int, offset: int = 0) -> Event:
        """Write (extend) a file on its owning OST; event value = bytes.

        The write-path mirror of :meth:`read`: RPC latency, then the bytes
        cross the shared network link and stream onto the target device —
        so checkpoint uploads contend with concurrent reads for both.
        """
        meta = self.stat(path)
        if offset < 0 or nbytes < 0:
            raise InvalidRead(f"invalid write range for {path!r}")
        target = self.targets[self._placement[path]]
        done = Event(self.sim, name=f"pfswrite:{path}")

        def write_process():
            tel = self.sim.telemetry
            span = None
            if tel is not None:
                span = tel.begin(
                    "pfs.write", f"storage.{self.name}", "storage", lane=True,
                    path=path, bytes=nbytes,
                )
            try:
                yield self.sim.timeout(self.rpc_latency)
                if nbytes > 0:
                    yield self.network.transfer(nbytes)
                    yield target.device.write(nbytes)
                    meta.size = max(meta.size, offset + nbytes)
                    self.cache.invalidate(path)
            except BaseException as exc:
                if span is not None:
                    tel.end(span, outcome="error", error=type(exc).__name__)
                raise
            self.counters.add("writes")
            self.counters.add("write_bytes", nbytes)
            if tel is not None:
                tel.registry.counter(
                    "storage.write_bytes_total", object=self.name
                ).inc(nbytes)
                tel.end(span, outcome="ost")
            return nbytes

        proc = self.sim.process(write_process(), name=f"pfswrite:{path}")
        return chain_result(proc, done)

    # -- aggregate cache accounting ----------------------------------------------
    def begin_epoch(self) -> None:
        """Reset the per-epoch read ledger (call at each epoch boundary)."""
        self._epoch_reads.clear()

    def epoch_read_count(self, path: str) -> int:
        """Completed reads of ``path`` since the last :meth:`begin_epoch`."""
        return self._epoch_reads.get(path, 0)

    @property
    def epoch_reads(self) -> int:
        """Total completed reads this epoch."""
        return sum(self._epoch_reads.values())

    @property
    def epoch_unique_reads(self) -> int:
        """Distinct paths read this epoch."""
        return len(self._epoch_reads)

    def max_epoch_reads_per_path(self) -> int:
        """Worst per-path redundancy this epoch (1 = perfectly cooperative)."""
        return max(self._epoch_reads.values(), default=0)

    # -- observability -----------------------------------------------------------
    def bytes_read(self) -> float:
        return sum(t.device.bytes_read() for t in self.targets)

    def bytes_written(self) -> float:
        return sum(t.device.bytes_written() for t in self.targets)

    def load_imbalance(self) -> float:
        """max/mean ratio of per-OST file counts (1.0 = perfectly even)."""
        counts = [t.file_count for t in self.targets]
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean > 0 else 1.0

    def __repr__(self) -> str:
        return (
            f"<DistributedFilesystem {self.name!r} targets={len(self.targets)} "
            f"files={len(self._files)}>"
        )
