"""OS page-cache model (file-granularity LRU).

DL training reads whole sample files, so the cache tracks whole files under a
byte budget with LRU eviction.  A hit is served at memory bandwidth with a
small fixed overhead; a miss falls through to the caller (which then reads
the device and inserts).

The experiments reproduce the paper with the cache *disabled by default*: on
ABCI the 138 GiB ImageNet training set was re-read from the SSD every epoch
at device speed (the baseline's flat ≈330 MiB/s per-epoch time shows no
page-cache amplification — consistent with job-isolated memory limits on the
supercomputer).  The cache exists so ablation benchmarks can explore the
"dataset fits in RAM" regime.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..simcore.resources import KeyedIndex
from ..telemetry import CounterSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator


class PageCache:
    """Byte-budgeted LRU cache keyed by file path.

    ``capacity_bytes = 0`` produces a pass-through cache where every lookup
    misses (the default experiment configuration).

    Entries live in the same O(1) keyed-index structure that backs the data
    plane's :class:`~repro.simcore.resources.KeyedStore`: a
    :class:`~repro.simcore.resources.KeyedIndex` gives dict-speed lookup
    plus the LRU ordering hooks (``touch`` on hit, ``pop_oldest`` to
    evict).
    """

    #: Copy rate for cache hits (bytes/s) — DDR4 single-stream memcpy class.
    MEMORY_BANDWIDTH = 6.0e9
    #: Fixed per-hit overhead (page lookup, syscall return) in seconds.
    HIT_OVERHEAD = 4e-6

    def __init__(self, sim: "Simulator", capacity_bytes: float = 0.0, name: str = "pagecache") -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        self.sim = sim
        self.name = name
        self.capacity_bytes = float(capacity_bytes)
        self._entries: KeyedIndex = KeyedIndex()  # path -> bytes
        self._used = 0.0
        self.counters = CounterSet()

    @property
    def used_bytes(self) -> float:
        return self._used

    def __contains__(self, path: str) -> bool:
        return path in self._entries

    def lookup(self, path: str) -> bool:
        """Check for ``path``; updates recency and hit/miss counters."""
        tel = self.sim.telemetry
        if path in self._entries:
            self._entries.touch(path)
            self.counters.add("hits")
            if tel is not None:
                tel.instant("cache.hit", f"storage.{self.name}", "storage", path=path)
                tel.registry.counter("storage.cache_lookups_total", cache=self.name, outcome="hit").inc()
            return True
        self.counters.add("misses")
        if tel is not None:
            tel.instant("cache.miss", f"storage.{self.name}", "storage", path=path)
            tel.registry.counter("storage.cache_lookups_total", cache=self.name, outcome="miss").inc()
        return False

    def hit_service_time(self, nbytes: float) -> float:
        """Time to serve ``nbytes`` from memory."""
        return self.HIT_OVERHEAD + nbytes / self.MEMORY_BANDWIDTH

    def insert(self, path: str, nbytes: float) -> None:
        """Insert a file, evicting LRU entries to fit; oversize files skip."""
        if nbytes > self.capacity_bytes:
            self.counters.add("uncacheable")
            return
        if path in self._entries:
            self._used -= self._entries.pop(path)
        while self._used + nbytes > self.capacity_bytes and self._entries:
            _, evicted = self._entries.pop_oldest()
            self._used -= evicted
            self.counters.add("evictions")
        self._entries.put(path, nbytes)
        self._used += nbytes

    def invalidate(self, path: str) -> None:
        if path in self._entries:
            self._used -= self._entries.pop(path)

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0.0

    def hit_rate(self) -> float:
        hits = self.counters.get("hits")
        total = hits + self.counters.get("misses")
        return hits / total if total > 0 else 0.0

    def __repr__(self) -> str:
        return (
            f"<PageCache {self.name!r} {self._used / 1e9:.2f}/"
            f"{self.capacity_bytes / 1e9:.2f} GB, {len(self._entries)} files>"
        )
