"""Simulated filesystem: a namespace of files over a block device + cache.

Only what the DL data path needs is modelled — metadata is in-memory and
free, reads are byte-accurate against stored sizes, and the page cache sits
in front of the device.  Writes exist so datasets can be "materialized"
through the same machinery the benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional

from ..simcore.errors import SimulationError
from ..simcore.event import Event, chain_result
from .cache import PageCache
from .device import BlockDevice

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator


class StorageError(SimulationError):
    """Base class for filesystem-level failures."""


class FileNotFound(StorageError):
    """The path does not exist."""


class FileExists(StorageError):
    """Attempt to create a path that already exists."""


class InvalidRead(StorageError):
    """Read outside the file's byte range with strict bounds checking."""


class TransientReadError(StorageError):
    """A read failed for a reason that may clear on retry.

    The *retryable* half of the storage error taxonomy: injected fault
    bursts, dropped backend RPCs, and media timeouts raise this; namespace
    errors (:class:`FileNotFound`, :class:`InvalidRead`) stay fatal.  The
    graceful-degradation machinery (producer respawn, serve-side retry)
    keys its retry decisions on this type.
    """


@dataclass(frozen=True)
class ReadFault:
    """What a fault hook may impose on one read: delay, failure, or both.

    ``extra_latency`` is served before the outcome is decided (a fault that
    fails *after* a timeout models a hung-then-errored backend request);
    ``error`` — typically a :class:`TransientReadError` — then fails the
    read, or ``None`` lets it proceed against the device.
    """

    error: Optional[Exception] = None
    extra_latency: float = 0.0

    def __post_init__(self) -> None:
        if self.extra_latency < 0:
            raise ValueError("extra_latency must be non-negative")


#: Hook signature: ``(path, nbytes) -> Optional[ReadFault]``.  Installed by
#: :class:`~repro.faults.FaultInjector`; ``None`` means "no fault".
FaultHook = Callable[[str, int], Optional[ReadFault]]


@dataclass
class SimFile:
    """Metadata for one simulated file."""

    path: str
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative file size for {self.path!r}")


class Filesystem:
    """A flat namespace of :class:`SimFile` objects on one device.

    The namespace is flat (paths are opaque strings) because the DL workload
    never does directory traversal on the hot path; ``list_prefix`` provides
    the single listing operation dataset catalogs need.
    """

    def __init__(
        self,
        sim: "Simulator",
        device: BlockDevice,
        cache: Optional[PageCache] = None,
        name: str = "fs",
    ) -> None:
        self.sim = sim
        self.device = device
        self.cache = cache if cache is not None else PageCache(sim, 0.0)
        self.name = name
        self._files: Dict[str, SimFile] = {}
        #: fault-injection seam: consulted per data read when installed
        self.fault_hook: Optional[FaultHook] = None

    # -- namespace ---------------------------------------------------------------
    def create(self, path: str, size: int) -> SimFile:
        """Register a file (metadata only — no I/O is simulated)."""
        if path in self._files:
            raise FileExists(path)
        f = SimFile(path, int(size))
        self._files[path] = f
        return f

    def create_many(self, entries: Iterable[tuple[str, int]]) -> None:
        for path, size in entries:
            self.create(path, size)

    def exists(self, path: str) -> bool:
        return path in self._files

    def stat(self, path: str) -> SimFile:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFound(path) from None

    def unlink(self, path: str) -> None:
        if path not in self._files:
            raise FileNotFound(path)
        del self._files[path]
        self.cache.invalidate(path)

    def list_prefix(self, prefix: str) -> List[str]:
        return sorted(p for p in self._files if p.startswith(prefix))

    @property
    def file_count(self) -> int:
        return len(self._files)

    def total_bytes(self) -> int:
        return sum(f.size for f in self._files.values())

    # -- data path --------------------------------------------------------------
    def read(self, path: str, offset: int = 0, length: Optional[int] = None) -> Event:
        """Read bytes from ``path``; event value = bytes actually read.

        ``length=None`` reads to EOF.  Reads are clamped at EOF (POSIX
        semantics); reading at or past EOF returns 0 bytes after a metadata
        round-trip.
        """
        meta = self.stat(path)
        if offset < 0:
            raise InvalidRead(f"negative offset {offset} for {path!r}")
        end = meta.size if length is None else min(offset + max(length, 0), meta.size)
        nbytes = max(end - offset, 0)

        done = Event(self.sim, name=f"fsread:{path}")

        def read_process():
            tel = self.sim.telemetry
            span = None
            if tel is not None:
                span = tel.begin(
                    "fs.read", f"storage.{self.name}", "storage", lane=True,
                    path=path, bytes=nbytes,
                )
            try:
                if nbytes == 0:
                    # Metadata-only: model a syscall round trip.
                    yield self.sim.timeout(1e-6)
                    if span is not None:
                        tel.end(span, outcome="empty")
                    return 0
                fault = self.fault_hook(path, nbytes) if self.fault_hook is not None else None
                if fault is not None:
                    if fault.extra_latency > 0:
                        yield self.sim.timeout(fault.extra_latency)
                    if fault.error is not None:
                        raise fault.error
                if self.cache.capacity_bytes > 0 and self.cache.lookup(path):
                    yield self.sim.timeout(self.cache.hit_service_time(nbytes))
                    if span is not None:
                        tel.end(span, outcome="cache-hit")
                    return nbytes
                yield self.device.read(nbytes)
                if self.cache.capacity_bytes > 0:
                    self.cache.insert(path, meta.size)
            except BaseException as exc:
                if span is not None:
                    tel.end(span, outcome="error", error=type(exc).__name__)
                raise
            if span is not None:
                tel.end(span, outcome="device")
            return nbytes

        proc = self.sim.process(read_process(), name=f"fsread:{path}")
        return chain_result(proc, done)

    def read_whole(self, path: str) -> Event:
        """Whole-file read (the DL sample-loading operation).

        The canonical whole-file spelling of the
        :class:`~repro.storage.backend.StorageBackend` protocol.
        """
        return self.read(path, 0, None)

    def write(self, path: str, nbytes: int, offset: int = 0) -> Event:
        """Write (extend) a file; event value = bytes written."""
        meta = self.stat(path)
        if offset < 0 or nbytes < 0:
            raise InvalidRead(f"invalid write range for {path!r}")
        done = Event(self.sim, name=f"fswrite:{path}")

        def write_process():
            tel = self.sim.telemetry
            span = None
            if tel is not None:
                span = tel.begin(
                    "fs.write", f"storage.{self.name}", "storage", lane=True,
                    path=path, bytes=nbytes,
                )
            try:
                if nbytes > 0:
                    yield self.device.write(nbytes)
                    meta.size = max(meta.size, offset + nbytes)
                    self.cache.invalidate(path)
                else:
                    yield self.sim.timeout(1e-6)
            except BaseException as exc:
                if span is not None:
                    tel.end(span, outcome="error", error=type(exc).__name__)
                raise
            if tel is not None:
                tel.registry.counter(
                    "storage.write_bytes_total", object=self.name
                ).inc(nbytes)
                tel.end(span, outcome="device")
            return nbytes

        proc = self.sim.process(write_process(), name=f"fswrite:{path}")
        return chain_result(proc, done)

    # -- observability ------------------------------------------------------------
    def bytes_read(self) -> float:
        """Cumulative bytes the device served for reads (cache hits excluded)."""
        return self.device.bytes_read()

    def bytes_written(self) -> float:
        return self.device.bytes_written()

    def __repr__(self) -> str:
        return f"<Filesystem {self.name!r} files={len(self._files)}>"
