"""Block-device model: a fluid bandwidth channel plus per-request latency.

A :class:`BlockDevice` serves read/write requests.  Each request pays a fixed
submission latency (seek/NVMe command overhead) and then streams its payload
through a :class:`~repro.storage.fluid.FairShareChannel`, whose saturating
capacity curve reproduces queue-depth throughput scaling.

Profiles are calibrated so that, on ~110 KiB ImageNet-sized files, a single
reader sustains ≈330 MiB/s and ≥4 concurrent readers approach the device's
aggregate ceiling — the regime measured in the paper on ABCI's Intel DC
P4600 (§V, Figs. 2–4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..simcore.event import Event, chain_result
from ..simcore.resources import Resource
from ..telemetry import CounterSet
from .fluid import FairShareChannel, saturating_capacity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator
    from ..simcore.random import RandomStreams

KiB = 1024
MiB = 1024**2
GiB = 1024**3


@dataclass(frozen=True)
class DeviceProfile:
    """Static performance parameters of a storage device.

    Attributes
    ----------
    max_read_bandwidth / max_write_bandwidth:
        Aggregate rate at high concurrency (bytes/s).
    read_kappa / write_kappa:
        Concurrency-knee parameter of the saturating capacity curve:
        one stream achieves ``max_bw / (1 + kappa)``.
    read_latency / write_latency:
        Fixed per-request submission latency (seconds).
    latency_jitter:
        Fractional stddev of lognormal latency noise (0 disables noise and
        makes the device fully deterministic).
    max_queue_depth:
        Requests beyond this limit queue before entering service.
    seek_concurrency:
        How many requests may be in the *latency* phase simultaneously.
        SSDs overlap command submissions freely (high); a spinning disk has
        one actuator, so seeks serialize (1) — without this, parallel
        readers would overlap seek time and a mechanical disk would appear
        to scale like flash.
    """

    name: str
    max_read_bandwidth: float
    max_write_bandwidth: float
    read_kappa: float
    write_kappa: float
    read_latency: float
    write_latency: float
    latency_jitter: float = 0.0
    max_queue_depth: int = 256
    seek_concurrency: int = 256
    #: Streaming bandwidth for large sequential reads.  Small-random-read
    #: throughput (``max_read_bandwidth``) is throttled by per-request
    #: filesystem work that large streaming reads amortize away — the
    #: asymmetry record-sharded formats (TFRecord) exploit.  0 means "same
    #: as max_read_bandwidth" (no sequential advantage).
    sequential_read_bandwidth: float = 0.0
    #: Reads at least this large use the sequential channel.
    large_read_threshold: int = 4 * 1024 * 1024
    #: Fraction of *random-read* bandwidth lost while at least one write is
    #: in flight (mixed-workload interference: SSD reads slow down behind
    #: program/erase cycles and shared controller queues).  Large
    #: sequential streams keep their own channel — the penalty models the
    #: small-random-read data path checkpoints actually contend with.
    #: 0 keeps reads and writes fully independent — the read-only
    #: calibration regime of the stock presets; the write-path experiments
    #: opt in explicitly.
    mixed_write_penalty: float = 0.0

    def __post_init__(self) -> None:
        if self.max_read_bandwidth <= 0 or self.max_write_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.read_latency < 0 or self.write_latency < 0:
            raise ValueError("latencies must be non-negative")
        if self.latency_jitter < 0:
            raise ValueError("latency_jitter must be non-negative")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.seek_concurrency < 1:
            raise ValueError("seek_concurrency must be >= 1")
        if self.sequential_read_bandwidth < 0:
            raise ValueError("sequential_read_bandwidth must be >= 0")
        if self.large_read_threshold < 1:
            raise ValueError("large_read_threshold must be >= 1")
        if not 0.0 <= self.mixed_write_penalty < 1.0:
            raise ValueError("mixed_write_penalty must be in [0, 1)")

    def effective_sequential_bandwidth(self) -> float:
        return self.sequential_read_bandwidth or self.max_read_bandwidth

    def single_stream_read_bandwidth(self) -> float:
        """Rate one lone reader gets from the fluid pool (before latency)."""
        return self.max_read_bandwidth / (1.0 + self.read_kappa)

    def effective_read_throughput(self, request_bytes: float, concurrency: int = 1) -> float:
        """Analytic per-stream throughput including request latency.

        Useful for calibration: solves the paper's "330 MiB/s single thread
        on 110 KiB files" anchor without running a simulation.
        """
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        agg = self.max_read_bandwidth * concurrency / (concurrency + self.read_kappa)
        per_stream = agg / concurrency
        per_request = self.read_latency + request_bytes / per_stream
        return request_bytes / per_request


# -- profile presets -----------------------------------------------------------
def intel_p4600() -> DeviceProfile:
    """The paper's 1.6 TiB Intel SSD DC P4600 (NVMe, XFS), as calibrated.

    Calibration anchors (paper §V):

    * one reader on ~113 KiB files sustains ≈341 MiB/s (TF-baseline moves
      138 GiB in ≈418 s/epoch);
    * 4 readers — PRISMA's tuned operating point — reach ≈790 MiB/s
      (PRISMA's ≈190-205 s LeNet epochs);
    * the through-filesystem random-read ceiling is ≈1.3 GiB/s (TF-opt's
      30 threads and PyTorch's 16 workers both land there — spec sequential
      bandwidth is 3.2 GB/s, but small random files through XFS pay per-file
      overheads).

    The marginal gains per added thread (+61 %, +25 %, +15 %, +9 %, …)
    position the auto-tuner's knee at t=4, matching Fig. 3.
    """
    return DeviceProfile(
        name="intel-p4600-1.6tb",
        max_read_bandwidth=1387 * MiB,
        max_write_bandwidth=1.20 * GiB,
        read_kappa=2.45,
        write_kappa=2.0,
        read_latency=50e-6,
        write_latency=30e-6,
        latency_jitter=0.0,
        max_queue_depth=128,
        sequential_read_bandwidth=3.2 * GiB,  # spec streaming rate
    )


def sata_hdd() -> DeviceProfile:
    """A 7.2k RPM SATA disk: seek-dominated, parallelism barely helps."""
    return DeviceProfile(
        name="sata-hdd-7200",
        max_read_bandwidth=180 * MiB,
        max_write_bandwidth=160 * MiB,
        read_kappa=0.15,
        write_kappa=0.15,
        read_latency=8e-3,
        write_latency=9e-3,
        latency_jitter=0.0,
        max_queue_depth=32,
        seek_concurrency=1,  # one actuator: seeks serialize
    )


def nvme_gen4() -> DeviceProfile:
    """A modern gen4 NVMe: high ceiling, needs deep queues to saturate."""
    return DeviceProfile(
        name="nvme-gen4",
        max_read_bandwidth=6.8 * GiB,
        max_write_bandwidth=5.0 * GiB,
        read_kappa=5.0,
        write_kappa=4.0,
        read_latency=80e-6,
        write_latency=15e-6,
        latency_jitter=0.0,
        max_queue_depth=512,
    )


def ramdisk() -> DeviceProfile:
    """tmpfs-like: memory bandwidth, negligible latency."""
    return DeviceProfile(
        name="ramdisk",
        max_read_bandwidth=12 * GiB,
        max_write_bandwidth=12 * GiB,
        read_kappa=0.3,
        write_kappa=0.3,
        read_latency=2e-6,
        write_latency=2e-6,
        latency_jitter=0.0,
        max_queue_depth=4096,
    )


PROFILES = {
    "intel-p4600": intel_p4600,
    "sata-hdd": sata_hdd,
    "nvme-gen4": nvme_gen4,
    "ramdisk": ramdisk,
}


class BlockDevice:
    """A simulated block device executing read/write requests.

    Reads and writes share nothing but the queue-depth budget in this model
    (DL training is read-dominated; the paper's workload issues no writes on
    the data path), so each direction gets its own fluid channel.
    """

    def __init__(
        self,
        sim: "Simulator",
        profile: Optional[DeviceProfile] = None,
        streams: Optional["RandomStreams"] = None,
        name: str = "dev0",
    ) -> None:
        self.sim = sim
        self.profile = profile or intel_p4600()
        self.name = name
        self._read_channel = FairShareChannel(
            sim,
            saturating_capacity(self.profile.max_read_bandwidth, self.profile.read_kappa),
            name=f"{name}.read",
            max_concurrency=self.profile.max_queue_depth,
        )
        self._write_channel = FairShareChannel(
            sim,
            saturating_capacity(self.profile.max_write_bandwidth, self.profile.write_kappa),
            name=f"{name}.write",
            max_concurrency=self.profile.max_queue_depth,
        )
        # Large streaming reads amortize per-request filesystem work and
        # run at the device's spec sequential rate on their own channel.
        self._seq_read_channel = FairShareChannel(
            sim,
            saturating_capacity(self.profile.effective_sequential_bandwidth(), 0.2),
            name=f"{name}.seqread",
            max_concurrency=self.profile.max_queue_depth,
        )
        self._latency_rng: Optional[np.random.Generator] = None
        if streams is not None and self.profile.latency_jitter > 0:
            self._latency_rng = streams.stream(f"device.{name}.latency")
        # Requests in the latency (seek/submission) phase hold one of these
        # slots; an HDD profile sets a single slot so seeks serialize.
        self._seek_slots: Optional[Resource] = None
        if self.profile.seek_concurrency < self.profile.max_queue_depth:
            self._seek_slots = Resource(
                sim, capacity=self.profile.seek_concurrency, name=f"{name}.seek"
            )
        self.counters = CounterSet()
        #: current read-bandwidth scale (1.0 = healthy; see degrade_reads)
        self.read_degradation = 1.0
        #: writes currently in flight (drives mixed-workload interference)
        self._writes_in_flight = 0

    # -- helpers --------------------------------------------------------------
    def _latency(self, base: float) -> float:
        if base <= 0:
            return 0.0
        if self._latency_rng is None or self.profile.latency_jitter <= 0:
            return base
        # Lognormal noise with unit median keeps latency positive.
        sigma = self.profile.latency_jitter
        return base * float(self._latency_rng.lognormal(mean=0.0, sigma=sigma))

    def _request(
        self,
        channel: FairShareChannel,
        latency: float,
        nbytes: float,
        weight: float,
        op: str = "read",
    ) -> Event:
        done = Event(self.sim, name=f"io:{self.name}")

        def io_process():
            tel = self.sim.telemetry
            span = None
            if tel is not None:
                span = tel.begin(
                    f"dev.{op}", f"storage.{self.name}", "storage", lane=True, bytes=float(nbytes)
                )
            try:
                lat = self._latency(latency)
                if lat > 0:
                    if self._seek_slots is not None:
                        # Queue-wait for the (possibly single) seek slot —
                        # nested on the request's own lane, which it owns
                        # exclusively until the outer span ends.
                        wait = tel.begin("dev.seek_wait", span.track, "storage") if tel else None
                        slot = yield self._seek_slots.request()
                        if wait is not None:
                            tel.end(wait)
                        yield self.sim.timeout(lat)
                        self._seek_slots.release(slot)
                    else:
                        yield self.sim.timeout(lat)
                service = tel.begin("dev.transfer", span.track, "storage") if tel else None
                duration = yield channel.transfer(nbytes, weight=weight)
                if service is not None:
                    tel.end(service)
            except BaseException:
                if span is not None:
                    tel.end(span, ok=False)
                raise
            if span is not None:
                tel.end(span, ok=True)
            return lat + duration

        proc = self.sim.process(io_process(), name=f"io:{self.name}")
        return chain_result(proc, done)

    # -- public API -------------------------------------------------------------
    def read(self, nbytes: float, weight: float = 1.0) -> Event:
        """Read ``nbytes``; the event value is the total service time.

        Reads of at least ``large_read_threshold`` bytes stream at the
        sequential rate (one request, no per-file overhead amplification).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.counters.add("reads")
        self.counters.add("read_bytes", nbytes)
        if nbytes >= self.profile.large_read_threshold:
            self.counters.add("sequential_reads")
            return self._request(
                self._seq_read_channel, self.profile.read_latency, nbytes, weight, op="seqread"
            )
        return self._request(
            self._read_channel, self.profile.read_latency, nbytes, weight, op="read"
        )

    def write(self, nbytes: float, weight: float = 1.0) -> Event:
        """Write ``nbytes``; the event value is the total service time.

        On profiles with a ``mixed_write_penalty``, reads run at reduced
        bandwidth while any write is in flight (and recover when the last
        one lands) — the read/write interference checkpoint bursts inflict
        on the data path.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.counters.add("writes")
        self.counters.add("write_bytes", nbytes)
        request = self._request(
            self._write_channel, self.profile.write_latency, nbytes, weight, op="write"
        )
        if self.profile.mixed_write_penalty > 0:
            self._writes_in_flight += 1
            if self._writes_in_flight == 1:
                self._apply_read_capacity()
            request.add_callback(self._write_landed)
        return request

    def _write_landed(self, _ev: Event) -> None:
        self._writes_in_flight -= 1
        if self._writes_in_flight == 0:
            self._apply_read_capacity()

    def _apply_read_capacity(self) -> None:
        """Recompute read bandwidth from degradation x write interference."""
        scale = self.read_degradation
        if self._writes_in_flight > 0:
            scale *= 1.0 - self.profile.mixed_write_penalty
        self._read_channel.set_capacity_fn(
            saturating_capacity(
                self.profile.max_read_bandwidth * scale, self.profile.read_kappa
            )
        )

    def degrade_reads(self, factor: float) -> None:
        """Scale read bandwidth by ``factor`` at run time (fault injection).

        Models device wear-out, thermal throttling, or a noisy neighbour;
        the adaptivity tests use it to show the control loop re-converging,
        and :class:`~repro.faults.FaultInjector` drives slowdown windows
        through it.  The factor is absolute (relative to the profile), not
        cumulative, so overlapping windows are last-writer-wins.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        self.read_degradation = factor
        self._apply_read_capacity()

    def restore_reads(self) -> None:
        """Undo :meth:`degrade_reads`: back to the profile's full bandwidth."""
        self.degrade_reads(1.0)

    # -- observability ------------------------------------------------------------
    @property
    def active_reads(self) -> int:
        return self._read_channel.active_count

    @property
    def read_concurrency_gauge(self):
        return self._read_channel.concurrency

    def bytes_read(self) -> float:
        return self._read_channel.bytes_served + self._seq_read_channel.bytes_served

    def bytes_written(self) -> float:
        return self._write_channel.bytes_served

    def __repr__(self) -> str:
        return f"<BlockDevice {self.name!r} profile={self.profile.name!r}>"
