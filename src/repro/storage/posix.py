"""POSIX-style file API over a simulated filesystem.

This layer is the *interception seam* the paper builds on: DL frameworks
issue ``open``/``pread``/``read``/``close`` against a :class:`PosixLayer`,
and PRISMA's data-plane stage substitutes its own implementation of the same
interface (paper §IV: "replaced the pread invocation with Prisma.read —
10 LoC").  Anything that speaks :class:`PosixLike` can be transparently
rerouted through an SDS stage.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from ..simcore.event import Event, chain_result
from .filesystem import StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator
    from .backend import StorageBackend


class BadFileDescriptor(StorageError):
    """Operation on a closed or never-opened descriptor."""


class PosixLike(abc.ABC):
    """The minimal POSIX surface the DL data path uses.

    All data operations return kernel events (they take simulated time);
    ``open``/``close`` are treated as free metadata operations, which is a
    deliberate simplification — at 1.28 M files per epoch an ``open`` costs
    microseconds against a ~300 µs read and does not change any result shape.
    """

    @abc.abstractmethod
    def open(self, path: str) -> int:
        """Open for reading; returns a file descriptor."""

    @abc.abstractmethod
    def pread(self, fd: int, length: int, offset: int) -> Event:
        """Positional read; event value = bytes read."""

    @abc.abstractmethod
    def read(self, fd: int, length: int) -> Event:
        """Sequential read advancing the descriptor offset."""

    @abc.abstractmethod
    def close(self, fd: int) -> None:
        """Release the descriptor."""

    @abc.abstractmethod
    def fstat_size(self, fd: int) -> int:
        """Size in bytes of the open file."""


@dataclass
class _OpenFile:
    path: str
    offset: int = 0


class PosixLayer(PosixLike):
    """Direct (un-intercepted) POSIX access to any storage backend.

    Only the protocol's ``stat`` and ``read`` operations are used, so the
    same facade serves a local :class:`~repro.storage.filesystem.Filesystem`,
    a :class:`~repro.storage.distributed.DistributedFilesystem`, or an
    :class:`~repro.storage.object_store.ObjectStore` (ranged GETs back
    ``pread``) — frameworks keep their POSIX habits over all of them.
    """

    def __init__(self, sim: "Simulator", fs: "StorageBackend") -> None:
        self.sim = sim
        self.fs = fs
        self._next_fd = 3  # 0/1/2 reserved, as in the real table
        self._open: Dict[int, _OpenFile] = {}

    # -- descriptor management -------------------------------------------------
    def open(self, path: str) -> int:
        self.fs.stat(path)  # raises FileNotFound for missing paths
        fd = self._next_fd
        self._next_fd += 1
        self._open[fd] = _OpenFile(path)
        return fd

    def _entry(self, fd: int) -> _OpenFile:
        try:
            return self._open[fd]
        except KeyError:
            raise BadFileDescriptor(fd) from None

    def close(self, fd: int) -> None:
        self._entry(fd)
        del self._open[fd]

    def fstat_size(self, fd: int) -> int:
        return self.fs.stat(self._entry(fd).path).size

    @property
    def open_count(self) -> int:
        return len(self._open)

    # -- data path -----------------------------------------------------------------
    def pread(self, fd: int, length: int, offset: int) -> Event:
        entry = self._entry(fd)
        return self.fs.read(entry.path, offset, length)

    def read(self, fd: int, length: int) -> Event:
        entry = self._entry(fd)
        done = Event(self.sim, name=f"read:{entry.path}")
        inner = self.fs.read(entry.path, entry.offset, length)

        def advance(nbytes: int) -> int:
            entry.offset += nbytes
            return nbytes

        return chain_result(inner, done, advance)

    def read_whole(self, path: str) -> Event:
        """Convenience: open + read-to-EOF + close as one event."""
        fd = self.open(path)
        size = self.fstat_size(fd)
        done = Event(self.sim, name=f"readwhole:{path}")
        inner = self.pread(fd, size, 0)
        # Callbacks run in registration order: close before forwarding.
        inner.add_callback(lambda ev: self.close(fd))
        return chain_result(inner, done)
