"""Generalized processor-sharing fluid model for bandwidth resources.

Storage devices and network links are modelled as *fluid channels*: the set
of in-flight transfers shares an aggregate service rate that depends on the
concurrency level, ``B(k)``.  Each transfer ``i`` with weight ``w_i``
progresses at ``B(k) · w_i / Σw``.  This is the classic fluid approximation
of fair-queueing service and captures the two effects the paper's results
hinge on:

1. a single reader cannot saturate the device (``B(1) < B(k→∞)``), so
   parallel producer threads raise throughput;
2. returns diminish with concurrency, so a handful of threads reach the
   knee — PRISMA's auto-tuner stops at ~4 threads while TensorFlow's
   AUTOTUNE spends up to 30 for marginal gain (paper Fig. 3).

The implementation is event-driven and exact for piecewise-constant
concurrency: on every arrival/departure the remaining work of all transfers
is advanced and the next completion re-scheduled.  Cost is O(active) per
event, which is fine at the tens-of-streams scale of these experiments.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List

from ..simcore.errors import SimulationError
from ..simcore.event import Event
from ..telemetry import TimeWeightedGauge

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator

#: Remaining-bytes tolerance below which a transfer counts as complete.
_EPSILON = 1e-6


def saturating_capacity(max_rate: float, kappa: float) -> Callable[[int], float]:
    """Aggregate-rate curve ``B(k) = max_rate · k / (k + kappa)``.

    ``kappa`` controls how many concurrent streams are needed to approach
    ``max_rate``: ``B(1) = max_rate/(1+kappa)``; ``B(kappa) = max_rate/2``.
    ``kappa = 0`` degenerates to a constant-rate (perfectly parallel) channel.
    """
    if max_rate <= 0:
        raise ValueError("max_rate must be positive")
    if kappa < 0:
        raise ValueError("kappa must be non-negative")

    def capacity(k: int) -> float:
        if k <= 0:
            return 0.0
        return max_rate * k / (k + kappa)

    return capacity


def constant_capacity(rate: float) -> Callable[[int], float]:
    """A channel whose aggregate rate is independent of concurrency."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    return lambda k: rate if k > 0 else 0.0


@dataclass
class _ActiveTransfer:
    """Book-keeping for one in-flight transfer."""

    ident: int
    remaining: float
    weight: float
    event: Event
    started_at: float
    nbytes: float


class FairShareChannel:
    """A bandwidth resource shared by concurrent transfers.

    Parameters
    ----------
    sim:
        The simulator this channel lives in.
    capacity_fn:
        Maps the number of active transfers ``k`` to the aggregate service
        rate in bytes/second.  Must be non-decreasing in ``k``.
    max_concurrency:
        Transfers beyond this limit queue FIFO (models a device queue-depth
        or server thread-pool cap).
    """

    def __init__(
        self,
        sim: "Simulator",
        capacity_fn: Callable[[int], float],
        name: str = "channel",
        max_concurrency: float = math.inf,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity_fn = capacity_fn
        self.max_concurrency = max_concurrency
        self._ids = itertools.count()
        self._active: Dict[int, _ActiveTransfer] = {}
        self._pending: List[_ActiveTransfer] = []
        self._last_update = sim.now
        #: invalidation token for the scheduled completion callback
        self._timer_token = 0
        #: observable concurrency gauge (drives utilization plots)
        self.concurrency = TimeWeightedGauge(sim, 0, name=f"{name}.concurrency")
        # lifetime counters
        self.bytes_served = 0.0
        self.transfers_completed = 0

    # -- public API -----------------------------------------------------------
    def transfer(self, nbytes: float, weight: float = 1.0) -> Event:
        """Start moving ``nbytes``; the returned event triggers on completion.

        The event's value is the transfer duration (seconds spent from call
        to completion, including any queueing for a concurrency slot).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if weight <= 0:
            raise ValueError("weight must be positive")
        event = Event(self.sim, name=f"xfer:{self.name}")
        entry = _ActiveTransfer(
            ident=next(self._ids),
            remaining=float(nbytes),
            weight=float(weight),
            event=event,
            started_at=self.sim.now,
            nbytes=float(nbytes),
        )
        if nbytes == 0:
            event.succeed(0.0)
            return event
        self._advance()
        if len(self._active) < self.max_concurrency:
            self._admit(entry)
        else:
            self._pending.append(entry)
        self._reschedule()
        return event

    def set_capacity_fn(self, capacity_fn: Callable[[int], float]) -> None:
        """Swap the rate curve at run time (degradation/contention events).

        In-flight transfers are advanced under the old curve up to *now*,
        then continue under the new one — modelling a device slowdown, a
        neighbour stealing bandwidth, or a failed-over network path.
        """
        self._advance()
        self.capacity_fn = capacity_fn
        self._reschedule()

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def queued_count(self) -> int:
        return len(self._pending)

    def current_aggregate_rate(self) -> float:
        return self.capacity_fn(len(self._active)) if self._active else 0.0

    # -- internals --------------------------------------------------------------
    def _admit(self, entry: _ActiveTransfer) -> None:
        self._active[entry.ident] = entry
        self.concurrency.set(len(self._active))

    def _total_weight(self) -> float:
        return sum(t.weight for t in self._active.values())

    def _advance(self) -> None:
        """Progress all active transfers from ``_last_update`` to now."""
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._active:
            return
        rate = self.capacity_fn(len(self._active))
        total_w = self._total_weight()
        if total_w <= 0:
            return
        for entry in self._active.values():
            served = rate * (entry.weight / total_w) * dt
            entry.remaining = max(entry.remaining - served, 0.0)

    def _complete_finished(self) -> None:
        finished = [t for t in self._active.values() if t.remaining <= _EPSILON]
        for entry in finished:
            del self._active[entry.ident]
            self.bytes_served += entry.nbytes
            self.transfers_completed += 1
            entry.event.succeed(self.sim.now - entry.started_at)
        if finished:
            while self._pending and len(self._active) < self.max_concurrency:
                self._admit(self._pending.pop(0))
            self.concurrency.set(len(self._active))

    def _reschedule(self) -> None:
        """(Re)arm the completion timer for the earliest-finishing transfer."""
        self._timer_token += 1
        token = self._timer_token
        if not self._active:
            return
        rate = self.capacity_fn(len(self._active))
        if rate <= 0:
            raise SimulationError(f"channel {self.name!r} has zero rate with active transfers")
        total_w = self._total_weight()
        horizon = min(
            t.remaining / (rate * t.weight / total_w) for t in self._active.values()
        )
        # Clamp to a few ULPs of the clock: a sub-ULP horizon (a byte-scale
        # residual on a multi-GB/s channel) would re-arm at the *same*
        # simulated instant forever.  Over-shooting is harmless — _advance
        # floors remaining at zero.
        min_step = 4.0 * math.ulp(max(self.sim.now, 1e-9))
        timer = self.sim.timeout(max(horizon, min_step))
        timer.add_callback(lambda _ev, tok=token: self._on_timer(tok))

    def _on_timer(self, token: int) -> None:
        if token != self._timer_token:
            return  # superseded by a later arrival/departure
        self._advance()
        self._complete_finished()
        self._reschedule()

    def __repr__(self) -> str:
        return (
            f"<FairShareChannel {self.name!r} active={len(self._active)} "
            f"queued={len(self._pending)}>"
        )
