"""``repro.storage`` — the storage backend substrate.

Models the I/O stack under the DL frameworks: block devices with realistic
concurrency scaling (:mod:`.device`, :mod:`.fluid`), an LRU page cache
(:mod:`.cache`), a filesystem namespace (:mod:`.filesystem`), an S3-like
object store (:mod:`.object_store`), the POSIX interception seam PRISMA
hooks (:mod:`.posix`), and a shared distributed PFS for multi-tenant
scenarios (:mod:`.distributed`).

All backends implement the :class:`~repro.storage.backend.StorageBackend`
protocol (:mod:`.backend`), and :func:`~repro.storage.backend.build_backend`
constructs any of them from a validated
:class:`~repro.storage.backend.BackendConfig`.
"""

from .backend import (
    BACKEND_KINDS,
    BackendConfig,
    SampleSource,
    StorageBackend,
    build_backend,
    validate_byte_count,
)
from .cache import PageCache
from .device import (
    GiB,
    KiB,
    MiB,
    PROFILES,
    BlockDevice,
    DeviceProfile,
    intel_p4600,
    nvme_gen4,
    ramdisk,
    sata_hdd,
)
from .distributed import DistributedFilesystem, StorageTarget
from .filesystem import (
    FaultHook,
    FileExists,
    FileNotFound,
    Filesystem,
    InvalidRead,
    ReadFault,
    SimFile,
    StorageError,
    TransientReadError,
)
from .fluid import FairShareChannel, constant_capacity, saturating_capacity
from .object_store import (
    OBJECT_PROFILES,
    ObjectStore,
    ObjectStoreProfile,
    premium_object,
    s3_like,
)
from .posix import BadFileDescriptor, PosixLayer, PosixLike

__all__ = [
    "BACKEND_KINDS",
    "BackendConfig",
    "BadFileDescriptor",
    "BlockDevice",
    "DeviceProfile",
    "DistributedFilesystem",
    "FairShareChannel",
    "FaultHook",
    "FileExists",
    "FileNotFound",
    "Filesystem",
    "GiB",
    "InvalidRead",
    "KiB",
    "MiB",
    "OBJECT_PROFILES",
    "ObjectStore",
    "ObjectStoreProfile",
    "PROFILES",
    "PageCache",
    "PosixLayer",
    "PosixLike",
    "ReadFault",
    "SampleSource",
    "SimFile",
    "StorageBackend",
    "StorageError",
    "StorageTarget",
    "TransientReadError",
    "build_backend",
    "constant_capacity",
    "intel_p4600",
    "nvme_gen4",
    "premium_object",
    "ramdisk",
    "s3_like",
    "sata_hdd",
    "saturating_capacity",
    "validate_byte_count",
]
