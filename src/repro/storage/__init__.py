"""``repro.storage`` — the storage backend substrate.

Models the I/O stack under the DL frameworks: block devices with realistic
concurrency scaling (:mod:`.device`, :mod:`.fluid`), an LRU page cache
(:mod:`.cache`), a filesystem namespace (:mod:`.filesystem`), the POSIX
interception seam PRISMA hooks (:mod:`.posix`), and a shared distributed
PFS for multi-tenant scenarios (:mod:`.distributed`).
"""

from .cache import PageCache
from .device import (
    GiB,
    KiB,
    MiB,
    PROFILES,
    BlockDevice,
    DeviceProfile,
    intel_p4600,
    nvme_gen4,
    ramdisk,
    sata_hdd,
)
from .distributed import DistributedFilesystem, StorageTarget
from .filesystem import (
    FaultHook,
    FileExists,
    FileNotFound,
    Filesystem,
    InvalidRead,
    ReadFault,
    SimFile,
    StorageError,
    TransientReadError,
)
from .fluid import FairShareChannel, constant_capacity, saturating_capacity
from .posix import BadFileDescriptor, PosixLayer, PosixLike

__all__ = [
    "BadFileDescriptor",
    "BlockDevice",
    "DeviceProfile",
    "DistributedFilesystem",
    "FairShareChannel",
    "FaultHook",
    "FileExists",
    "FileNotFound",
    "Filesystem",
    "GiB",
    "InvalidRead",
    "KiB",
    "MiB",
    "PROFILES",
    "PageCache",
    "PosixLayer",
    "PosixLike",
    "ReadFault",
    "SimFile",
    "StorageError",
    "StorageTarget",
    "TransientReadError",
    "constant_capacity",
    "intel_p4600",
    "nvme_gen4",
    "ramdisk",
    "sata_hdd",
    "saturating_capacity",
]
