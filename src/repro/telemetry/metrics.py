"""The metrics registry: labelled counters, gauges, and histograms.

One registry per :class:`~repro.telemetry.hub.Telemetry` hub (or standalone).
Instruments are interned by ``(name, labels)`` so repeated lookups on a hot
path return the same object; callers that care about the last few
nanoseconds should still cache the instrument reference.

A disabled registry hands out shared no-op instruments, so instrumented
code pays one dict lookup at *creation* and nothing per observation —
"near-zero cost when disabled".
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """A value that can move both ways."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A distribution of observations (exact up to ``max_samples``).

    Keeps raw samples (bounded) plus running count/sum/min/max, so small
    runs get exact percentiles and unbounded runs keep O(1) memory once the
    sample cap is hit (later observations still update the running stats).
    """

    __slots__ = ("name", "labels", "count", "total", "minimum", "maximum", "_samples", "max_samples")

    def __init__(self, name: str, labels: _LabelKey = (), max_samples: int = 100_000) -> None:
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._samples: List[float] = []
        self.max_samples = max_samples

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self._samples) < self.max_samples:
            self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples."""
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(int(q / 100.0 * len(ordered)), len(ordered) - 1)
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.maximum,
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: D102 - no-op
        pass

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass

    def dec(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: D102 - no-op
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class MetricsRegistry:
    """Interned, labelled instruments with a single collection point."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[Tuple[str, str, _LabelKey], object] = {}

    def _intern(self, kind: str, factory, name: str, labels: Dict[str, object]):
        key = (kind, name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = factory(name, key[2])
            self._instruments[key] = inst
        return inst

    def counter(self, name: str, **labels: object) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        return self._intern("counter", Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        return self._intern("gauge", Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        return self._intern("histogram", Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[object]:
        return iter(self._instruments.values())

    def get(self, kind: str, name: str, **labels: object) -> Optional[object]:
        """Look up an existing instrument without creating it."""
        return self._instruments.get((kind, name, _label_key(labels)))

    def collect(self) -> List[Dict[str, object]]:
        """Deterministic flat dump of every instrument's current state."""
        rows: List[Dict[str, object]] = []
        for (kind, name, labels), inst in sorted(
            self._instruments.items(), key=lambda kv: kv[0]
        ):
            row: Dict[str, object] = {
                "kind": kind,
                "name": name,
                "labels": dict(labels),
            }
            if isinstance(inst, Histogram):
                row.update(inst.summary())
            else:
                row["value"] = inst.value  # type: ignore[attr-defined]
            rows.append(row)
        return rows
