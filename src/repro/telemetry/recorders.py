"""Latency recording at distribution granularity.

Previously homed in ``repro.metrics.timeseries``; now part of the unified
telemetry subsystem so the stage, the live data plane, and the experiments
all feed the same recorder type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of recorded request latencies (seconds)."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    maximum: float

    def row(self) -> str:
        return (
            f"n={self.count} mean={self.mean * 1e6:.0f}us "
            f"p50={self.p50 * 1e6:.0f}us p90={self.p90 * 1e6:.0f}us "
            f"p99={self.p99 * 1e6:.0f}us max={self.maximum * 1e6:.0f}us"
        )


class LatencyRecorder:
    """Append-only record of ``(completion_time, latency)`` observations.

    Bounded by ``max_samples`` with uniform reservoir downsampling so
    indefinitely long runs can keep a recorder attached.
    """

    def __init__(self, name: str = "latency", max_samples: int = 200_000) -> None:
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.name = name
        self.max_samples = max_samples
        self._times: List[float] = []
        self._values: List[float] = []
        self._seen = 0
        self._rng = np.random.default_rng(0)

    def record(self, time: float, latency: float) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self._seen += 1
        if len(self._values) < self.max_samples:
            self._times.append(time)
            self._values.append(latency)
            return
        # Reservoir sampling keeps a uniform subset of the full stream.
        slot = int(self._rng.integers(0, self._seen))
        if slot < self.max_samples:
            self._times[slot] = time
            self._values[slot] = latency

    def __len__(self) -> int:
        return len(self._values)

    @property
    def total_observed(self) -> int:
        return self._seen

    def summary(self) -> LatencySummary:
        if not self._values:
            raise ValueError(f"{self.name}: no latencies recorded")
        arr = np.asarray(self._values)
        return LatencySummary(
            count=self._seen,
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p90=float(np.percentile(arr, 90)),
            p99=float(np.percentile(arr, 99)),
            maximum=float(arr.max()),
        )

    def samples(self) -> List[Tuple[float, float]]:
        return list(zip(self._times, self._values))
