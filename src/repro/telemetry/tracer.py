"""The row-level tracer: append-only ``(time, category, payload)`` log.

Previously homed in ``repro.simcore.tracing``.  The class keeps its exact
legacy behaviour (records list, per-category index, ``enabled`` flag), and
additionally mirrors every record into an attached :class:`Telemetry` hub as
an instant event, so legacy ``Tracer`` call sites show up in Chrome-trace
exports without having to be rewritten.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterator, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator


@dataclass(frozen=True)
class TraceRecord:
    """One trace row."""

    time: float
    category: str
    payload: Any = None


class Tracer:
    """Append-only trace log with per-category indexing.

    Disabled tracers (``enabled=False``) drop records at near-zero cost so
    production-scale runs don't pay for telemetry they don't read.
    """

    def __init__(self, sim: "Simulator", enabled: bool = True) -> None:
        self.sim = sim
        self.enabled = enabled
        self.records: List[TraceRecord] = []
        self._by_category: Dict[str, List[TraceRecord]] = {}

    def record(self, category: str, payload: Any = None) -> None:
        if not self.enabled:
            return
        row = TraceRecord(self.sim.now, category, payload)
        self.records.append(row)
        self._by_category.setdefault(category, []).append(row)
        hub = getattr(self.sim, "telemetry", None)
        if hub is not None:
            hub.instant(category, track="tracer", cat="tracer", payload=repr(payload))

    def category(self, category: str) -> List[TraceRecord]:
        return self._by_category.get(category, [])

    def categories(self) -> List[str]:
        return sorted(self._by_category)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)
