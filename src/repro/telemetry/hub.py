"""The telemetry hub: one sink for spans, events, counters, and metrics.

A :class:`Telemetry` hub is attached to a :class:`~repro.simcore.kernel.Simulator`
(``telemetry.attach(sim)``); every instrumented layer then reaches it through
the kernel's ``sim.telemetry`` hook.  When no hub is attached the hook is
``None`` and instrumented code pays a single attribute load per operation —
that is the whole disabled-mode cost.

Design points:

* **Sim-time stamps.**  Spans are stamped with the attached simulator's
  clock, so a trace of a simulated run is exactly reproducible under a
  fixed seed (the export layer is careful to add no wall-clock anywhere).
* **Lanes.**  Chrome-trace ``B``/``E`` pairs must nest properly within one
  thread lane.  Concurrent same-track spans (parallel device requests,
  overlapping consumer reads) therefore allocate the lowest free *lane* of
  their track (``storage.dev0/0``, ``storage.dev0/1`` …) — deterministic,
  and each lane's spans are sequential by construction.
* **Context threading.**  :meth:`with_context` installs a
  :class:`~repro.telemetry.spans.TraceContext` for the duration of a
  synchronous call chain; spans begun meanwhile inherit its ``trace_id``.
  The stage uses this to stamp one request's identity across the
  prefetcher and buffer (and storage, on fallback reads).
* **Multi-run traces.**  Re-attaching to a new simulator under a new
  ``process`` label groups subsequent spans under a fresh Chrome pid —
  the CLI uses this to put each trial of an experiment grid in its own
  process lane of a single artifact.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set

from .metrics import MetricsRegistry
from .spans import PHASE_DURATION, PHASE_INSTANT, CounterSample, Span, TraceContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.event import Event
    from ..simcore.kernel import Simulator


class Telemetry:
    """Span tracing + metrics registry for one (or several) simulated runs."""

    def __init__(self, name: str = "repro", max_events: Optional[int] = None) -> None:
        self.name = name
        self.registry = MetricsRegistry()
        self.events: List[Span] = []
        self.counter_samples: List[CounterSample] = []
        #: events not recorded because ``max_events`` was reached
        self.dropped = 0
        self.max_events = max_events
        self._sim: Optional["Simulator"] = None
        self._process = "main"
        self._processes: List[str] = []
        self._next_trace_id = 0
        self._next_seq = 0
        self._ctx_stack: List[TraceContext] = []
        #: per-track busy lane indices (for nested-safe B/E export)
        self._lanes: Dict[str, Set[int]] = {}

    # -- lifecycle ----------------------------------------------------------------
    def attach(self, sim: "Simulator", process: Optional[str] = None) -> "Telemetry":
        """Install this hub as ``sim.telemetry``; later spans use its clock.

        ``process`` labels the run (one Chrome pid per distinct label);
        re-attaching to a fresh simulator starts a new process group while
        keeping everything already recorded.
        """
        if self._sim is not None and self._sim is not sim:
            self.detach()
        self._sim = sim
        sim.telemetry = self
        if process is not None:
            self._process = process
        if self._process not in self._processes:
            self._processes.append(self._process)
        return self

    def detach(self) -> None:
        """Disconnect from the current simulator (its hook returns to None)."""
        if self._sim is not None:
            self._sim.telemetry = None
            self._sim = None

    @property
    def now(self) -> float:
        return self._sim.now if self._sim is not None else 0.0

    @property
    def process(self) -> str:
        return self._process

    def processes(self) -> List[str]:
        return list(self._processes)

    # -- trace contexts ---------------------------------------------------------
    def new_context(self, path: Optional[str] = None) -> TraceContext:
        ctx = TraceContext(self._next_trace_id, path)
        self._next_trace_id += 1
        return ctx

    @contextmanager
    def with_context(self, ctx: TraceContext) -> Iterator[TraceContext]:
        """Make ``ctx`` current for spans begun inside the block."""
        self._ctx_stack.append(ctx)
        try:
            yield ctx
        finally:
            self._ctx_stack.pop()

    @property
    def current_context(self) -> Optional[TraceContext]:
        return self._ctx_stack[-1] if self._ctx_stack else None

    # -- span recording -----------------------------------------------------------
    def _seq(self) -> int:
        self._next_seq += 1
        return self._next_seq

    def _record(self, span: Span) -> bool:
        span.seq = self._seq()
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped += 1
            return False
        self.events.append(span)
        return True

    def _alloc_lane(self, track: str) -> str:
        busy = self._lanes.setdefault(track, set())
        lane = 0
        while lane in busy:
            lane += 1
        busy.add(lane)
        return f"{track}/{lane}"

    def begin(
        self,
        name: str,
        track: str,
        cat: str = "misc",
        ctx: Optional[TraceContext] = None,
        lane: bool = False,
        **args: object,
    ) -> Span:
        """Open a span on ``track`` at the current sim time.

        ``lane=True`` requests a private sub-lane of the track so that
        concurrent spans export as properly nested B/E pairs; the lane is
        released by :meth:`end`.
        """
        if ctx is None:
            ctx = self.current_context
        span = Span(
            name=name,
            track=self._alloc_lane(track) if lane else track,
            category=cat,
            process=self._process,
            start=self.now,
            trace_id=None if ctx is None else ctx.trace_id,
            args=dict(args),
        )
        self._record(span)
        return span

    def end(self, span: Span, **args: object) -> Span:
        """Close ``span`` at the current sim time (idempotence not required)."""
        span.end = self.now
        span.end_seq = self._seq()
        if args:
            span.args.update(args)
        base, sep, lane = span.track.rpartition("/")
        if sep and lane.isdigit():
            busy = self._lanes.get(base)
            if busy is not None:
                busy.discard(int(lane))
        return span

    def end_on(self, span: Span, event: "Event", **args: object) -> "Event":
        """Close ``span`` when ``event`` settles (annotated with its outcome)."""
        event.add_callback(lambda ev: self.end(span, ok=ev.ok, **args))
        return event

    @contextmanager
    def span(
        self,
        name: str,
        track: str,
        cat: str = "misc",
        ctx: Optional[TraceContext] = None,
        lane: bool = False,
        **args: object,
    ) -> Iterator[Span]:
        """Synchronous span: ``with tel.span("decide", "control", "control"): ...``"""
        s = self.begin(name, track, cat, ctx=ctx, lane=lane, **args)
        try:
            yield s
        finally:
            self.end(s)

    def instant(
        self,
        name: str,
        track: str,
        cat: str = "misc",
        ctx: Optional[TraceContext] = None,
        **args: object,
    ) -> Span:
        """A point event (cache hit, policy decision, fault fired …)."""
        if ctx is None:
            ctx = self.current_context
        now = self.now
        span = Span(
            name=name,
            track=track,
            category=cat,
            process=self._process,
            start=now,
            end=now,
            phase=PHASE_INSTANT,
            trace_id=None if ctx is None else ctx.trace_id,
            args=dict(args),
        )
        self._record(span)
        span.end_seq = span.seq  # instants have a single edge
        return span

    def sample(self, name: str, value: float) -> None:
        """Record one point of a numeric series (Chrome counter track)."""
        self.counter_samples.append(
            CounterSample(
                name=name,
                process=self._process,
                time=self.now,
                value=float(value),
                seq=self._seq(),
            )
        )

    # -- views -------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def spans(self, category: Optional[str] = None) -> List[Span]:
        """Duration spans (optionally of one category), open ones included."""
        return [
            e
            for e in self.events
            if e.phase == PHASE_DURATION and (category is None or e.category == category)
        ]

    def instants(self, category: Optional[str] = None) -> List[Span]:
        return [
            e
            for e in self.events
            if e.phase == PHASE_INSTANT and (category is None or e.category == category)
        ]

    def categories(self) -> List[str]:
        seen: List[str] = []
        for e in self.events:
            if e.category not in seen:
                seen.append(e.category)
        return sorted(seen)

    def tracks(self) -> List[str]:
        seen: List[str] = []
        for e in self.events:
            if e.track not in seen:
                seen.append(e.track)
        return seen

    def clear(self) -> None:
        """Drop recorded events/samples (instrument registry is kept)."""
        self.events.clear()
        self.counter_samples.clear()
        self.dropped = 0
        self._lanes.clear()
