"""``repro.telemetry`` — the unified observability layer.

One subsystem owns every measurement the simulator produces:

* **Spans** (:class:`Telemetry`, :class:`Span`, :class:`TraceContext`) —
  begin/end intervals and instant events on named tracks, stamped with
  sim-time, threaded across layers by trace contexts.
* **Metrics** (:class:`MetricsRegistry`, :class:`Counter`, :class:`Gauge`,
  :class:`Histogram`) — labelled instruments with near-zero disabled cost.
* **Sim-clock instruments** (:class:`TimeWeightedGauge`,
  :class:`CounterSet`) and **recorders** (:class:`LatencyRecorder`) —
  the pre-existing primitives, now homed here.
* **Exporters** (:func:`write_chrome_trace`, :func:`write_jsonl`,
  :func:`write_csv`) — Chrome/Perfetto trace JSON plus flat rows, all
  byte-deterministic under a fixed simulation seed.

Typical use::

    from repro.telemetry import Telemetry, write_chrome_trace

    tel = Telemetry()
    sim = Simulator(seed=7)
    tel.attach(sim, process="tf-prisma")
    ...  # build + run; every layer reports through sim.telemetry
    write_chrome_trace(tel, "trace.json")

The legacy homes (``repro.simcore.tracing``, ``repro.metrics``'s recorder
names, ``repro.core.control.MetricsSnapshot``) still import but emit
:class:`DeprecationWarning`; new code imports from here.
"""

from .export import (
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
    write_csv,
    write_jsonl,
    write_metrics_json,
)
from .hub import Telemetry
from .instruments import CounterSet, GaugeSample, TimeWeightedGauge
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .recorders import LatencyRecorder, LatencySummary
from .snapshot import MetricsSnapshot
from .spans import PHASE_DURATION, PHASE_INSTANT, CounterSample, Span, TraceContext
from .tracer import Tracer, TraceRecord

__all__ = [
    # hub + span model
    "Telemetry",
    "Span",
    "TraceContext",
    "CounterSample",
    "PHASE_DURATION",
    "PHASE_INSTANT",
    # metrics registry
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    # sim-clock instruments
    "TimeWeightedGauge",
    "GaugeSample",
    "CounterSet",
    # recorders
    "LatencyRecorder",
    "LatencySummary",
    "MetricsSnapshot",
    # row tracer
    "Tracer",
    "TraceRecord",
    # exporters
    "chrome_trace_events",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_csv",
    "write_jsonl",
    "write_metrics_json",
]
