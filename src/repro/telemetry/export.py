"""Trace and metrics exporters.

Two trace formats cover the two consumption modes:

* **Chrome trace** (:func:`write_chrome_trace`) — the Trace Event Format
  consumed by ``chrome://tracing`` and Perfetto.  Spans become ``B``/``E``
  duration pairs, instants become ``i`` events, counter samples become
  ``C`` events, and ``M`` metadata rows name the process/thread lanes.
* **Flat rows** (:func:`write_jsonl`, :func:`write_csv`) — one row per
  event for pandas/awk-style analysis.

Exports are byte-deterministic for a deterministic simulation: every field
comes from sim-time or stable ordering, keys are sorted, and no wall-clock
or id() values leak in.  Unfinished spans (a producer mid-fetch when the
run ends) are dropped from duration output and counted in the returned
stats so truncation is visible rather than silent.
"""

from __future__ import annotations

import csv
import json
from typing import TYPE_CHECKING, Dict, List, Optional

from .spans import PHASE_DURATION, PHASE_INSTANT, Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .hub import Telemetry

#: microseconds per simulated second (Chrome ``ts`` is in microseconds)
_US = 1e6


def _span_args(span: Span) -> Dict[str, object]:
    args: Dict[str, object] = dict(span.args)
    if span.trace_id is not None:
        args["trace_id"] = span.trace_id
    return args


def chrome_trace_events(telemetry: "Telemetry") -> List[Dict[str, object]]:
    """Render a hub's events as a Chrome ``traceEvents`` list.

    Process ids are assigned per hub process label (in attach order) and
    thread ids per track (in first-appearance order within the process),
    both announced via ``M`` metadata rows so viewers show names, not
    numbers.
    """
    pids: Dict[str, int] = {name: i + 1 for i, name in enumerate(telemetry.processes())}
    tids: Dict[tuple, int] = {}
    meta: List[Dict[str, object]] = []
    timed: List[tuple] = []  # ((ts, seq), event)

    def pid_for(process: str) -> int:
        pid = pids.get(process)
        if pid is None:
            pid = len(pids) + 1
            pids[process] = pid
        return pid

    def tid_for(process: str, track: str) -> int:
        key = (process, track)
        tid = tids.get(key)
        if tid is None:
            tid = len([k for k in tids if k[0] == process]) + 1
            tids[key] = tid
            meta.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid_for(process),
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        return tid

    for span in telemetry.events:
        pid = pid_for(span.process)
        tid = tid_for(span.process, span.track)
        if span.phase == PHASE_INSTANT:
            timed.append(
                (
                    (span.start * _US, span.seq),
                    {
                        "ph": "i",
                        "name": span.name,
                        "cat": span.category,
                        "pid": pid,
                        "tid": tid,
                        "ts": span.start * _US,
                        "s": "t",
                        "args": _span_args(span),
                    },
                )
            )
        elif span.finished:
            common = {"name": span.name, "cat": span.category, "pid": pid, "tid": tid}
            timed.append(
                (
                    (span.start * _US, span.seq),
                    {"ph": "B", "ts": span.start * _US, "args": _span_args(span), **common},
                )
            )
            timed.append(
                ((span.end * _US, span.end_seq), {"ph": "E", "ts": span.end * _US, **common})
            )

    for sample in telemetry.counter_samples:
        timed.append(
            (
                (sample.time * _US, sample.seq),
                {
                    "ph": "C",
                    "name": sample.name,
                    "pid": pid_for(sample.process),
                    "tid": 0,
                    "ts": sample.time * _US,
                    "args": {"value": sample.value},
                },
            )
        )

    # Metadata first, then (ts, emission seq).  Seq ties to the hub's
    # single-threaded emission order, so same-timestamp B/E edges stay
    # well-nested (zero-length spans in particular).
    timed.sort(key=lambda pair: pair[0])
    events: List[Dict[str, object]] = []
    for name, pid in pids.items():
        events.append(
            {"ph": "M", "name": "process_name", "pid": pid, "tid": 0, "args": {"name": name}}
        )
    events.extend(meta)
    events.extend(ev for _, ev in timed)
    return events


def write_chrome_trace(telemetry: "Telemetry", path: str) -> Dict[str, int]:
    """Write a Chrome/Perfetto-loadable JSON trace; returns export stats."""
    events = chrome_trace_events(telemetry)
    unfinished = sum(
        1 for s in telemetry.events if s.phase == PHASE_DURATION and not s.finished
    )
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.telemetry",
            "dropped_events": telemetry.dropped,
            "unfinished_spans": unfinished,
        },
    }
    with open(path, "w") as fh:
        fh.write(json.dumps(doc, sort_keys=True, separators=(",", ":")))
        fh.write("\n")
    return {
        "events": len(events),
        "unfinished_spans": unfinished,
        "dropped_events": telemetry.dropped,
    }


def _flat_rows(telemetry: "Telemetry") -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for span in telemetry.events:
        rows.append(
            {
                "kind": "instant" if span.phase == PHASE_INSTANT else "span",
                "name": span.name,
                "category": span.category,
                "process": span.process,
                "track": span.track,
                "start": span.start,
                "end": span.end,
                "duration": span.duration if span.finished else None,
                "trace_id": span.trace_id,
                "args": span.args,
            }
        )
    for sample in telemetry.counter_samples:
        rows.append(
            {
                "kind": "counter",
                "name": sample.name,
                "category": "counter",
                "process": sample.process,
                "track": sample.name,
                "start": sample.time,
                "end": sample.time,
                "duration": 0.0,
                "trace_id": None,
                "args": {"value": sample.value},
            }
        )
    rows.sort(key=lambda r: (r["start"], r["kind"], r["track"], r["name"]))
    return rows


def write_jsonl(telemetry: "Telemetry", path: str) -> int:
    """One JSON object per event/sample; returns the row count."""
    rows = _flat_rows(telemetry)
    with open(path, "w") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True, separators=(",", ":")))
            fh.write("\n")
    return len(rows)


_CSV_FIELDS = [
    "kind",
    "name",
    "category",
    "process",
    "track",
    "start",
    "end",
    "duration",
    "trace_id",
    "args",
]


def write_csv(telemetry: "Telemetry", path: str) -> int:
    """Flat CSV (args JSON-encoded in the last column); returns row count."""
    rows = _flat_rows(telemetry)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_CSV_FIELDS)
        writer.writeheader()
        for row in rows:
            out = dict(row)
            out["args"] = json.dumps(row["args"], sort_keys=True, separators=(",", ":"))
            writer.writerow(out)
    return len(rows)


def write_metrics_json(telemetry: "Telemetry", path: str) -> int:
    """Dump the metrics registry (``collect()`` rows) as pretty JSON."""
    rows = telemetry.registry.collect()
    with open(path, "w") as fh:
        json.dump(rows, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(rows)


def validate_chrome_trace(doc: Dict[str, object]) -> Optional[str]:
    """Structurally validate a Chrome-trace document; None if OK.

    Checks the fields viewers actually require (ph/pid/tid, ts on
    non-metadata rows) and that every ``B`` has a matching ``E`` per
    (pid, tid) lane.  Returns a description of the first problem found.
    """
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return "traceEvents missing or not a list"
    open_stacks: Dict[tuple, List[str]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return f"event {i} is not an object"
        ph = ev.get("ph")
        if ph not in ("B", "E", "i", "C", "M", "X"):
            return f"event {i}: unknown phase {ph!r}"
        for field in ("pid", "tid", "name"):
            if field not in ev:
                return f"event {i}: missing {field}"
        if ph != "M" and not isinstance(ev.get("ts"), (int, float)):
            return f"event {i}: missing numeric ts"
        lane = (ev["pid"], ev["tid"])
        if ph == "B":
            open_stacks.setdefault(lane, []).append(ev["name"])
        elif ph == "E":
            stack = open_stacks.get(lane)
            if not stack:
                return f"event {i}: E with no open B on lane {lane}"
            stack.pop()
    for lane, stack in open_stacks.items():
        if stack:
            return f"lane {lane}: unclosed B events {stack}"
    return None
