"""The control plane's monitoring record: :class:`MetricsSnapshot`.

The snapshot is what a data-plane optimization object reports per control
period.  It moved here (from ``repro.core.optimization``) so that every
measurement the controller reads flows through the one telemetry subsystem;
``repro.core`` re-exports it for the domain API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class MetricsSnapshot:
    """What an optimization object reports to the control plane."""

    time: float
    requests: float = 0.0
    hits: float = 0.0
    waits: float = 0.0
    buffer_level: int = 0
    buffer_capacity: int = 0
    producers_allocated: int = 0
    producers_active: float = 0.0
    bytes_fetched: float = 0.0
    queue_remaining: int = 0
    #: fault/recovery telemetry (counters; summed by :meth:`aggregate`)
    files_fetched: float = 0.0
    read_errors: float = 0.0
    producer_respawns: float = 0.0
    serve_retries: float = 0.0
    #: cross-epoch fetches claimed from a lookahead schedule (counter)
    lookahead_fetches: float = 0.0

    @classmethod
    def aggregate(cls, snapshots: "Sequence[MetricsSnapshot]") -> "MetricsSnapshot":
        """Combine the per-object snapshots of a multi-object stage.

        Counter-like fields (``requests``, ``hits``, ``waits``,
        ``bytes_fetched``) are summed across objects; gauge-like fields
        (buffer level/capacity, producer counts, queue backlog) take the
        last object's value (last-writer-wins, matching the stage's
        object order); ``time`` is the latest poll time.
        """
        if not snapshots:
            raise ValueError("aggregate() needs at least one snapshot")
        if len(snapshots) == 1:
            return snapshots[0]
        last = snapshots[-1]
        return cls(
            time=max(s.time for s in snapshots),
            requests=sum(s.requests for s in snapshots),
            hits=sum(s.hits for s in snapshots),
            waits=sum(s.waits for s in snapshots),
            buffer_level=last.buffer_level,
            buffer_capacity=last.buffer_capacity,
            producers_allocated=last.producers_allocated,
            producers_active=last.producers_active,
            bytes_fetched=sum(s.bytes_fetched for s in snapshots),
            queue_remaining=last.queue_remaining,
            files_fetched=sum(s.files_fetched for s in snapshots),
            read_errors=sum(s.read_errors for s in snapshots),
            producer_respawns=sum(s.producer_respawns for s in snapshots),
            serve_retries=sum(s.serve_retries for s in snapshots),
            lookahead_fetches=sum(s.lookahead_fetches for s in snapshots),
        )

    def error_rate(self, previous: Optional["MetricsSnapshot"] = None) -> float:
        """Fraction of producer fetch attempts that failed (since ``previous``).

        The degraded-mode policy's trigger signal: injected read-error
        bursts push this above threshold; it falls back to ~0 when the
        fault window closes.
        """
        errors, files = self.read_errors, self.files_fetched
        if previous is not None:
            errors -= previous.read_errors
            files -= previous.files_fetched
        attempts = errors + files
        return errors / attempts if attempts > 0 else 0.0

    def starvation(self, previous: Optional["MetricsSnapshot"] = None) -> float:
        """Fraction of consumer requests that stalled (since ``previous``)."""
        hits, waits = self.hits, self.waits
        if previous is not None:
            hits -= previous.hits
            waits -= previous.waits
        total = hits + waits
        return waits / total if total > 0 else 0.0
