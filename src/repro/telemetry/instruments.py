"""Sim-clock instruments: time-weighted gauges and counter bags.

These are the simulation-aware primitives the data plane has always used
(previously homed in ``repro.simcore.tracing``): a
:class:`TimeWeightedGauge` integrates a piecewise-constant value over
simulated time — it directly produces the paper's Figure 3 CDF — and a
:class:`CounterSet` is a named bag of monotonic counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore.kernel import Simulator


@dataclass
class GaugeSample:
    """A piecewise-constant segment ``[start, end)`` at ``value``."""

    start: float
    end: float
    value: float


class TimeWeightedGauge:
    """A value that changes at discrete times; reports time-in-state stats.

    Used to track "number of producer threads actively reading" — the gauge's
    :meth:`histogram` gives seconds spent at each level, and
    :meth:`time_fraction_at_or_below` reconstructs the paper's Figure 3 CDF.
    """

    def __init__(self, sim: "Simulator", initial: float = 0.0, name: str = "gauge") -> None:
        self.sim = sim
        self.name = name
        self._value = float(initial)
        self._since = sim.now
        self._start = sim.now
        #: seconds accumulated at each observed value
        self._time_at: Dict[float, float] = {}
        self._history: List[GaugeSample] = []
        self.record_history = False

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        now = self.sim.now
        if value == self._value:
            return
        self._flush(now)
        self._value = float(value)
        self._since = now

    def increment(self, delta: float = 1.0) -> None:
        self.set(self._value + delta)

    def decrement(self, delta: float = 1.0) -> None:
        self.set(self._value - delta)

    def _flush(self, now: float) -> None:
        duration = now - self._since
        if duration > 0:
            self._time_at[self._value] = self._time_at.get(self._value, 0.0) + duration
            if self.record_history:
                self._history.append(GaugeSample(self._since, now, self._value))

    def histogram(self) -> Dict[float, float]:
        """Seconds spent at each value, including the in-progress segment."""
        self._flush(self.sim.now)
        self._since = self.sim.now
        return dict(self._time_at)

    def total_time(self) -> float:
        return max(self.sim.now - self._start, 0.0)

    def time_fraction_at(self, value: float) -> float:
        hist = self.histogram()
        total = sum(hist.values())
        if total <= 0:
            return 0.0
        return hist.get(float(value), 0.0) / total

    def time_fraction_at_or_below(self, value: float) -> float:
        """CDF over time: fraction of elapsed time the gauge was <= value."""
        hist = self.histogram()
        total = sum(hist.values())
        if total <= 0:
            return 0.0
        return sum(t for v, t in hist.items() if v <= value) / total

    def mean(self) -> float:
        """Time-weighted mean value."""
        hist = self.histogram()
        total = sum(hist.values())
        if total <= 0:
            return self._value
        return sum(v * t for v, t in hist.items()) / total

    def max_seen(self) -> float:
        hist = self.histogram()
        candidates = list(hist) + [self._value]
        return max(candidates)

    def cdf_points(self) -> List[Tuple[float, float]]:
        """Sorted ``(value, cumulative time fraction)`` points."""
        hist = self.histogram()
        total = sum(hist.values())
        points: List[Tuple[float, float]] = []
        acc = 0.0
        for v in sorted(hist):
            acc += hist[v]
            points.append((v, acc / total if total > 0 else 0.0))
        return points


class CounterSet:
    """A named bag of monotonically increasing counters."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}

    def add(self, name: str, amount: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def get(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counters)

    def __getitem__(self, name: str) -> float:
        return self.get(name)
