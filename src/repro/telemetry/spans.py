"""Span primitives: what one timed (or instant) observation looks like.

A :class:`Span` is one interval on one *track* (a logical thread of
activity: a device, a producer, the control loop).  Spans carry a
``category`` naming the emitting layer — ``storage`` / ``buffer`` /
``prefetcher`` / ``control`` / ``stage`` — which is what lets the exporters
and tests ask "did every layer report?".

A :class:`TraceContext` is the request identity threaded from the stage's
POSIX surface down through the optimization objects and (on fallback reads)
into storage: spans emitted while a context is current inherit its
``trace_id``, so one consumer read can be followed across layers in the
exported trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Span phases (mirroring the Chrome-trace event phases they export to).
PHASE_DURATION = "X"  # a [start, end] interval (exported as a B/E pair)
PHASE_INSTANT = "i"  # a point event


@dataclass(frozen=True)
class TraceContext:
    """Identity of one request as it crosses layers."""

    trace_id: int
    path: Optional[str] = None


@dataclass
class Span:
    """One observation: an interval on a track, or an instant event."""

    name: str
    track: str
    category: str
    process: str
    start: float
    end: Optional[float] = None
    phase: str = PHASE_DURATION
    trace_id: Optional[int] = None
    args: Dict[str, Any] = field(default_factory=dict)
    #: hub emission order of the begin / end edges; break same-timestamp
    #: ties in exports so B/E pairs stay well-nested (zero-length spans!)
    seq: int = 0
    end_seq: int = 0

    @property
    def finished(self) -> bool:
        return self.phase == PHASE_INSTANT or self.end is not None

    @property
    def duration(self) -> float:
        if self.phase == PHASE_INSTANT:
            return 0.0
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tail = "…" if self.end is None else f"{self.duration:.6f}s"
        return f"<Span {self.category}/{self.name} @{self.start:.6f} {tail}>"


@dataclass(frozen=True)
class CounterSample:
    """One sample of a numeric series (exported as a Chrome counter event)."""

    name: str
    process: str
    time: float
    value: float
    seq: int = 0
