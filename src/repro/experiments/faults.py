"""Fault-sweep scenario: PRISMA under a storm of injected failures.

One simulated "epoch" of consumers reading through a PRISMA stage while a
:class:`~repro.faults.FaultPlan` fires every fault kind at the stack —
device slowdown, read-error burst, latency spike, producer crash, and
control-plane drops/delays.  The run demonstrates (and the chaos tests
assert) the graceful-degradation machinery end to end:

* no consumer hangs — every requested sample is served or fails loudly
  within a bounded simulated time;
* the degraded-mode policy shrinks ``(t, N)`` while errors spike and
  restores them once the window closes;
* throughput recovers after the last fault window.

The report's :meth:`FaultSweepReport.metrics_dict` is deliberately
deterministic (same seed + plan → byte-identical JSON), which the
determinism regression test relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import (
    DegradedModePolicy,
    PrismaAutotunePolicy,
    PrismaConfig,
    build_prisma,
)
from ..faults import (
    DEVICE_SLOWDOWN,
    LATENCY_SPIKE,
    PRODUCER_CRASH,
    READ_ERROR_BURST,
    RPC_DELAY,
    RPC_DROP,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from ..simcore import AllOf, AnyOf, Simulator
from ..simcore.random import RandomStreams
from ..storage.backend import BackendConfig, build_backend
from ..storage.posix import PosixLayer

KiB = 1024


def demo_plan(start: float = 0.1, span: float = 0.25) -> FaultPlan:
    """The default storm: one of every fault kind inside ``[start, start+span)``."""
    if start < 0 or span <= 0:
        raise ValueError("start must be >= 0 and span positive")
    return FaultPlan(
        [
            FaultEvent(DEVICE_SLOWDOWN, time=start, duration=span, severity=0.3),
            FaultEvent(
                READ_ERROR_BURST,
                time=start + 0.05 * span,
                duration=0.4 * span,
                severity=0.4,
            ),
            FaultEvent(RPC_DROP, time=start + 0.1 * span, duration=0.25 * span),
            FaultEvent(
                LATENCY_SPIKE,
                time=start + 0.3 * span,
                duration=0.3 * span,
                severity=2e-3,
            ),
            FaultEvent(PRODUCER_CRASH, time=start + 0.5 * span, severity=1),
            FaultEvent(
                RPC_DELAY,
                time=start + 0.6 * span,
                duration=0.3 * span,
                severity=1e-3,
            ),
        ]
    )


@dataclass
class FaultSweepReport:
    """Everything one fault-sweep run produces."""

    seed: int
    n_files: int
    completed: bool
    sim_seconds: float
    files_served: int
    serve_failures: int
    #: files/s in the three phases split by the plan's fault window
    throughput_before: float
    throughput_during: float
    throughput_after: float
    degraded_engagements: int
    degraded_cycles: int
    injector: Dict[str, float] = field(default_factory=dict)
    prefetcher: Dict[str, float] = field(default_factory=dict)
    control: Dict[str, float] = field(default_factory=dict)
    #: (time, path, exception type) of every failed serve
    failures: List[Tuple[float, str, str]] = field(default_factory=list)

    def metrics_dict(self) -> Dict[str, object]:
        """Deterministic, JSON-ready summary (the determinism-test surface)."""
        return {
            "seed": self.seed,
            "n_files": self.n_files,
            "completed": self.completed,
            "sim_seconds": self.sim_seconds,
            "files_served": self.files_served,
            "serve_failures": self.serve_failures,
            "throughput_before": self.throughput_before,
            "throughput_during": self.throughput_during,
            "throughput_after": self.throughput_after,
            "degraded_engagements": self.degraded_engagements,
            "degraded_cycles": self.degraded_cycles,
            "injector": dict(sorted(self.injector.items())),
            "prefetcher": dict(sorted(self.prefetcher.items())),
            "control": dict(sorted(self.control.items())),
        }


def run_fault_sweep(
    seed: int = 0,
    n_files: int = 600,
    file_size: int = 112 * KiB,
    consumers: int = 2,
    consume_time: float = 1.5e-3,
    plan: Optional[FaultPlan] = None,
    control_period: float = 10e-3,
    time_limit: float = 60.0,
    telemetry=None,
) -> FaultSweepReport:
    """One PRISMA run under an injected fault storm.

    ``time_limit`` (simulated seconds) is the hang watchdog: a healthy run
    finishes in well under a second of simulated time, so hitting the limit
    means a consumer is stuck — reported as ``completed=False``, never as
    a test-suite hang.  ``telemetry`` is an optional
    :class:`repro.telemetry.Telemetry` hub recording the storm's spans.
    """
    if n_files < consumers or consumers < 1:
        raise ValueError("need at least one file per consumer")
    streams = RandomStreams(seed)
    sim = Simulator()
    if telemetry is not None:
        telemetry.attach(sim, process=f"fault-sweep/seed{seed}")
    fs = build_backend(sim, BackendConfig(device_profile="intel-p4600"), streams=streams)
    device = fs.device
    paths = [f"/data/train/{i:06d}" for i in range(n_files)]
    fs.create_many((p, file_size) for p in paths)
    posix = PosixLayer(sim, fs)

    policy = DegradedModePolicy(PrismaAutotunePolicy())
    stage, prefetcher, controller = build_prisma(
        sim, posix, PrismaConfig(control_period=control_period, policy=policy)
    )

    injector = FaultInjector(sim, streams=streams)
    injector.attach_device(device)
    injector.attach_filesystem(fs)
    injector.attach_prefetcher(prefetcher)
    for channel in controller.channels():
        injector.attach_channel(channel)
    plan = demo_plan() if plan is None else plan
    injector.install(plan)

    stage.load_epoch(paths)
    served: List[float] = []
    failures: List[Tuple[float, str, str]] = []

    def consumer(my_paths: List[str]):
        for path in my_paths:
            try:
                yield stage.read_whole(path)
            except Exception as exc:  # noqa: BLE001 - chaos: record and move on
                failures.append((sim.now, path, type(exc).__name__))
            else:
                served.append(sim.now)
            if consume_time > 0:
                yield sim.timeout(consume_time)

    procs = [
        sim.process(consumer(paths[c::consumers]), name=f"consumer{c}")
        for c in range(consumers)
    ]
    done = AllOf(sim, procs)
    sim.run(until=AnyOf(sim, [done, sim.timeout(time_limit)]))
    completed = done.triggered and done.ok
    controller.stop()

    # Phase throughput, split by the plan's overall fault window.
    fault_start = min((ev.time for ev in plan), default=0.0)
    fault_end = plan.horizon
    end = sim.now

    def rate(lo: float, hi: float) -> float:
        if hi <= lo:
            return 0.0
        return sum(1 for t in served if lo <= t < hi) / (hi - lo)

    report = FaultSweepReport(
        seed=seed,
        n_files=n_files,
        completed=completed,
        sim_seconds=end,
        files_served=len(served),
        serve_failures=len(failures),
        throughput_before=rate(0.0, fault_start),
        throughput_during=rate(fault_start, fault_end),
        throughput_after=rate(fault_end, end),
        degraded_engagements=len(policy.engage_times),
        degraded_cycles=policy.degraded_cycles,
        injector=injector.counters.as_dict(),
        prefetcher={
            "producer_crashes": float(prefetcher.producer_crashes),
            "producer_respawns": float(prefetcher.producer_respawns),
            "read_errors": float(prefetcher.read_errors),
            "serve_retries": float(prefetcher.serve_retries),
            "files_fetched": float(prefetcher.files_fetched),
            "final_producers": float(prefetcher.target_producers),
            "final_buffer_capacity": float(prefetcher.buffer.capacity),
        },
        control={
            "cycles": float(controller.cycles),
            "enforcements": float(controller.enforcements),
            "rpc_failures": float(controller.rpc_failures),
            "channel_retries": sum(
                ch.counters.get("retries") for ch in controller.channels()
            ),
            "channel_drops": sum(
                ch.counters.get("drops") for ch in controller.channels()
            ),
            "channel_timeouts": sum(
                ch.counters.get("timeouts") for ch in controller.channels()
            ),
        },
        failures=failures,
    )
    if telemetry is not None:
        telemetry.detach()
    return report


def format_fault_sweep(report: FaultSweepReport) -> str:
    """ASCII rendering for the ``repro faults-demo`` CLI command."""
    lines = [
        "fault sweep (seed=%d, %d files)" % (report.seed, report.n_files),
        "  completed:            %s" % ("yes" if report.completed else "NO — hang?"),
        "  simulated time:       %.3f s" % report.sim_seconds,
        "  served / failed:      %d / %d" % (report.files_served, report.serve_failures),
        "  throughput (files/s): before %.0f | during faults %.0f | after %.0f"
        % (report.throughput_before, report.throughput_during, report.throughput_after),
        "  degraded mode:        %d engagement(s), %d degraded cycle(s)"
        % (report.degraded_engagements, report.degraded_cycles),
        "  faults injected:      %d" % report.injector.get("faults_injected", 0),
    ]
    for key in sorted(report.injector):
        if key != "faults_injected":
            lines.append("    %-22s %g" % (key, report.injector[key]))
    lines.append("  prefetcher:")
    for key in sorted(report.prefetcher):
        lines.append("    %-22s %g" % (key, report.prefetcher[key]))
    lines.append("  control plane:")
    for key in sorted(report.control):
        lines.append("    %-22s %g" % (key, report.control[key]))
    return "\n".join(lines)
