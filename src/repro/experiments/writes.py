"""Write-path workloads: checkpoint traffic contending with the data path.

The read-only experiments (figures 2-4) leave out half the storage story:
real training jobs *write* — model checkpoints stream out of the trainer
while prefetch reads stream in, over the same device or object-store link.
This module runs the matrix the paper's decoupling argument predicts wins
on:

* **configs** (the storage deployment): ``posix-read`` (read-only control),
  ``posix-mixed`` (block device with read/write interference,
  checkpointing on), ``object-mixed`` (S3-like object store, checkpointing
  on);
* **setups** (the data+write path): ``baseline-sync`` (plain ``tf.data``
  pipeline, synchronous checkpoints), ``prisma-sync`` (PRISMA data plane,
  synchronous checkpoints), ``prisma-async`` (PRISMA data plane,
  overlapped checkpoints).

Every trial measures read throughput *inside* checkpoint-burst windows
(from :attr:`~repro.frameworks.checkpoint.CheckpointWriter.write_windows`)
separately from steady-state throughput, which is how the interference —
and asynchronous checkpointing's recovery of it — becomes a number a CI
gate can hold (``benchmarks/bench_write_workloads.py``).

Backends are constructed purely from :class:`~repro.storage.backend.
BackendConfig`, so the object-store rows exercise the config-selected
backend path end to end.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import PrismaConfig, build_prisma
from ..core.integrations import PrismaTensorFlowPipeline
from ..dataset.catalog import DatasetCatalog
from ..dataset.shuffle import EpochShuffler
from ..dataset.synthetic import uniform_sizes
from ..frameworks.checkpoint import CheckpointConfig, CheckpointWriter
from ..frameworks.models import LENET, GpuEnsemble
from ..frameworks.tensorflow.pipeline import tf_baseline
from ..frameworks.training import Trainer, TrainingConfig
from ..simcore.kernel import Simulator
from ..simcore.random import RandomStreams
from ..storage.backend import BackendConfig, build_backend
from ..storage.posix import PosixLayer

KiB = 1024

#: storage deployments under test
WRITE_CONFIGS = ("posix-read", "posix-mixed", "object-mixed")
#: data-path / checkpoint-discipline combinations
WRITE_SETUPS = ("baseline-sync", "prisma-sync", "prisma-async")


def backend_config_for(config: str, write_penalty: float = 0.45) -> BackendConfig:
    """The :class:`BackendConfig` one named write-workload config uses."""
    if config == "posix-read":
        return BackendConfig(kind="posix")
    if config == "posix-mixed":
        return BackendConfig(kind="posix", write_penalty=write_penalty)
    if config == "object-mixed":
        return BackendConfig(kind="object")
    raise ValueError(f"unknown config {config!r}; expected one of {WRITE_CONFIGS}")


def _merged_windows(
    windows: List[Tuple[float, float]], lo: float, hi: float
) -> List[Tuple[float, float]]:
    """Clip write bursts to ``[lo, hi)`` and merge overlaps (async bursts)."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(windows):
        start, end = max(start, lo), min(end, hi)
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


class _ReadMeter:
    """Samples a backend's cumulative read bytes on a fixed sim-time grid.

    Post-run, :meth:`bytes_at` interpolates the cumulative curve so burst
    windows (known only after the run) can be integrated exactly against
    the samples.  The sampler is an infinite process — safe because trials
    drive the simulator with ``run(until=done)``.
    """

    def __init__(self, sim: Simulator, backend, dt: float) -> None:
        self.sim = sim
        self.backend = backend
        self.times: List[float] = [0.0]
        self.values: List[float] = [0.0]
        self._dt = dt
        sim.process(self._sample(), name="writes.readmeter")

    def _sample(self):
        while True:
            yield self.sim.timeout(self._dt)
            self.times.append(self.sim.now)
            self.values.append(float(self.backend.bytes_read()))

    def finalize(self) -> None:
        self.times.append(self.sim.now)
        self.values.append(float(self.backend.bytes_read()))

    def bytes_at(self, t: float) -> float:
        """Cumulative read bytes at time ``t`` (linear interpolation)."""
        idx = bisect_right(self.times, t)
        if idx <= 0:
            return self.values[0]
        if idx >= len(self.times):
            return self.values[-1]
        t0, t1 = self.times[idx - 1], self.times[idx]
        v0, v1 = self.values[idx - 1], self.values[idx]
        if t1 <= t0:
            return v1
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)


@dataclass
class WriteTrialResult:
    """One (config, setup) cell of the write-workload matrix."""

    config: str
    setup: str
    sim_seconds: float
    samples_per_second: float
    read_bytes: float
    write_bytes: float
    checkpoints: int
    ckpt_stall_time: float
    #: wall-clock coverage of checkpoint bursts within the run
    burst_time: float
    #: read throughput (bytes/s) inside / outside checkpoint bursts
    burst_read_throughput: float
    steady_read_throughput: float
    gpu_utilization: float

    def metrics_dict(self) -> Dict[str, object]:
        return {
            "config": self.config,
            "setup": self.setup,
            "sim_seconds": self.sim_seconds,
            "samples_per_second": self.samples_per_second,
            "read_bytes": self.read_bytes,
            "write_bytes": self.write_bytes,
            "checkpoints": self.checkpoints,
            "ckpt_stall_time": self.ckpt_stall_time,
            "burst_time": self.burst_time,
            "burst_read_throughput": self.burst_read_throughput,
            "steady_read_throughput": self.steady_read_throughput,
            "gpu_utilization": self.gpu_utilization,
        }


@dataclass
class WriteWorkloadReport:
    """The full configs x setups matrix one invocation produces."""

    seed: int
    n_files: int
    file_size: int
    epochs: int
    ckpt_every: int
    ckpt_bytes: int
    write_penalty: float
    trials: List[WriteTrialResult] = field(default_factory=list)

    def trial(self, config: str, setup: str) -> WriteTrialResult:
        for t in self.trials:
            if t.config == config and t.setup == setup:
                return t
        raise KeyError(f"no trial for ({config!r}, {setup!r})")

    def configs(self) -> List[str]:
        seen: List[str] = []
        for t in self.trials:
            if t.config not in seen:
                seen.append(t.config)
        return seen

    def metrics_dict(self) -> Dict[str, object]:
        """Deterministic, JSON-ready summary (the determinism-gate surface)."""
        return {
            "seed": self.seed,
            "n_files": self.n_files,
            "file_size": self.file_size,
            "epochs": self.epochs,
            "ckpt_every": self.ckpt_every,
            "ckpt_bytes": self.ckpt_bytes,
            "write_penalty": self.write_penalty,
            "trials": [t.metrics_dict() for t in self.trials],
        }


def run_write_trial(
    config: str,
    setup: str,
    seed: int = 0,
    n_files: int = 640,
    file_size: int = 112 * KiB,
    batch_size: int = 32,
    epochs: int = 2,
    ckpt_every: int = 8,
    ckpt_bytes: int = 96_000_000,
    write_penalty: float = 0.45,
    control_period: float = 10e-3,
    sample_dt: float = 1e-3,
    telemetry=None,
) -> WriteTrialResult:
    """One training run with checkpoint traffic over one backend config.

    A fresh simulator and seeded RNG per call: identical arguments produce
    byte-identical results, which the bench gate's double run relies on.
    """
    if setup not in WRITE_SETUPS:
        raise ValueError(f"unknown setup {setup!r}; expected one of {WRITE_SETUPS}")
    streams = RandomStreams(seed)
    sim = Simulator()
    if telemetry is not None:
        telemetry.attach(sim, process=f"writes/{config}/{setup}/seed{seed}")
    backend = build_backend(sim, backend_config_for(config, write_penalty), streams=streams)
    catalog = DatasetCatalog("/data/train", uniform_sizes(n_files, n_files * file_size))
    catalog.materialize(backend)
    posix = PosixLayer(sim, backend)
    shuffler = EpochShuffler(n_files, streams.spawn("shuffle.train"))
    model = LENET

    controller = None
    if setup == "baseline-sync":
        train_src = tf_baseline(sim, catalog, shuffler, batch_size, posix, model)
    else:
        stage, _prefetcher, controller = build_prisma(
            sim, posix, PrismaConfig(control_period=control_period)
        )
        train_src = PrismaTensorFlowPipeline(
            sim, catalog, shuffler, batch_size, stage, model
        )

    ckpt_enabled = config != "posix-read"
    writer = CheckpointWriter(
        sim,
        backend,
        CheckpointConfig(
            every_steps=ckpt_every if ckpt_enabled else 0,
            nbytes=ckpt_bytes,
            synchronous=not setup.endswith("-async"),
        ),
    )
    meter = _ReadMeter(sim, backend, sample_dt)
    gpus = GpuEnsemble(sim, n_gpus=4)
    trainer = Trainer(
        sim, model, gpus, train_src,
        TrainingConfig(epochs=epochs, global_batch=batch_size, validate=False),
        setup=f"{config}/{setup}", checkpointer=writer,
    )
    result = trainer.run_to_completion()
    if controller is not None:
        controller.stop()
    meter.finalize()

    end = sim.now
    total_read = float(backend.bytes_read())
    windows = _merged_windows(writer.write_windows, 0.0, end)
    burst_time = writer.time_in_windows(0.0, end)
    burst_read = sum(meter.bytes_at(hi) - meter.bytes_at(lo) for lo, hi in windows)
    steady_time = max(result.total_time - burst_time, 0.0)
    trial = WriteTrialResult(
        config=config,
        setup=setup,
        sim_seconds=result.total_time,
        samples_per_second=(
            n_files * epochs / result.total_time if result.total_time > 0 else 0.0
        ),
        read_bytes=total_read,
        write_bytes=float(backend.bytes_written()),
        checkpoints=writer.checkpoints_written,
        ckpt_stall_time=writer.sync_stall_time,
        burst_time=burst_time,
        burst_read_throughput=burst_read / burst_time if burst_time > 0 else 0.0,
        steady_read_throughput=(
            (total_read - burst_read) / steady_time if steady_time > 0 else 0.0
        ),
        gpu_utilization=result.gpu_utilization,
    )
    if telemetry is not None:
        telemetry.detach()
    return trial


def run_write_workloads(
    seed: int = 0,
    n_files: int = 640,
    file_size: int = 112 * KiB,
    batch_size: int = 32,
    epochs: int = 2,
    ckpt_every: int = 8,
    ckpt_bytes: int = 96_000_000,
    write_penalty: float = 0.45,
    configs: Tuple[str, ...] = WRITE_CONFIGS,
    setups: Tuple[str, ...] = WRITE_SETUPS,
    control_period: float = 10e-3,
    telemetry=None,
) -> WriteWorkloadReport:
    """The full write-workload matrix: every config under every setup."""
    report = WriteWorkloadReport(
        seed=seed,
        n_files=n_files,
        file_size=file_size,
        epochs=epochs,
        ckpt_every=ckpt_every,
        ckpt_bytes=ckpt_bytes,
        write_penalty=write_penalty,
    )
    for config in configs:
        for setup in setups:
            report.trials.append(
                run_write_trial(
                    config,
                    setup,
                    seed=seed,
                    n_files=n_files,
                    file_size=file_size,
                    batch_size=batch_size,
                    epochs=epochs,
                    ckpt_every=ckpt_every,
                    ckpt_bytes=ckpt_bytes,
                    write_penalty=write_penalty,
                    control_period=control_period,
                    telemetry=telemetry,
                )
            )
    return report


def format_writes(report: WriteWorkloadReport) -> str:
    """ASCII rendering for the ``repro writes`` CLI command."""
    MiB = 1024.0 * 1024.0
    lines = [
        "write-path workloads (seed=%d, %d files x %d B, %d epoch(s), "
        "ckpt %d B every %d steps)"
        % (
            report.seed, report.n_files, report.file_size, report.epochs,
            report.ckpt_bytes, report.ckpt_every,
        ),
    ]
    header = "  %-14s %-14s %9s %9s %6s %9s %10s %10s" % (
        "config", "setup", "time(s)", "samp/s", "ckpts", "stall(s)",
        "burst MB/s", "steady MB/s",
    )
    lines.append(header)
    for trial in report.trials:
        lines.append(
            "  %-14s %-14s %9.3f %9.0f %6d %9.3f %10.1f %10.1f"
            % (
                trial.config, trial.setup, trial.sim_seconds,
                trial.samples_per_second, trial.checkpoints,
                trial.ckpt_stall_time, trial.burst_read_throughput / MiB,
                trial.steady_read_throughput / MiB,
            )
        )
    for config in report.configs():
        try:
            base = report.trial(config, "baseline-sync")
            sync = report.trial(config, "prisma-sync")
            async_ = report.trial(config, "prisma-async")
        except KeyError:
            continue
        speedup = (
            base.sim_seconds / async_.sim_seconds if async_.sim_seconds > 0 else 0.0
        )
        lines.append(
            "  %-14s prisma-async is %.2fx baseline-sync" % (config, speedup)
        )
        if sync.burst_time > 0 and sync.burst_read_throughput > 0:
            lines.append(
                "  %-14s burst-window reads: async %.1f MB/s vs sync %.1f MB/s "
                "(%.2fx)"
                % (
                    config,
                    async_.burst_read_throughput / MiB,
                    sync.burst_read_throughput / MiB,
                    async_.burst_read_throughput / sync.burst_read_throughput,
                )
            )
    return "\n".join(lines)
