"""Figure 4 — PyTorch worker sweep vs PRISMA (LeNet/AlexNet, batch 256).

The paper evaluates baseline PyTorch with 0/2/4/8/16 DataLoader workers
against PRISMA (parallel I/O + prefetching + auto-tuning via the UDS
client/server integration).  Expected shape: PRISMA wins at 0-4 workers
(often by thousands of seconds), loses modestly at 8-16, and — crucially —
delivers near-constant time at *every* worker count, freeing users from the
manual worker-count search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..frameworks.models import ALEXNET, LENET, ModelProfile
from ..metrics.summary import RunStats, run_stats
from .config import ExperimentScale, HardwareProfile, figure4_scale
from .paper import FIG4_PRISMA_ADVANTAGE_SECONDS
from .runner import TrialResult, run_torch_trial

DEFAULT_MODELS: Tuple[ModelProfile, ...] = (LENET, ALEXNET)
DEFAULT_WORKER_COUNTS: Tuple[int, ...] = (0, 2, 4, 8, 16)


@dataclass
class Figure4Cell:
    model: str
    setup: str  # "torch-native" | "torch-prisma"
    num_workers: int
    stats: RunStats
    trials: List[TrialResult] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        return self.stats.mean


@dataclass
class Figure4Result:
    cells: List[Figure4Cell] = field(default_factory=list)

    def cell(self, model: str, setup: str, num_workers: int) -> Figure4Cell:
        for c in self.cells:
            if (c.model, c.setup, c.num_workers) == (model, setup, num_workers):
                return c
        raise KeyError((model, setup, num_workers))

    def advantage(self, model: str, num_workers: int) -> float:
        """Seconds PRISMA saves vs native at this worker count (+ = faster)."""
        native = self.cell(model, "torch-native", num_workers).seconds
        prisma = self.cell(model, "torch-prisma", num_workers).seconds
        return native - prisma

    def prisma_spread(self, model: str) -> float:
        """Max/min ratio of PRISMA's times across worker counts (~1.0)."""
        times = [
            c.seconds for c in self.cells if c.model == model and c.setup == "torch-prisma"
        ]
        return max(times) / min(times) if times else 1.0

    def worker_counts(self) -> List[int]:
        return sorted({c.num_workers for c in self.cells})


def run_figure4(
    scale: Optional[ExperimentScale] = None,
    models: Sequence[ModelProfile] = DEFAULT_MODELS,
    worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
    batch_size: int = 256,
    hardware: Optional[HardwareProfile] = None,
    progress=None,
    base_seed: int = 0,
    telemetry=None,
) -> Figure4Result:
    scale = scale or figure4_scale()
    result = Figure4Result()
    for model in models:
        for workers in worker_counts:
            for setup in ("torch-native", "torch-prisma"):
                trials: List[TrialResult] = []
                for run in range(scale.runs):
                    trial = run_torch_trial(
                        setup, model, batch_size, workers, scale,
                        hardware=hardware, seed=base_seed + run,
                        telemetry=telemetry,
                    )
                    trials.append(trial)
                    if progress is not None:
                        progress(trial)
                result.cells.append(
                    Figure4Cell(
                        model=model.name,
                        setup=setup,
                        num_workers=workers,
                        stats=run_stats([t.paper_equivalent_seconds for t in trials]),
                        trials=trials,
                    )
                )
    return result


def paper_advantage(model: str, num_workers: int) -> Optional[float]:
    return FIG4_PRISMA_ADVANTAGE_SECONDS.get(model, {}).get(num_workers)
