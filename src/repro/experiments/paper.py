"""Reference values quoted by the paper (CLUSTER 2021, §V).

Every number here is taken verbatim from the paper's text, or derived from
an explicitly quoted relation (derivations are noted inline).  The harness
prints measured results next to these anchors; EXPERIMENTS.md records the
comparison.
"""

from __future__ import annotations

from typing import Dict, Tuple

# ---------------------------------------------------------------------------
# Figure 2 — TensorFlow, 10 epochs, 4 GPUs, ImageNet.
# Quoted directly: LeNet bs64 PRISMA 2,047 s / TF-opt 1,851 s ("51 % and
# 55 % reduction"); LeNet bs256 PRISMA 1,880 s / TF-opt 1,363 s ("54 % and
# 67 %").  Baselines are derived from the quoted reductions:
#   bs64:  2047/(1-0.51) = 4,177 s ; 1851/(1-0.55) = 4,113 s  -> ~4,150 s
#   bs256: 1880/(1-0.54) = 4,087 s ; 1363/(1-0.67) = 4,130 s  -> ~4,100 s
# ---------------------------------------------------------------------------
FIG2_LENET_SECONDS: Dict[Tuple[int, str], float] = {
    (64, "baseline"): 4150.0,  # derived (see above)
    (64, "prisma"): 2047.0,
    (64, "optimized"): 1851.0,
    (256, "baseline"): 4100.0,  # derived
    (256, "prisma"): 1880.0,
    (256, "optimized"): 1363.0,
}

#: "reducing training time by more than 50 % for LeNet and 20 % for
#: AlexNet, when compared to TF baseline"
FIG2_REDUCTION_VS_BASELINE: Dict[str, float] = {
    "lenet": 50.0,  # "more than 50 %"
    "alexnet": 20.0,  # "20 %"
    "resnet50": 0.0,  # "no impact on training time"
}

# ---------------------------------------------------------------------------
# Figure 3 — concurrent-reader-thread CDFs.
# ---------------------------------------------------------------------------
#: "PRISMA only uses at most 4 concurrent threads (3 in the case of
#: ResNet-50)"
FIG3_PRISMA_MAX_THREADS: Dict[str, int] = {
    "lenet": 4,
    "alexnet": 4,
    "resnet50": 3,
}
#: "TF optimized allocates the maximum number of threads (i.e., 30)"
FIG3_TF_OPTIMIZED_THREADS = 30
#: "TF optimized uses 2-7x more threads for training"
FIG3_THREAD_RATIO_RANGE = (2.0, 7.0)

# ---------------------------------------------------------------------------
# Figure 4 — PyTorch (LeNet / AlexNet, batch 256, 10 epochs).
# Quoted: PRISMA's absolute decrease vs 0/2/4 workers and PyTorch's
# decrease vs PRISMA at 8/16 workers.  Absolute native times are derived by
# anchoring PRISMA-PyTorch at the TF PRISMA bs256 number (1,880 s), which
# Figure 4's bars are consistent with.
# ---------------------------------------------------------------------------
FIG4_PRISMA_ADVANTAGE_SECONDS: Dict[str, Dict[int, float]] = {
    # positive: PRISMA is faster by this many seconds; negative: slower.
    "lenet": {0: 2618.0, 2: 1085.0, 4: 176.0, 8: -362.0, 16: -405.0},
    "alexnet": {0: 2710.0, 2: 1171.0, 4: 337.0, 8: -211.0, 16: -542.0},
}

#: Derived native-PyTorch absolute times (PRISMA anchored at 1,880 s).
FIG4_LENET_NATIVE_SECONDS: Dict[int, float] = {
    0: 4498.0,
    2: 2965.0,
    4: 2056.0,
    8: 1518.0,
    16: 1475.0,
}

# ---------------------------------------------------------------------------
# §IV — integration cost.
# ---------------------------------------------------------------------------
INTEGRATION_LOC = {"tensorflow": 10, "pytorch": 35}

# ---------------------------------------------------------------------------
# §V — methodology constants.
# ---------------------------------------------------------------------------
EPOCHS = 10
BATCH_SIZES = (64, 128, 256)
N_GPUS = 4
RUNS = 5
