"""Runners for the §VII extension experiments (CLI + benchmarks share them).

* :func:`run_distributed_sweep` — multi-node synchronous training over a
  shared PFS, baseline vs per-node PRISMA stages.
* :func:`run_multitenant_comparison` — N tenants on one device under
  vanilla / independent / globally coordinated control.
* :func:`run_latency_comparison` — per-request read-latency distributions,
  baseline vs PRISMA (the monitoring-plane view of the same story).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core import PrismaConfig, PrismaStage, build_prisma
from ..dataset.synthetic import imagenet_like, tiny_dataset
from ..distributed import DistributedResult, DistributedTrainingJob
from ..frameworks.models import LENET, ModelProfile
from ..frameworks.training import TrainingConfig
from ..metrics.summary import jain_fairness
from ..telemetry import LatencyRecorder, LatencySummary
from ..multitenant import FairShareGlobalPolicy, SharedStorageCluster
from ..simcore.kernel import Simulator
from ..simcore.random import RandomStreams
from ..storage.device import BlockDevice, intel_p4600
from ..storage.distributed import DistributedFilesystem
from ..storage.filesystem import Filesystem
from ..storage.posix import PosixLayer


# -- distributed training ------------------------------------------------------------
@dataclass
class DistributedSweepRow:
    n_nodes: int
    baseline: DistributedResult
    prisma: DistributedResult

    @property
    def speedup(self) -> float:
        return self.baseline.total_time / self.prisma.total_time


def run_distributed_sweep(
    node_counts: Sequence[int] = (1, 2, 4),
    model: ModelProfile = LENET,
    scale: int = 400,
    global_batch: int = 32,
    rpc_latency: float = 300e-6,
) -> List[DistributedSweepRow]:
    def one(n_nodes: int, use_prisma: bool) -> DistributedResult:
        streams = RandomStreams(0)
        sim = Simulator()
        pfs = DistributedFilesystem(
            sim, n_targets=4, target_profile=intel_p4600(), rpc_latency=rpc_latency
        )
        split = imagenet_like(streams, scale=scale)
        split.train.materialize(pfs)
        posix = PosixLayer(sim, pfs)
        job = DistributedTrainingJob(
            sim, posix, split.train, model, n_nodes=n_nodes,
            global_batch=global_batch, epochs=1, streams=streams.spawn("job"),
            use_prisma=use_prisma, control_period=1.0 / scale,
        )
        return job.run()

    return [
        DistributedSweepRow(n, one(n, False), one(n, True)) for n in node_counts
    ]


def format_distributed_sweep(rows: List[DistributedSweepRow]) -> str:
    lines = [
        "Distributed training over a shared PFS (simulated seconds, 1 epoch)",
        f"{'nodes':>6}  {'baseline':>10}  {'prisma':>10}  {'speedup':>8}  "
        f"{'barrier wait base->prisma'}",
    ]
    for row in rows:
        lines.append(
            f"{row.n_nodes:>6}  {row.baseline.total_time:>9.3f}s  "
            f"{row.prisma.total_time:>9.3f}s  {row.speedup:>7.2f}x  "
            f"{row.baseline.mean_barrier_wait * 1e3:>6.2f} ms -> "
            f"{row.prisma.mean_barrier_wait * 1e3:.2f} ms"
        )
    return "\n".join(lines)


# -- multitenancy ------------------------------------------------------------------
@dataclass
class MultitenantRow:
    mode: str
    makespan: float
    mean_job_time: float
    fairness: float


def run_multitenant_comparison(
    n_jobs: int = 3,
    files_per_job: int = 128,
    mean_size: int = 256 * 1024,
    model: ModelProfile = LENET,
) -> List[MultitenantRow]:
    rows: List[MultitenantRow] = []
    for mode in ("none", "independent", "global"):
        streams = RandomStreams(0)
        sim = Simulator()
        fs = Filesystem(sim, BlockDevice(sim, intel_p4600()))
        posix = PosixLayer(sim, fs)
        policy = None
        if mode == "global":
            policy = FairShareGlobalPolicy(total_producer_budget=3 * n_jobs, per_job_cap=4)
        cluster = SharedStorageCluster(
            sim, posix, control_period=1e-3, coordination=mode, global_policy=policy
        )
        for j in range(n_jobs):
            split = tiny_dataset(
                streams.spawn(f"d{j}"), n_train=files_per_job, n_val=16,
                mean_size=mean_size,
            )
            split.train.prefix = f"/job{j}/train"
            split.validation.prefix = f"/job{j}/val"
            split.materialize(fs)
            cluster.add_job(
                split.train, split.validation, model,
                TrainingConfig(epochs=1, global_batch=16), streams.spawn(f"s{j}"),
            )
        result = cluster.run()
        times = result.job_times()
        rows.append(
            MultitenantRow(
                mode=mode,
                makespan=result.makespan,
                mean_job_time=result.mean_job_time(),
                fairness=jain_fairness([1.0 / t for t in times]),
            )
        )
    return rows


def format_multitenant(rows: List[MultitenantRow]) -> str:
    lines = [
        "Shared-storage multi-tenancy (simulated seconds)",
        f"{'mode':>12}  {'makespan':>9}  {'mean job':>9}  {'fairness':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row.mode:>12}  {row.makespan:>9.3f}  {row.mean_job_time:>9.3f}  "
            f"{row.fairness:>8.3f}"
        )
    return "\n".join(lines)


# -- latency distributions -----------------------------------------------------------
def run_latency_comparison(
    scale: int = 400,
    model: ModelProfile = LENET,
    sample_count: int = 2000,
) -> Dict[str, LatencySummary]:
    """Per-read service-time distributions, direct reads vs PRISMA stage."""
    summaries: Dict[str, LatencySummary] = {}
    for setup in ("baseline", "prisma"):
        streams = RandomStreams(0)
        sim = Simulator()
        fs = Filesystem(sim, BlockDevice(sim, intel_p4600()))
        split = imagenet_like(streams, scale=scale)
        split.train.materialize(fs)
        posix = PosixLayer(sim, fs)
        recorder = LatencyRecorder(setup)
        paths = split.train.filenames()[:sample_count]
        if setup == "prisma":
            stage, prefetcher, controller = build_prisma(
                sim, posix, PrismaConfig(control_period=1.0 / scale)
            )
            stage.latency_recorder = recorder
            stage.load_epoch(paths)
            reader = stage
        else:
            controller = None
            reader = PrismaStage(sim, posix, [], latency_recorder=recorder)

        def consumer():
            for path in paths:
                yield reader.read_whole(path)

        p = sim.process(consumer())
        sim.run(until=p)
        if controller is not None:
            controller.stop()
        summaries[setup] = recorder.summary()
    return summaries


def format_latency(summaries: Dict[str, LatencySummary]) -> str:
    lines = ["Per-read service time (ImageNet-sized files, one consumer)"]
    for name, summary in summaries.items():
        lines.append(f"  {name:>9}: {summary.row()}")
    return "\n".join(lines)
