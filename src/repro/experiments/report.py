"""Textual reports: regenerate the paper's tables/figures as ASCII.

Every figure runner has a ``format_*`` companion that renders measured
values next to the paper's anchors, so `python -m repro figure2` output can
be pasted straight into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .ablation import AblationPoint
from .figure2 import Figure2Result, paper_reference
from .figure3 import Figure3Result, paper_max_threads
from .figure4 import Figure4Result, paper_advantage
from .plot import cdf_staircase, grouped_bar_chart


def _table(headers: Sequence[str], rows: List[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*["-" * w for w in widths])]
    lines.extend(fmt.format(*row) for row in rows)
    return "\n".join(lines)


def format_figure2(result: Figure2Result) -> str:
    rows: List[Sequence[str]] = []
    for model in result.models():
        for batch in result.batch_sizes():
            for setup in ("tf-baseline", "tf-optimized", "tf-prisma"):
                cell = result.cell(model, batch, setup)
                ref = paper_reference(model, batch, setup)
                red = (
                    f"{result.reduction(model, batch, setup):5.1f}%"
                    if setup != "tf-baseline"
                    else "  —"
                )
                rows.append(
                    (
                        model,
                        str(batch),
                        setup,
                        f"{cell.seconds:8.0f}",
                        f"{cell.stats.std:6.0f}",
                        f"{ref:.0f}" if ref is not None else "—",
                        red,
                    )
                )
    return "Figure 2 — TensorFlow training time (paper-equivalent seconds)\n" + _table(
        ("model", "batch", "setup", "measured", "std", "paper", "vs-baseline"),
        rows,
    )


def format_figure3(result: Figure3Result) -> str:
    rows: List[Sequence[str]] = []
    for curve in result.curves:
        points = "  ".join(f"{int(v)}:{c:.2f}" for v, c in curve.cdf.points())
        ref = (
            str(paper_max_threads(curve.model)) if curve.setup == "tf-prisma" else "30"
        )
        rows.append(
            (
                curve.model,
                curve.setup,
                str(curve.max_threads),
                ref,
                f"{curve.median_threads():.0f}",
                points[:72],
            )
        )
    ratio_rows = []
    for model in {c.model for c in result.curves}:
        ratios = result.thread_ratio(model)
        ratio_rows.append(
            (model, "  ".join(f"p{int(q*100)}={r:.1f}x" for q, r in sorted(ratios.items())))
        )
    return (
        "Figure 3 — concurrent-reader-thread CDFs\n"
        + _table(
            ("model", "setup", "max", "paper-max", "median", "CDF value:cum"),
            rows,
        )
        + "\n\nTF-optimized : PRISMA thread ratio (paper: 2-7x)\n"
        + _table(("model", "ratio"), ratio_rows)
    )


def format_figure4(result: Figure4Result) -> str:
    rows: List[Sequence[str]] = []
    models = sorted({c.model for c in result.cells})
    for model in models:
        for workers in result.worker_counts():
            native = result.cell(model, "torch-native", workers)
            prisma = result.cell(model, "torch-prisma", workers)
            adv = result.advantage(model, workers)
            ref = paper_advantage(model, workers)
            rows.append(
                (
                    model,
                    str(workers),
                    f"{native.seconds:8.0f}",
                    f"{prisma.seconds:8.0f}",
                    f"{adv:+8.0f}",
                    f"{ref:+.0f}" if ref is not None else "—",
                )
            )
    spread_rows = [
        (m, f"{result.prisma_spread(m):.2f}x (paper: ~constant)") for m in models
    ]
    return (
        "Figure 4 — PyTorch workers vs PRISMA (paper-equivalent seconds)\n"
        + _table(
            ("model", "workers", "native", "prisma", "advantage", "paper-adv"),
            rows,
        )
        + "\n\nPRISMA time spread across worker counts\n"
        + _table(("model", "max/min"), spread_rows)
    )


def figure2_chart(result: Figure2Result, batch_size: int = 256) -> str:
    """Figure 2 as an ASCII bar chart (one cluster per model)."""
    groups = {}
    for model in result.models():
        groups[f"{model} (bs {batch_size})"] = {
            setup.replace("tf-", ""): result.cell(model, batch_size, setup).seconds
            for setup in ("tf-baseline", "tf-optimized", "tf-prisma")
        }
    return grouped_bar_chart("Training time (paper-equivalent seconds)", groups)


def figure3_chart(result: Figure3Result, model: str = "lenet") -> str:
    """Figure 3 as a character-grid CDF staircase."""
    curves = {
        "optimized(TF)": result.curve(model, "tf-optimized").cdf.points(),
        "prisma": result.curve(model, "tf-prisma").cdf.points(),
    }
    return cdf_staircase(
        f"Time fraction at <= N active reader threads ({model})", curves
    )


def figure4_chart(result: Figure4Result, model: str = "lenet") -> str:
    """Figure 4 as grouped bars per worker count."""
    groups = {}
    for workers in result.worker_counts():
        groups[f"{workers} workers"] = {
            "pytorch": result.cell(model, "torch-native", workers).seconds,
            "prisma": result.cell(model, "torch-prisma", workers).seconds,
        }
    return grouped_bar_chart(f"Training time — {model} (paper-equivalent seconds)", groups)


def format_ablation(title: str, points: List[AblationPoint], baseline: Optional[AblationPoint] = None) -> str:
    rows: List[Sequence[str]] = []
    for p in points:
        rel = ""
        if baseline is not None:
            rel = f"{p.paper_equivalent_seconds / baseline.paper_equivalent_seconds:6.2f}x"
        detail = ", ".join(f"{k}={v}" for k, v in p.detail.items())
        rows.append((p.label, f"{p.paper_equivalent_seconds:8.0f}", rel, detail))
    return f"{title}\n" + _table(("config", "seconds", "vs-ref", "detail"), rows)
