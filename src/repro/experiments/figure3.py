"""Figure 3 — CDF of time spent at each concurrent-reader-thread count.

The paper instruments TF-optimized and PRISMA and plots, per model, the
cumulative distribution of the percentage of time each number of threads
was actively reading from backend storage.  Here the same measurement falls
out of the :class:`TimeWeightedGauge` attached to TF's reader pool
(``active_readers``) and PRISMA's producer pool (``active_producers``).

Headline claims verified: PRISMA uses at most ~4 threads (~3 for
ResNet-50) while TF-optimized spreads up to its full 30-thread allocation —
"2–7× more threads ... regardless of whether they are needed".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..frameworks.models import ALEXNET, LENET, RESNET50, ModelProfile
from ..metrics.cdf import DiscreteCDF, cdf_from_histogram, thread_usage_ratio
from .config import ExperimentScale, HardwareProfile, figure2_scale
from .paper import FIG3_PRISMA_MAX_THREADS, FIG3_THREAD_RATIO_RANGE
from .runner import TrialResult, run_tf_trial

DEFAULT_MODELS: Tuple[ModelProfile, ...] = (LENET, ALEXNET, RESNET50)


@dataclass
class Figure3Curve:
    """One CDF line of the figure."""

    model: str
    setup: str
    cdf: DiscreteCDF
    trial: TrialResult

    @property
    def max_threads(self) -> int:
        return int(self.cdf.maximum)

    def median_threads(self) -> float:
        return self.cdf.quantile(0.5)


@dataclass
class Figure3Result:
    curves: List[Figure3Curve] = field(default_factory=list)

    def curve(self, model: str, setup: str) -> Figure3Curve:
        for c in self.curves:
            if (c.model, c.setup) == (model, setup):
                return c
        raise KeyError((model, setup))

    def thread_ratio(self, model: str) -> Dict[float, float]:
        """Per-quantile TF-optimized : PRISMA thread ratio (paper: 2-7x)."""
        return thread_usage_ratio(
            self.curve(model, "tf-optimized").cdf,
            self.curve(model, "tf-prisma").cdf,
        )


def run_figure3(
    scale: Optional[ExperimentScale] = None,
    models: Sequence[ModelProfile] = DEFAULT_MODELS,
    batch_size: int = 256,
    hardware: Optional[HardwareProfile] = None,
    trials: Optional[Dict[Tuple[str, str], TrialResult]] = None,
    progress=None,
    base_seed: int = 0,
    telemetry=None,
) -> Figure3Result:
    """Build the thread-activity CDFs.

    ``trials`` may carry pre-run Figure 2 trials keyed by
    ``(model_name, setup)`` to avoid re-simulating; missing cells are run.
    """
    scale = scale or figure2_scale()
    trials = dict(trials or {})
    result = Figure3Result()
    for model in models:
        for setup in ("tf-optimized", "tf-prisma"):
            trial = trials.get((model.name, setup))
            if trial is None:
                trial = run_tf_trial(
                    setup, model, batch_size, scale, hardware=hardware,
                    seed=base_seed, telemetry=telemetry,
                )
                if progress is not None:
                    progress(trial)
            activity = (
                trial.producer_activity if setup == "tf-prisma" else trial.reader_activity
            )
            # Condition on "actively reading": drop the zero-thread state
            # (validation phases and compute-bound idling), as the paper's
            # "time spent by I/O threads actively reading" does.
            cdf = cdf_from_histogram(activity, drop_zero=True)
            result.curves.append(Figure3Curve(model.name, setup, cdf, trial))
    return result


def paper_max_threads(model: str) -> int:
    return FIG3_PRISMA_MAX_THREADS[model]


def paper_ratio_range() -> Tuple[float, float]:
    return FIG3_THREAD_RATIO_RANGE
