"""Structured export of experiment results (JSON).

Figures as text tables are for humans; downstream plotting and regression
tracking want machine-readable records.  Every figure result converts to a
plain-dict document carrying measured values, paper anchors, and the
scaling metadata needed to interpret them.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from .config import ExperimentScale
from .figure2 import Figure2Result, paper_reference
from .figure3 import Figure3Result, paper_max_threads
from .figure4 import Figure4Result, paper_advantage


def _scale_meta(scale: Optional[ExperimentScale]) -> Dict[str, Any]:
    if scale is None:
        return {}
    return {
        "scale": scale.scale,
        "epochs": scale.epochs,
        "runs": scale.runs,
        "paper_epochs": scale.paper_epochs,
    }


def figure2_to_dict(result: Figure2Result, scale: Optional[ExperimentScale] = None) -> Dict[str, Any]:
    cells = []
    for cell in result.cells:
        ref = paper_reference(cell.model, cell.batch_size, cell.setup)
        entry: Dict[str, Any] = {
            "model": cell.model,
            "batch_size": cell.batch_size,
            "setup": cell.setup,
            "seconds_mean": cell.stats.mean,
            "seconds_std": cell.stats.std,
            "runs": cell.stats.n,
        }
        if ref is not None:
            entry["paper_seconds"] = ref
        if cell.setup != "tf-baseline":
            entry["reduction_vs_baseline_pct"] = result.reduction(
                cell.model, cell.batch_size, cell.setup
            )
        cells.append(entry)
    return {"figure": "figure2", "meta": _scale_meta(scale), "cells": cells}


def figure3_to_dict(result: Figure3Result, scale: Optional[ExperimentScale] = None) -> Dict[str, Any]:
    curves = []
    for curve in result.curves:
        entry: Dict[str, Any] = {
            "model": curve.model,
            "setup": curve.setup,
            "max_threads": curve.max_threads,
            "median_threads": curve.median_threads(),
            "cdf": [[v, c] for v, c in curve.cdf.points()],
        }
        if curve.setup == "tf-prisma":
            entry["paper_max_threads"] = paper_max_threads(curve.model)
        curves.append(entry)
    return {"figure": "figure3", "meta": _scale_meta(scale), "curves": curves}


def figure4_to_dict(result: Figure4Result, scale: Optional[ExperimentScale] = None) -> Dict[str, Any]:
    cells = []
    for cell in result.cells:
        cells.append(
            {
                "model": cell.model,
                "setup": cell.setup,
                "num_workers": cell.num_workers,
                "seconds_mean": cell.stats.mean,
                "seconds_std": cell.stats.std,
            }
        )
    advantages = []
    for model in sorted({c.model for c in result.cells}):
        for workers in result.worker_counts():
            advantages.append(
                {
                    "model": model,
                    "num_workers": workers,
                    "advantage_seconds": result.advantage(model, workers),
                    "paper_advantage_seconds": paper_advantage(model, workers),
                }
            )
    return {
        "figure": "figure4",
        "meta": _scale_meta(scale),
        "cells": cells,
        "advantages": advantages,
    }


def dump_json(document: Dict[str, Any], path: str) -> None:
    """Write a result document as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
