"""Ablation studies on PRISMA's design choices (beyond the paper's figures).

The paper's §VII sketches these as open directions; DESIGN.md commits to
them as ablation benches:

* **Auto-tune vs static (t, N) grid** — quantifies what the feedback loop
  buys over the manual-configuration strawman, and shows the auto-tuner
  lands within a few percent of the best static point without the sweep.
* **Storage-device sensitivity** — re-runs the headline comparison on
  different device profiles (HDD → NVMe gen4); the decoupled optimization
  adapts via its control loop with zero code changes.
* **Control-period sensitivity** — how stale control decisions degrade the
  tuner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import PrismaConfig, StaticPolicy, build_prisma
from ..core.integrations import PrismaTensorFlowPipeline
from ..dataset.shuffle import EpochShuffler
from ..dataset.synthetic import imagenet_like
from ..frameworks.models import LENET, GpuEnsemble, ModelProfile
from ..frameworks.tensorflow.pipeline import tf_baseline
from ..frameworks.training import Trainer, TrainingConfig
from ..simcore.kernel import Simulator
from ..simcore.random import RandomStreams
from ..storage.device import (
    BlockDevice,
    DeviceProfile,
    intel_p4600,
    nvme_gen4,
    sata_hdd,
)
from ..storage.filesystem import Filesystem
from ..storage.posix import PosixLayer
from .config import ExperimentScale, figure2_scale


@dataclass
class AblationPoint:
    """One configuration of an ablation sweep."""

    label: str
    paper_equivalent_seconds: float
    detail: Dict[str, object] = field(default_factory=dict)


def _run_prisma_tf(
    model: ModelProfile,
    batch_size: int,
    scale: ExperimentScale,
    device: DeviceProfile,
    policy=None,
    control_period: Optional[float] = None,
    seed: int = 0,
) -> Tuple[float, object]:
    """One PRISMA-over-TF run with a chosen policy/device; returns time+pf."""
    streams = RandomStreams(seed)
    sim = Simulator()
    fs = Filesystem(sim, BlockDevice(sim, device))
    split = imagenet_like(streams, scale=scale.scale)
    split.materialize(fs)
    posix = PosixLayer(sim, fs)
    stage, prefetcher, controller = build_prisma(
        sim,
        posix,
        PrismaConfig(
            control_period=control_period or scale.control_period,
            policy=policy,
        ),
    )
    train_src = PrismaTensorFlowPipeline(
        sim, split.train, EpochShuffler(len(split.train), streams.spawn("t")),
        batch_size, stage, model,
    )
    val_src = tf_baseline(
        sim, split.validation,
        EpochShuffler(len(split.validation), streams.spawn("v")),
        batch_size, posix, model, name="val",
    )
    trainer = Trainer(
        sim, model, GpuEnsemble(sim), train_src,
        TrainingConfig(epochs=scale.epochs, global_batch=batch_size),
        val_src, setup="ablation",
    )
    result = trainer.run_to_completion()
    controller.stop()
    return scale.paper_equivalent(result.total_time), prefetcher


def static_grid(
    producers: Sequence[int] = (1, 2, 4, 8),
    buffers: Sequence[int] = (64, 256, 1024),
    model: ModelProfile = LENET,
    batch_size: int = 256,
    scale: Optional[ExperimentScale] = None,
) -> List[AblationPoint]:
    """Sweep fixed (t, N) configurations (the manual-tuning strawman)."""
    scale = scale or figure2_scale()
    points: List[AblationPoint] = []
    for t in producers:
        for n in buffers:
            seconds, _ = _run_prisma_tf(
                model, batch_size, scale, intel_p4600(),
                policy=StaticPolicy(producers=t, buffer_capacity=n),
            )
            points.append(
                AblationPoint(
                    label=f"static t={t} N={n}",
                    paper_equivalent_seconds=seconds,
                    detail={"producers": t, "buffer": n},
                )
            )
    return points


def autotune_point(
    model: ModelProfile = LENET,
    batch_size: int = 256,
    scale: Optional[ExperimentScale] = None,
) -> AblationPoint:
    """The feedback-loop configuration, for comparison against the grid."""
    scale = scale or figure2_scale()
    seconds, prefetcher = _run_prisma_tf(model, batch_size, scale, intel_p4600())
    return AblationPoint(
        label="autotune",
        paper_equivalent_seconds=seconds,
        detail={
            "final_producers": prefetcher.target_producers,
            "final_buffer": prefetcher.buffer.capacity,
        },
    )


DEVICE_SWEEP: Dict[str, DeviceProfile] = {
    "sata-hdd": sata_hdd(),
    "intel-p4600": intel_p4600(),
    "nvme-gen4": nvme_gen4(),
}


def device_sensitivity(
    model: ModelProfile = LENET,
    batch_size: int = 256,
    scale: Optional[ExperimentScale] = None,
    devices: Optional[Dict[str, DeviceProfile]] = None,
) -> List[AblationPoint]:
    """PRISMA across device classes: the tuner re-converges per device."""
    scale = scale or figure2_scale()
    points: List[AblationPoint] = []
    for name, device in (devices or DEVICE_SWEEP).items():
        seconds, prefetcher = _run_prisma_tf(model, batch_size, scale, device)
        points.append(
            AblationPoint(
                label=f"device {name}",
                paper_equivalent_seconds=seconds,
                detail={
                    "device": name,
                    "final_producers": prefetcher.target_producers,
                },
            )
        )
    return points


def control_period_sensitivity(
    periods_unscaled: Sequence[float] = (0.25, 1.0, 4.0, 16.0),
    model: ModelProfile = LENET,
    batch_size: int = 256,
    scale: Optional[ExperimentScale] = None,
) -> List[AblationPoint]:
    """How control-loop staleness affects convergence and training time."""
    scale = scale or figure2_scale()
    points: List[AblationPoint] = []
    for period in periods_unscaled:
        seconds, prefetcher = _run_prisma_tf(
            model, batch_size, scale, intel_p4600(),
            control_period=period / scale.scale,
        )
        points.append(
            AblationPoint(
                label=f"period {period:g}s",
                paper_equivalent_seconds=seconds,
                detail={
                    "period_unscaled": period,
                    "final_producers": prefetcher.target_producers,
                },
            )
        )
    return points


def best_static(points: List[AblationPoint]) -> AblationPoint:
    return min(points, key=lambda p: p.paper_equivalent_seconds)
