"""``repro.experiments`` — the evaluation harness.

One module per paper artifact: :mod:`.figure2` (TF training times),
:mod:`.figure3` (thread CDFs), :mod:`.figure4` (PyTorch worker sweep),
plus :mod:`.ablation` (design ablations), :mod:`.paper` (the paper's quoted
anchors), :mod:`.config` (hardware + scaling presets), :mod:`.runner` (one
trial end-to-end), and :mod:`.report` (ASCII rendering).
"""

from .config import (
    ExperimentScale,
    HardwareProfile,
    abci_node,
    figure2_scale,
    figure4_scale,
    test_scale,
)
from .clairvoyant import (
    ClairvoyantReport,
    ClairvoyantRun,
    format_clairvoyant,
    run_clairvoyant_comparison,
)
from .cluster import (
    ClusterEpochStats,
    ClusterReport,
    format_cluster_sweep,
    run_cluster_serving,
    run_cluster_sweep,
)
from .faults import FaultSweepReport, demo_plan, format_fault_sweep, run_fault_sweep
from .figure2 import Figure2Cell, Figure2Result, run_figure2
from .figure3 import Figure3Curve, Figure3Result, run_figure3
from .figure4 import Figure4Cell, Figure4Result, run_figure4
from .writes import (
    WRITE_CONFIGS,
    WRITE_SETUPS,
    WriteTrialResult,
    WriteWorkloadReport,
    format_writes,
    run_write_trial,
    run_write_workloads,
)
from .report import format_ablation, format_figure2, format_figure3, format_figure4
from .runner import TF_SETUPS, TORCH_SETUPS, TrialResult, run_tf_trial, run_torch_trial

__all__ = [
    "ClairvoyantReport",
    "ClairvoyantRun",
    "ClusterEpochStats",
    "ClusterReport",
    "ExperimentScale",
    "FaultSweepReport",
    "WRITE_CONFIGS",
    "WRITE_SETUPS",
    "WriteTrialResult",
    "WriteWorkloadReport",
    "Figure2Cell",
    "Figure2Result",
    "Figure3Curve",
    "Figure3Result",
    "Figure4Cell",
    "Figure4Result",
    "HardwareProfile",
    "TF_SETUPS",
    "TORCH_SETUPS",
    "TrialResult",
    "abci_node",
    "demo_plan",
    "figure2_scale",
    "figure4_scale",
    "format_ablation",
    "format_clairvoyant",
    "format_cluster_sweep",
    "format_fault_sweep",
    "format_writes",
    "format_figure2",
    "format_figure3",
    "format_figure4",
    "run_clairvoyant_comparison",
    "run_cluster_serving",
    "run_cluster_sweep",
    "run_fault_sweep",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_tf_trial",
    "run_torch_trial",
    "run_write_trial",
    "run_write_workloads",
    "test_scale",
]
