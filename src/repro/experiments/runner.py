"""Trial runner: one simulated training run per call.

Builds the full stack — device, filesystem, dataset, (optionally) PRISMA,
framework pipeline, GPU ensemble, trainer — runs it to completion, and
returns a :class:`TrialResult` with paper-equivalent timings and the
telemetry the figures need (thread-activity histograms, controller
history).

Setups (paper §V):

* TensorFlow: ``tf-baseline`` | ``tf-optimized`` | ``tf-prisma``
* PyTorch:    ``torch-native`` (choose ``num_workers``) | ``torch-prisma``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from ..core import Controller, ParallelPrefetcher, PrismaConfig, build_prisma
from ..core.integrations import (
    PrismaTensorFlowPipeline,
    PrismaUDSServer,
    make_torch_posix_factory,
)
from ..dataset.catalog import TrainValSplit
from ..dataset.shuffle import EpochShuffler
from ..dataset.synthetic import imagenet_like
from ..frameworks.models import GpuEnsemble, ModelProfile
from ..frameworks.pytorch.dataloader import TorchDataLoader
from ..frameworks.tensorflow.pipeline import TFDataPipeline, tf_baseline, tf_optimized
from ..frameworks.training import Trainer, TrainingConfig, TrainingResult
from ..simcore.kernel import Simulator
from ..simcore.random import RandomStreams
from ..storage.backend import BackendConfig, build_backend
from ..storage.posix import PosixLayer
from .config import ExperimentScale, HardwareProfile, abci_node

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry import Telemetry

TF_SETUPS = ("tf-baseline", "tf-optimized", "tf-prisma")
TORCH_SETUPS = ("torch-native", "torch-prisma")


@dataclass
class TrialResult:
    """Everything one trial produces."""

    setup: str
    model: str
    batch_size: int
    num_workers: Optional[int]
    sim_seconds: float
    paper_equivalent_seconds: float
    training: TrainingResult
    #: {thread count: seconds} for the I/O-thread activity CDF (Fig. 3)
    reader_activity: Dict[float, float] = field(default_factory=dict)
    #: PRISMA-only telemetry
    producer_activity: Dict[float, float] = field(default_factory=dict)
    buffer_hit_rate: float = 0.0
    final_producers: int = 0
    peak_producers: int = 0
    final_buffer_capacity: int = 0
    control_cycles: int = 0
    control_enforcements: int = 0
    control_rpc_failures: int = 0


@dataclass
class _Env:
    sim: Simulator
    posix: PosixLayer
    split: TrainValSplit
    train_shuffler: EpochShuffler
    val_shuffler: EpochShuffler
    streams: RandomStreams


def _build_env(hardware: HardwareProfile, scale: ExperimentScale, seed: int) -> _Env:
    streams = RandomStreams(seed)
    sim = Simulator()
    fs = build_backend(
        sim, BackendConfig(device_profile=hardware.device), streams=streams
    )
    split = imagenet_like(streams, scale=scale.scale)
    split.materialize(fs)
    posix = PosixLayer(sim, fs)
    return _Env(
        sim=sim,
        posix=posix,
        split=split,
        train_shuffler=EpochShuffler(len(split.train), streams.spawn("shuffle.train")),
        val_shuffler=EpochShuffler(len(split.validation), streams.spawn("shuffle.val")),
        streams=streams,
    )


def _finish(
    env: _Env,
    trainer: Trainer,
    scale: ExperimentScale,
    setup: str,
    model: ModelProfile,
    batch_size: int,
    num_workers: Optional[int],
    train_src,
    prefetcher: Optional[ParallelPrefetcher],
    controller: Optional[Controller],
) -> TrialResult:
    result = trainer.run_to_completion()
    trial = TrialResult(
        setup=setup,
        model=model.name,
        batch_size=batch_size,
        num_workers=num_workers,
        sim_seconds=result.total_time,
        paper_equivalent_seconds=scale.paper_equivalent(result.total_time),
        training=result,
        reader_activity=train_src.active_readers.histogram(),
    )
    if prefetcher is not None:
        trial.producer_activity = prefetcher.active_producers.histogram()
        trial.buffer_hit_rate = prefetcher.buffer.hit_rate()
        trial.final_producers = prefetcher.target_producers
        trial.peak_producers = int(prefetcher.allocated_producers.max_seen())
        trial.final_buffer_capacity = prefetcher.buffer.capacity
    if controller is not None:
        trial.control_cycles = controller.cycles
        trial.control_enforcements = controller.enforcements
        trial.control_rpc_failures = controller.rpc_failures
        controller.stop()
    return trial


# -- TensorFlow trials --------------------------------------------------------------
def run_tf_trial(
    setup: str,
    model: ModelProfile,
    batch_size: int,
    scale: ExperimentScale,
    hardware: Optional[HardwareProfile] = None,
    seed: int = 0,
    prefetch_validation: bool = False,
    telemetry: Optional["Telemetry"] = None,
) -> TrialResult:
    """One TensorFlow training run under the given setup.

    ``prefetch_validation`` enables the paper's §V-A "feasible adjustment":
    the prototype leaves validation reads unoptimized (explaining the gap
    to TF-optimized); with this flag PRISMA prefetches them too.  Only
    meaningful for the ``tf-prisma`` setup.
    """
    if setup not in TF_SETUPS:
        raise ValueError(f"unknown TF setup {setup!r}; expected one of {TF_SETUPS}")
    scale.check_granularity(batch_size)
    hardware = hardware or abci_node()
    env = _build_env(hardware, scale, seed)
    sim = env.sim
    if telemetry is not None:
        telemetry.attach(sim, process=f"{setup}/{model.name}/bs{batch_size}/seed{seed}")

    prefetcher: Optional[ParallelPrefetcher] = None
    controller: Optional[Controller] = None
    if setup == "tf-prisma":
        stage, prefetcher, controller = build_prisma(
            sim, env.posix, PrismaConfig(control_period=scale.control_period)
        )
        train_src: TFDataPipeline = PrismaTensorFlowPipeline(
            sim, env.split.train, env.train_shuffler, batch_size, stage, model
        )
        if prefetch_validation:
            # §V-A extension: route validation reads through the data plane.
            val_src = PrismaTensorFlowPipeline(
                sim, env.split.validation, env.val_shuffler, batch_size, stage,
                model, name="val",
            )
        else:
            # The prototype does not prefetch validation files (paper §V-A).
            val_src = tf_baseline(
                sim, env.split.validation, env.val_shuffler, batch_size, env.posix,
                model, name="val",
            )
    else:
        factory = tf_baseline if setup == "tf-baseline" else tf_optimized
        train_src = factory(
            sim, env.split.train, env.train_shuffler, batch_size, env.posix, model
        )
        val_src = factory(
            sim, env.split.validation, env.val_shuffler, batch_size, env.posix,
            model, name="val",
        )

    gpus = GpuEnsemble(sim, n_gpus=hardware.n_gpus)
    trainer = Trainer(
        sim, model, gpus, train_src,
        TrainingConfig(epochs=scale.epochs, global_batch=batch_size),
        val_src, setup=setup,
    )
    try:
        return _finish(
            env, trainer, scale, setup, model, batch_size, None,
            train_src, prefetcher, controller,
        )
    finally:
        if telemetry is not None:
            telemetry.detach()


# -- PyTorch trials --------------------------------------------------------------
def run_torch_trial(
    setup: str,
    model: ModelProfile,
    batch_size: int,
    num_workers: int,
    scale: ExperimentScale,
    hardware: Optional[HardwareProfile] = None,
    seed: int = 0,
    telemetry: Optional["Telemetry"] = None,
) -> TrialResult:
    """One PyTorch training run: native DataLoader or PRISMA-backed."""
    if setup not in TORCH_SETUPS:
        raise ValueError(f"unknown torch setup {setup!r}; expected one of {TORCH_SETUPS}")
    if num_workers < 0:
        raise ValueError("num_workers must be >= 0")
    scale.check_granularity(batch_size, min_batches=max(25, 6 * max(num_workers, 1)))
    hardware = hardware or abci_node()
    env = _build_env(hardware, scale, seed)
    sim = env.sim
    if telemetry is not None:
        telemetry.attach(
            sim,
            process=f"{setup}/{model.name}/bs{batch_size}/w{num_workers}/seed{seed}",
        )
    split = env.split

    prefetcher: Optional[ParallelPrefetcher] = None
    controller: Optional[Controller] = None
    if setup == "torch-prisma":
        stage, prefetcher, controller = build_prisma(
            sim, env.posix, PrismaConfig(control_period=scale.control_period)
        )
        server = PrismaUDSServer(sim, stage)

        def size_lookup(path: str) -> int:
            index = int(path.rsplit("/", 1)[1])
            catalog = split.train if path.startswith(split.train.prefix) else split.validation
            return catalog.size(index)

        factory = make_torch_posix_factory(sim, server, size_lookup)

        class _SharedEpochLoader(TorchDataLoader):
            """DataLoader that shares its shuffled list with the stage."""

            def begin_epoch(self, epoch: int) -> None:
                super().begin_epoch(epoch)
                order = self.shuffler.order(epoch)
                stage.load_epoch(self.catalog.path(int(i)) for i in order)

        train_src = _SharedEpochLoader(
            sim, split.train, env.train_shuffler, batch_size, factory, model,
            num_workers=num_workers,
        )
        # Validation reads go through the clients too, but are not in the
        # prefetch list, so the stage falls back to the backend (§V-A).
        val_src = TorchDataLoader(
            sim, split.validation, env.val_shuffler, batch_size, factory, model,
            num_workers=num_workers, name="val",
        )
    else:
        factory = lambda worker_id: env.posix  # noqa: E731 - shared backend
        train_src = TorchDataLoader(
            sim, split.train, env.train_shuffler, batch_size, factory, model,
            num_workers=num_workers,
        )
        val_src = TorchDataLoader(
            sim, split.validation, env.val_shuffler, batch_size, factory, model,
            num_workers=num_workers, name="val",
        )

    gpus = GpuEnsemble(sim, n_gpus=hardware.n_gpus)
    trainer = Trainer(
        sim, model, gpus, train_src,
        TrainingConfig(epochs=scale.epochs, global_batch=batch_size),
        val_src, setup=f"{setup}-w{num_workers}",
    )
    try:
        return _finish(
            env, trainer, scale, setup, model, batch_size, num_workers,
            train_src, prefetcher, controller,
        )
    finally:
        if telemetry is not None:
            telemetry.detach()
