"""Predictive vs reactive control: jump to the optimum instead of climbing.

ROADMAP item 1's deliverable.  For each backend kind the harness

1. runs the seeded **offline sweep** (:mod:`repro.perfmodel.sweep`) over
   the (t, N) grid and fits one :class:`~repro.perfmodel.model.
   ThroughputModel` across all kinds;
2. replays the *same* comparison workload under three policies from the
   same cold start — **oracle-best-static** (the sweep's winning (t, N)
   pinned from period one: the upper bound), **reactive**
   (:class:`~repro.core.PrismaAutotunePolicy` hill-climbing), and
   **predictive** (:class:`~repro.core.PredictivePolicy` jumping to the
   model's argmax, then refining locally);
3. measures, from each trial's per-control-period
   :class:`~repro.core.control.monitor.MetricsHistory`, the **convergence
   time**: the first control period whose trailing-window fetch
   throughput reaches 95 % of the oracle's steady-state rate — the
   paper-style headline is the ratio of reactive to predictive periods;
4. checks **sim/live decision parity**: the predictive trial's recorded
   snapshot series replayed through a fresh simulated
   :class:`~repro.core.control.Controller` and a fresh wall-clock
   :class:`~repro.core.live.LiveController` must produce identical
   applied-settings sequences (one kernel, two drivers).

Everything is seeded and simulation-timed, so the full report is
byte-deterministic — ``benchmarks/bench_predictive_control.py`` gates the
convergence ratio and the determinism of a double run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import (
    PredictivePolicy,
    PrismaAutotunePolicy,
    PrismaConfig,
    StaticPolicy,
    build_prisma,
)
from ..core.control import Controller
from ..core.integrations import PrismaTensorFlowPipeline
from ..core.live import LiveController
from ..dataset.catalog import DatasetCatalog
from ..dataset.shuffle import EpochShuffler
from ..dataset.synthetic import uniform_sizes
from ..frameworks.models import LENET, GpuEnsemble, ModelProfile
from ..frameworks.training import Trainer, TrainingConfig
from ..perfmodel import (
    PerfSample,
    ThroughputModel,
    WorkloadContext,
    sorted_samples,
)
from ..perfmodel.sweep import DEFAULT_DEPTHS, run_offline_sweep
from ..simcore.kernel import Simulator
from ..simcore.random import RandomStreams
from ..storage.backend import BackendConfig, build_backend
from ..storage.posix import PosixLayer

KiB = 1024

#: trailing control periods the convergence metric's throughput window spans
RATE_WINDOW = 3
#: "converged" = windowed throughput within this fraction of oracle steady
CONVERGENCE_FRACTION = 0.95

#: Per-kind feasible thread grids for the sweep.  The POSIX SSD's
#: concurrency curve knees at t≈4 (the paper's Fig. 3 operating point), so
#: its feasible grid stops there; the object store's high-latency link
#: keeps paying for concurrency up to the t=8 producer ceiling.
SWEEP_THREADS_BY_KIND: Dict[str, Tuple[int, ...]] = {
    "posix": (1, 2, 3, 4),
    "object": (1, 2, 3, 4, 6, 8),
}


# ---------------------------------------------------------------- measurement
def windowed_rates(snapshots: Sequence, window: int = RATE_WINDOW) -> List[float]:
    """Per-period trailing-window fetch throughput (bytes/s).

    Entry ``i`` is the rate over periods ``[i - window, i]``; the first
    ``window`` periods have no full window and report 0 — a policy cannot
    "converge" before there is anything to measure.
    """
    rates: List[float] = []
    for i, cur in enumerate(snapshots):
        if i < window:
            rates.append(0.0)
            continue
        base = snapshots[i - window]
        dt = cur.time - base.time
        rates.append((cur.bytes_fetched - base.bytes_fetched) / dt if dt > 0 else 0.0)
    return rates


def steady_rate(rates: Sequence[float]) -> float:
    """Mean windowed throughput over the last half of the run."""
    tail = list(rates)[len(rates) // 2 :]
    return sum(tail) / len(tail) if tail else 0.0


def convergence_period(rates: Sequence[float], target: float) -> Optional[int]:
    """First 1-based control period whose windowed rate reaches ``target``."""
    for i, rate in enumerate(rates):
        if rate >= target:
            return i + 1
    return None


# ---------------------------------------------------------------- trials
@dataclass
class PolicyTrial:
    """One policy's run of the comparison workload."""

    policy: str
    total_periods: int
    steady_throughput: float
    final_producers: int
    final_buffer: int
    sim_seconds: float
    #: filled in once the oracle's steady rate is known
    convergence_periods: Optional[int] = None
    converged: bool = False
    #: the recorded per-period snapshot series (parity replay input; not
    #: part of the deterministic metrics surface)
    snapshots: List = field(default_factory=list, repr=False)

    def metrics_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "total_periods": self.total_periods,
            "steady_throughput": self.steady_throughput,
            "final_producers": self.final_producers,
            "final_buffer": self.final_buffer,
            "sim_seconds": self.sim_seconds,
            "convergence_periods": self.convergence_periods,
            "converged": self.converged,
        }


def run_policy_trial(
    backend_config: BackendConfig,
    policy,
    label: str,
    *,
    seed: int = 0,
    n_files: int = 128,
    file_size: int = 256 * KiB,
    batch_size: int = 32,
    epochs: int = 3,
    control_period: float = 10e-3,
    producers: int = 2,
    buffer_capacity: int = 256,
    model: ModelProfile = LENET,
) -> PolicyTrial:
    """The comparison workload under one policy, from the shared cold start."""
    streams = RandomStreams(seed)
    sim = Simulator()
    backend = build_backend(sim, backend_config, streams=streams)
    catalog = DatasetCatalog("/data/predict", uniform_sizes(n_files, n_files * file_size))
    catalog.materialize(backend)
    posix = PosixLayer(sim, backend)
    stage, prefetcher, controller = build_prisma(
        sim,
        posix,
        PrismaConfig(
            control_period=control_period,
            policy=policy,
            producers=producers,
            buffer_capacity=buffer_capacity,
        ),
    )
    train_src = PrismaTensorFlowPipeline(
        sim, catalog, EpochShuffler(n_files, streams.spawn("shuffle")),
        batch_size, stage, model,
    )
    trainer = Trainer(
        sim, model, GpuEnsemble(sim), train_src,
        TrainingConfig(epochs=epochs, global_batch=batch_size, validate=False),
        setup=f"predict/{backend_config.kind}/{label}",
    )
    result = trainer.run_to_completion()
    controller.stop()
    snapshots = controller.history_for(stage.name).snapshots()
    rates = windowed_rates(snapshots)
    return PolicyTrial(
        policy=label,
        total_periods=len(snapshots),
        steady_throughput=steady_rate(rates),
        final_producers=prefetcher.target_producers,
        final_buffer=prefetcher.buffer.capacity,
        sim_seconds=result.total_time,
        snapshots=snapshots,
    )


# ---------------------------------------------------------------- parity
class _ScriptedPort:
    """A StagePort replaying a recorded snapshot series (parity harness)."""

    def __init__(self, name: str, snapshots: Sequence) -> None:
        self.name = name
        self._script = list(snapshots)
        self._calls = 0
        self.applied: List = []

    def control_snapshot(self):
        snap = self._script[min(self._calls, len(self._script) - 1)]
        self._calls += 1
        return [snap]

    def control_apply(self, settings) -> None:
        self.applied.append(settings)


def check_live_parity(snapshots: Sequence, make_policy) -> bool:
    """Replay one recorded run through both control drivers.

    ``make_policy`` builds a *fresh* policy instance per driver (policies
    are stateful).  Parity holds when both drivers apply the identical
    settings sequence — the acceptance criterion that predictive control
    rides the shared kernel rather than forking sim from live.
    """
    if not snapshots:
        return False
    sim = Simulator()
    sim_port = _ScriptedPort("stage", snapshots)
    sim_ctl = Controller(sim, period=1.0)
    sim_ctl.register(sim_port, make_policy())
    sim_ctl.start()
    sim.run(until=len(snapshots) + 0.5)
    sim_ctl.stop()

    live_port = _ScriptedPort("stage", snapshots)
    live_ctl = LiveController()
    live_ctl.register(live_port, make_policy())
    for _ in range(len(snapshots)):
        live_ctl.run_cycle()

    return bool(sim_port.applied) and sim_port.applied == live_port.applied


# ---------------------------------------------------------------- the report
@dataclass
class PredictiveKindResult:
    """The reactive/predictive/oracle triple for one backend kind."""

    backend_kind: str
    oracle_producers: int
    oracle_buffer: int
    oracle: PolicyTrial
    reactive: PolicyTrial
    predictive: PolicyTrial
    #: (t, N, predicted bytes/s) the predictive policy jumped to
    jumped_to: Optional[Tuple[int, int, float]]
    fell_back: bool
    live_parity: bool

    @property
    def convergence_ratio(self) -> float:
        """Predictive convergence periods / reactive's (lower is better)."""
        if self.reactive.convergence_periods and self.predictive.convergence_periods:
            return self.predictive.convergence_periods / self.reactive.convergence_periods
        return float("inf")

    def metrics_dict(self) -> Dict[str, object]:
        return {
            "backend_kind": self.backend_kind,
            "oracle_producers": self.oracle_producers,
            "oracle_buffer": self.oracle_buffer,
            "oracle": self.oracle.metrics_dict(),
            "reactive": self.reactive.metrics_dict(),
            "predictive": self.predictive.metrics_dict(),
            "jumped_to": list(self.jumped_to) if self.jumped_to else None,
            "fell_back": self.fell_back,
            "live_parity": self.live_parity,
        }


@dataclass
class PredictiveReport:
    """Everything one ``repro predict`` invocation produced."""

    seed: int
    n_files: int
    file_size: int
    batch_size: int
    epochs: int
    control_period: float
    model_rmse_rel: float
    model_samples: int
    results: List[PredictiveKindResult] = field(default_factory=list)
    #: the sweep's training rows (for JSONL export; sorted, deterministic)
    samples: List[PerfSample] = field(default_factory=list, repr=False)
    #: the fitted model (for JSON export)
    model: Optional[ThroughputModel] = field(default=None, repr=False)

    def result_for(self, kind: str) -> PredictiveKindResult:
        for r in self.results:
            if r.backend_kind == kind:
                return r
        raise KeyError(kind)

    def metrics_dict(self) -> Dict[str, object]:
        """Deterministic, JSON-ready summary (the determinism-gate surface)."""
        return {
            "seed": self.seed,
            "n_files": self.n_files,
            "file_size": self.file_size,
            "batch_size": self.batch_size,
            "epochs": self.epochs,
            "control_period": self.control_period,
            "model_rmse_rel": self.model_rmse_rel,
            "model_samples": self.model_samples,
            "results": [r.metrics_dict() for r in self.results],
        }


def _best_static(samples: Sequence[PerfSample], kind: str) -> Tuple[int, int]:
    """The sweep's winning (t, N) for one kind — max throughput, lean ties."""
    best: Optional[PerfSample] = None
    for s in sorted_samples(samples):  # ascending (t, N): lean wins ties
        if s.backend_kind != kind:
            continue
        if best is None or s.throughput > best.throughput:
            best = s
    if best is None:
        raise ValueError(f"no sweep samples for backend kind {kind!r}")
    return best.threads, best.prefetch_depth


def run_predictive_comparison(
    seed: int = 0,
    backend_kinds: Sequence[str] = ("posix", "object"),
    *,
    n_files: int = 128,
    file_size: int = 256 * KiB,
    batch_size: int = 32,
    epochs: int = 3,
    control_period: float = 10e-3,
    sweep_threads_by_kind: Optional[Dict[str, Sequence[int]]] = None,
    sweep_depths: Sequence[int] = DEFAULT_DEPTHS,
    sweep_n_files: int = 64,
    sweep_epochs: int = 2,
) -> PredictiveReport:
    """The full head-to-head: sweep → fit → oracle/reactive/predictive.

    The sweep runs on a *smaller* dataset than the comparison workload —
    deliberately: the model must transfer across run sizes, exercising the
    claim that the (t, N) surface is a property of the storage stack, not
    of one run's length.  Thread grids are per backend kind
    (:data:`SWEEP_THREADS_BY_KIND`): each deployment sweeps its own
    feasible range, and the model's per-kind envelope keeps predictions
    inside it.  The 10 ms default control period keeps each measurement
    window longer than an object-store GET (~15 ms service time per
    request, amortized across producers) — shorter windows read bursty
    zero-rates on the high-latency backend and convergence never latches.
    """
    grids = dict(SWEEP_THREADS_BY_KIND)
    grids.update(sweep_threads_by_kind or {})
    configs = [BackendConfig(kind=k) for k in backend_kinds]
    samples: List[PerfSample] = []
    for config in configs:
        samples.extend(
            run_offline_sweep(
                [config],
                threads_grid=grids.get(config.kind, SWEEP_THREADS_BY_KIND["object"]),
                depths_grid=sweep_depths,
                seed=seed,
                n_files=sweep_n_files,
                file_size=file_size,
                batch_size=batch_size,
                epochs=sweep_epochs,
            )
        )
    model = ThroughputModel().fit(samples)

    report = PredictiveReport(
        seed=seed,
        n_files=n_files,
        file_size=file_size,
        batch_size=batch_size,
        epochs=epochs,
        control_period=control_period,
        model_rmse_rel=model.fit_rmse_rel,
        model_samples=model.n_samples,
        samples=sorted_samples(samples),
        model=model,
    )

    trial_kwargs = dict(
        seed=seed, n_files=n_files, file_size=file_size,
        batch_size=batch_size, epochs=epochs, control_period=control_period,
    )
    for config in configs:
        context = WorkloadContext(backend_kind=config.kind, batch_size=batch_size)
        t_star, n_star = _best_static(samples, config.kind)
        oracle = run_policy_trial(
            config, StaticPolicy(producers=t_star, buffer_capacity=n_star),
            "oracle", producers=t_star, buffer_capacity=n_star, **trial_kwargs,
        )
        reactive = run_policy_trial(
            config, PrismaAutotunePolicy(), "reactive", **trial_kwargs
        )
        predictive_policy = PredictivePolicy(model, context)
        predictive = run_policy_trial(
            config, predictive_policy, "predictive", **trial_kwargs
        )

        target = CONVERGENCE_FRACTION * oracle.steady_throughput
        for trial in (oracle, reactive, predictive):
            rates = windowed_rates(trial.snapshots)
            trial.convergence_periods = convergence_period(rates, target)
            trial.converged = trial.convergence_periods is not None
            if trial.convergence_periods is None:
                trial.convergence_periods = trial.total_periods

        parity = check_live_parity(
            predictive.snapshots, lambda: PredictivePolicy(model, context)
        )
        report.results.append(
            PredictiveKindResult(
                backend_kind=config.kind,
                oracle_producers=t_star,
                oracle_buffer=n_star,
                oracle=oracle,
                reactive=reactive,
                predictive=predictive,
                jumped_to=predictive_policy.jumped_to,
                fell_back=predictive_policy.fell_back,
                live_parity=parity,
            )
        )
    return report


def format_predictive(report: PredictiveReport) -> str:
    """ASCII rendering for the ``repro predict`` CLI command."""
    MiB = 1024.0 * 1024.0
    lines = [
        "predictive control (seed=%d, %d files x %d B, %d epoch(s), "
        "model rmse=%.1f%% over %d samples)"
        % (
            report.seed, report.n_files, report.file_size, report.epochs,
            100 * report.model_rmse_rel, report.model_samples,
        ),
        "  %-8s %-11s %9s %7s %11s %7s %7s"
        % ("backend", "policy", "conv", "", "steady", "final", ""),
        "  %-8s %-11s %9s %7s %11s %7s %7s"
        % ("", "", "periods", "conv?", "MiB/s", "t", "N"),
    ]
    for r in report.results:
        for trial in (r.oracle, r.reactive, r.predictive):
            lines.append(
                "  %-8s %-11s %9d %7s %11.1f %7d %7d"
                % (
                    r.backend_kind, trial.policy, trial.convergence_periods or 0,
                    "yes" if trial.converged else "no",
                    trial.steady_throughput / MiB,
                    trial.final_producers, trial.final_buffer,
                )
            )
        jumped = (
            "t=%d N=%d" % (r.jumped_to[0], r.jumped_to[1]) if r.jumped_to else "-"
        )
        lines.append(
            "  %-8s predictive jumped to %s; %.2fx reactive's convergence "
            "periods; live parity %s"
            % (
                r.backend_kind, jumped, r.convergence_ratio,
                "ok" if r.live_parity else "BROKEN",
            )
        )
    return "\n".join(lines)


__all__ = [
    "CONVERGENCE_FRACTION",
    "RATE_WINDOW",
    "SWEEP_THREADS_BY_KIND",
    "PolicyTrial",
    "PredictiveKindResult",
    "PredictiveReport",
    "check_live_parity",
    "convergence_period",
    "format_predictive",
    "run_policy_trial",
    "run_predictive_comparison",
    "steady_rate",
    "windowed_rates",
]
