"""Terminal plotting: ASCII bar charts and CDF staircases.

The figure commands append these below their tables so the paper's bar
charts (Figs. 2, 4) and CDF plot (Fig. 3) can be eyeballed straight from a
terminal, no plotting stack required.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: glyph for filled bar cells
_BAR = "█"
_HALF = "▌"


def bar_chart(
    title: str,
    rows: Sequence[Tuple[str, float]],
    width: int = 48,
    unit: str = "s",
) -> str:
    """Horizontal bar chart; bars scale to the largest value."""
    if not rows:
        raise ValueError("bar_chart needs at least one row")
    label_w = max(len(label) for label, _ in rows)
    peak = max(value for _, value in rows)
    lines = [title]
    for label, value in rows:
        if peak > 0:
            cells = value / peak * width
            bar = _BAR * int(cells) + (_HALF if cells - int(cells) >= 0.5 else "")
        else:
            bar = ""
        lines.append(f"  {label:<{label_w}}  {bar:<{width}}  {value:,.0f} {unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    title: str,
    groups: Dict[str, Dict[str, float]],
    width: int = 48,
    unit: str = "s",
) -> str:
    """Bars clustered by group (e.g. worker count), one row per series."""
    if not groups:
        raise ValueError("grouped_bar_chart needs at least one group")
    series_labels = sorted({s for g in groups.values() for s in g})
    label_w = max(
        [len(s) for s in series_labels] + [len(str(g)) for g in groups]
    )
    peak = max(v for g in groups.values() for v in g.values())
    lines = [title]
    for group, series in groups.items():
        lines.append(f"{group}:")
        for name in series_labels:
            if name not in series:
                continue
            value = series[name]
            cells = value / peak * width if peak > 0 else 0
            bar = _BAR * int(cells) + (_HALF if cells - int(cells) >= 0.5 else "")
            lines.append(f"  {name:<{label_w}}  {bar:<{width}}  {value:,.0f} {unit}")
    return "\n".join(lines)


def cdf_staircase(
    title: str,
    curves: Dict[str, List[Tuple[float, float]]],
    max_value: int = 32,
    height: int = 10,
) -> str:
    """Plot step CDFs as a character grid (x: value, y: cumulative).

    ``curves`` maps a one-character-labelled series name to its
    ``(value, cumulative)`` points; the first character of each name marks
    the curve on the grid (later series overwrite earlier on collisions).
    """
    if not curves:
        raise ValueError("cdf_staircase needs at least one curve")
    grid = [[" "] * (max_value + 1) for _ in range(height + 1)]

    def cum_at(points: List[Tuple[float, float]], x: float) -> float:
        acc = 0.0
        for v, c in points:
            if v <= x:
                acc = c
            else:
                break
        return acc

    for name, points in curves.items():
        mark = name[0]
        for x in range(max_value + 1):
            y = round(cum_at(points, x) * height)
            grid[height - y][x] = mark

    lines = [title]
    for i, row in enumerate(grid):
        frac = (height - i) / height
        lines.append(f"  {frac:4.2f} |" + "".join(row))
    axis = "".join("+" if x % 5 == 0 else "-" for x in range(max_value + 1))
    labels = "".join(
        f"{x:<5d}" if x % 5 == 0 else "" for x in range(0, max_value + 1, 5)
    )
    lines.append("       +" + axis)
    lines.append("        " + labels)
    lines.append("        concurrent reader threads")
    legend = "   ".join(f"{name[0]} = {name}" for name in curves)
    lines.append(f"  [{legend}]")
    return "\n".join(lines)
