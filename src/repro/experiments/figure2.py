"""Figure 2 — TensorFlow training time: baseline vs optimized vs PRISMA.

Reproduces the paper's Figure 2: average training time of the three
TensorFlow setups for LeNet, AlexNet, and ResNet-50 under batch sizes
64/128/256 (10 epochs, 4 GPUs, ImageNet).  Multiple seeded runs give the
mean/std the paper's error bars report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..frameworks.models import ALEXNET, LENET, RESNET50, ModelProfile
from ..metrics.summary import RunStats, reduction_percent, run_stats
from .config import ExperimentScale, HardwareProfile, figure2_scale
from .paper import FIG2_LENET_SECONDS, FIG2_REDUCTION_VS_BASELINE
from .runner import TF_SETUPS, TrialResult, run_tf_trial

DEFAULT_MODELS: Tuple[ModelProfile, ...] = (LENET, ALEXNET, RESNET50)
DEFAULT_BATCHES: Tuple[int, ...] = (64, 128, 256)


@dataclass
class Figure2Cell:
    """One bar of the figure: (model, batch, setup) across runs."""

    model: str
    batch_size: int
    setup: str
    stats: RunStats
    trials: List[TrialResult] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        return self.stats.mean


@dataclass
class Figure2Result:
    """All cells plus derived reductions."""

    cells: List[Figure2Cell] = field(default_factory=list)

    def cell(self, model: str, batch_size: int, setup: str) -> Figure2Cell:
        for c in self.cells:
            if (c.model, c.batch_size, c.setup) == (model, batch_size, setup):
                return c
        raise KeyError((model, batch_size, setup))

    def reduction(self, model: str, batch_size: int, setup: str) -> float:
        """% training-time reduction of ``setup`` vs the baseline."""
        base = self.cell(model, batch_size, "tf-baseline").seconds
        return reduction_percent(base, self.cell(model, batch_size, setup).seconds)

    def models(self) -> List[str]:
        seen: List[str] = []
        for c in self.cells:
            if c.model not in seen:
                seen.append(c.model)
        return seen

    def batch_sizes(self) -> List[int]:
        return sorted({c.batch_size for c in self.cells})


def run_figure2(
    scale: Optional[ExperimentScale] = None,
    models: Sequence[ModelProfile] = DEFAULT_MODELS,
    batch_sizes: Sequence[int] = DEFAULT_BATCHES,
    setups: Sequence[str] = TF_SETUPS,
    hardware: Optional[HardwareProfile] = None,
    progress=None,
    base_seed: int = 0,
    telemetry=None,
) -> Figure2Result:
    """Run the full Figure 2 grid; ``progress`` is an optional callback.

    ``base_seed`` offsets every trial's seed (run *i* uses ``base_seed + i``);
    ``telemetry`` is an optional :class:`repro.telemetry.Telemetry` hub that
    records spans from every trial (one trace process per trial).
    """
    scale = scale or figure2_scale()
    result = Figure2Result()
    for model in models:
        for batch in batch_sizes:
            for setup in setups:
                trials: List[TrialResult] = []
                for run in range(scale.runs):
                    trial = run_tf_trial(
                        setup, model, batch, scale, hardware=hardware,
                        seed=base_seed + run, telemetry=telemetry,
                    )
                    trials.append(trial)
                    if progress is not None:
                        progress(trial)
                result.cells.append(
                    Figure2Cell(
                        model=model.name,
                        batch_size=batch,
                        setup=setup,
                        stats=run_stats([t.paper_equivalent_seconds for t in trials]),
                        trials=trials,
                    )
                )
    return result


def paper_reference(model: str, batch_size: int, setup: str) -> Optional[float]:
    """The paper's value for a cell, when it quotes one."""
    if model == "lenet":
        key = (batch_size, setup.replace("tf-", ""))
        return FIG2_LENET_SECONDS.get(key)
    return None


def expected_reduction(model: str) -> float:
    return FIG2_REDUCTION_VS_BASELINE[model]
