"""Reactive vs clairvoyant PRISMA on a cold-cache multi-epoch run.

ROADMAP item 1 made measurable: the moment the shuffle seed is fixed, the
access order of every future epoch is known, so a prefetcher can plan
against a :class:`~repro.core.schedule.LookaheadSchedule` instead of
rediscovering each epoch from the FIFO filenames list.  This experiment
runs the *same* multi-epoch training scan twice over an identical stack —
RAM buffer → node-local fast tier (ramdisk) → backing store (datacenter
SSD, page cache disabled, i.e. cold) — differing only in policy:

* **reactive** — promote-on-Nth-access tiering, LRU demotion, no
  cross-epoch prefetch (the PR-1 baseline);
* **clairvoyant** — Belady-style tiering (promote what the schedule says
  returns soonest, evict what returns farthest) plus cross-epoch lookahead
  in the prefetcher.

Both runs consume identical per-epoch shuffles (derived from the same
seed), so every difference in throughput and fast-tier hit rate is the
policy's doing.  The report is deterministic: same seed → byte-identical
``metrics_dict()`` — the benchmark's determinism gate relies on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import (
    LookaheadSchedule,
    PrismaConfig,
    StaticPolicy,
    TieringConfig,
    build_prisma,
)
from ..simcore import AllOf, AnyOf, Simulator
from ..simcore.random import RandomStreams
from ..storage.device import BlockDevice, intel_p4600
from ..storage.filesystem import Filesystem
from ..storage.posix import PosixLayer

KiB = 1024


@dataclass
class ClairvoyantRun:
    """Everything one (reactive or clairvoyant) run produces."""

    setup: str
    completed: bool
    sim_seconds: float
    files_served: int
    throughput: float
    fast_tier_hit_rate: float
    tier_hits: int
    tier_misses: int
    promotions: int
    demotions: int
    lookahead_fetches: int
    buffer_hit_rate: float
    per_epoch_seconds: List[float] = field(default_factory=list)

    def metrics_dict(self) -> Dict[str, object]:
        return {
            "setup": self.setup,
            "completed": self.completed,
            "sim_seconds": self.sim_seconds,
            "files_served": self.files_served,
            "throughput": self.throughput,
            "fast_tier_hit_rate": self.fast_tier_hit_rate,
            "tier_hits": self.tier_hits,
            "tier_misses": self.tier_misses,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "lookahead_fetches": self.lookahead_fetches,
            "buffer_hit_rate": self.buffer_hit_rate,
            "per_epoch_seconds": list(self.per_epoch_seconds),
        }


@dataclass
class ClairvoyantReport:
    """The paired comparison the ``repro clairvoyant`` command prints."""

    seed: int
    n_files: int
    file_size: int
    epochs: int
    fast_capacity_bytes: int
    lookahead_epochs: int
    reactive: ClairvoyantRun
    clairvoyant: ClairvoyantRun

    @property
    def speedup(self) -> float:
        if self.reactive.throughput <= 0:
            return 0.0
        return self.clairvoyant.throughput / self.reactive.throughput

    def metrics_dict(self) -> Dict[str, object]:
        """Deterministic, JSON-ready summary (the determinism-gate surface)."""
        return {
            "seed": self.seed,
            "n_files": self.n_files,
            "file_size": self.file_size,
            "epochs": self.epochs,
            "fast_capacity_bytes": self.fast_capacity_bytes,
            "lookahead_epochs": self.lookahead_epochs,
            "speedup": self.speedup,
            "reactive": self.reactive.metrics_dict(),
            "clairvoyant": self.clairvoyant.metrics_dict(),
        }


def run_clairvoyant_comparison(
    seed: int = 0,
    n_files: int = 200,
    file_size: int = 96 * KiB,
    epochs: int = 3,
    fast_fraction: float = 0.5,
    lookahead_epochs: int = 2,
    consumers: int = 2,
    consume_time: float = 0.0,
    producers: int = 2,
    buffer_capacity: int = 32,
    control_period: float = 10e-3,
    time_limit: float = 120.0,
    telemetry=None,
) -> ClairvoyantReport:
    """Run the reactive and clairvoyant stacks over identical epoch shuffles.

    ``fast_fraction`` sizes the fast tier relative to the dataset (the
    interesting regime is *partial* residency — a tier that holds
    everything makes every policy look clairvoyant).  ``time_limit`` is the
    per-run hang watchdog in simulated seconds.
    """
    if n_files < consumers or consumers < 1:
        raise ValueError("need at least one file per consumer")
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    if not 0 < fast_fraction < 1:
        raise ValueError("fast_fraction must be in (0, 1)")
    paths = [f"/data/train/{i:06d}" for i in range(n_files)]
    fast_capacity = max(int(n_files * file_size * fast_fraction), file_size)
    # Both runs consume the same seeded shuffles; the clairvoyant run
    # additionally *plans* against them via an installed schedule.
    orders = [
        LookaheadSchedule.from_seed(paths, seed=seed, epochs=epochs).epoch_order(e)
        for e in range(epochs)
    ]

    def run_one(clairvoyant: bool) -> ClairvoyantRun:
        setup = "clairvoyant" if clairvoyant else "reactive"
        streams = RandomStreams(seed)
        sim = Simulator()
        if telemetry is not None:
            telemetry.attach(sim, process=f"clairvoyant/{setup}/seed{seed}")
        device = BlockDevice(sim, intel_p4600(), streams=streams)
        fs = Filesystem(sim, device)  # page cache off: every backing read is cold
        fs.create_many((p, file_size) for p in paths)
        posix = PosixLayer(sim, fs)
        config = PrismaConfig(
            control_period=control_period,
            policy=StaticPolicy(producers, buffer_capacity),
            producers=producers,
            buffer_capacity=buffer_capacity,
            lookahead_epochs=lookahead_epochs if clairvoyant else 0,
            tiering=TieringConfig(
                fast_capacity_bytes=fast_capacity,
                clairvoyant=clairvoyant,
                promote_after=2,
            ),
            name=f"prisma.{setup}",
        )
        stage, prefetcher, controller = build_prisma(sim, posix, config)
        if clairvoyant:
            schedule = LookaheadSchedule.from_seed(paths, seed=seed, epochs=epochs)
            prefetcher.install_schedule(schedule)

        served: List[float] = []
        epoch_seconds: List[float] = []

        def consumer(my_paths: List[str]):
            for path in my_paths:
                yield stage.read_whole(path)
                served.append(sim.now)
                if consume_time > 0:
                    yield sim.timeout(consume_time)

        def driver():
            for e in range(epochs):
                start = sim.now
                stage.load_epoch(orders[e])
                procs = [
                    sim.process(
                        consumer(orders[e][c::consumers]), name=f"{setup}.c{c}.e{e}"
                    )
                    for c in range(consumers)
                ]
                yield AllOf(sim, procs)
                epoch_seconds.append(sim.now - start)

        run = sim.process(driver(), name=f"{setup}.driver")
        sim.run(until=AnyOf(sim, [run, sim.timeout(time_limit)]))
        completed = run.triggered and run.ok
        controller.stop()
        tiering = stage.tiering
        end = sim.now
        result = ClairvoyantRun(
            setup=setup,
            completed=completed,
            sim_seconds=end,
            files_served=len(served),
            throughput=len(served) / end if end > 0 else 0.0,
            fast_tier_hit_rate=tiering.fast_tier_hit_rate(),
            tier_hits=int(tiering.counters.get("fast_hits")),
            tier_misses=int(tiering.counters.get("slow_reads")),
            promotions=int(tiering.counters.get("promotions")),
            demotions=int(tiering.counters.get("demotions")),
            lookahead_fetches=prefetcher.lookahead_fetches,
            buffer_hit_rate=prefetcher.buffer.hit_rate(),
            per_epoch_seconds=epoch_seconds,
        )
        if telemetry is not None:
            telemetry.detach()
        return result

    return ClairvoyantReport(
        seed=seed,
        n_files=n_files,
        file_size=file_size,
        epochs=epochs,
        fast_capacity_bytes=fast_capacity,
        lookahead_epochs=lookahead_epochs,
        reactive=run_one(clairvoyant=False),
        clairvoyant=run_one(clairvoyant=True),
    )


def format_clairvoyant(report: ClairvoyantReport) -> str:
    """ASCII rendering for the ``repro clairvoyant`` CLI command."""
    lines = [
        "clairvoyant vs reactive (seed=%d, %d files × %d epochs, fast tier %.1f MiB)"
        % (
            report.seed,
            report.n_files,
            report.epochs,
            report.fast_capacity_bytes / (1024 * 1024),
        ),
        "  %-24s %14s %14s" % ("", "reactive", "clairvoyant"),
    ]

    def row(label: str, fmt: str, a: object, b: object) -> None:
        lines.append("  %-24s %14s %14s" % (label, fmt % a, fmt % b))

    r, c = report.reactive, report.clairvoyant
    row("completed", "%s", "yes" if r.completed else "NO", "yes" if c.completed else "NO")
    row("sim seconds", "%.4f", r.sim_seconds, c.sim_seconds)
    row("throughput (files/s)", "%.0f", r.throughput, c.throughput)
    row("fast-tier hit rate", "%.1f%%", r.fast_tier_hit_rate * 100, c.fast_tier_hit_rate * 100)
    row("tier hits / misses", "%s", f"{r.tier_hits}/{r.tier_misses}", f"{c.tier_hits}/{c.tier_misses}")
    row("promotions", "%d", r.promotions, c.promotions)
    row("demotions", "%d", r.demotions, c.demotions)
    row("lookahead fetches", "%d", r.lookahead_fetches, c.lookahead_fetches)
    row("buffer hit rate", "%.1f%%", r.buffer_hit_rate * 100, c.buffer_hit_rate * 100)
    lines.append("  speedup (clairvoyant/reactive): %.2fx" % report.speedup)
    return "\n".join(lines)
