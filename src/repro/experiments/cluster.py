"""Sharded peer-to-peer sample serving at cluster scale.

ROADMAP item 2 made measurable: N simulated storage nodes, each traversing
the *full* catalog every epoch in its own seeded order (synchronous
data-parallel semantics without sharded sampling — the worst case for the
backing store, which would see an N× redundant read storm without
cooperation).  The cluster store shards the catalog across the nodes'
fast tiers and serves non-owner reads peer-to-peer, so the measured
backing-store traffic collapses from ``N × catalog`` to ``~1 × catalog``
per epoch — the cooperative-cache invariant
(:meth:`~repro.cluster.ClusterStore.max_epoch_reads_per_path` == 1).

Reports are deterministic: same seed → byte-identical ``metrics_dict()``;
``benchmarks/bench_cluster_serving.py`` gates CI on exactly that plus the
invariant itself (backing reads ≤ 1.05× unique samples per epoch at
N=128).  An optional :class:`~repro.faults.FaultPlan` drives RPC drops and
delays into the peer channels, degrading the invariant gracefully
(fallback reads) instead of hanging the epoch — the chaos suite's surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster import ClusterConfig, ClusterStore
from ..dataset.shuffle import EpochShuffler
from ..faults import FaultInjector, FaultPlan
from ..simcore import AllOf, AnyOf, Simulator
from ..simcore.random import RandomStreams
from ..storage.distributed import DistributedFilesystem

KiB = 1024


@dataclass
class ClusterEpochStats:
    """Aggregate accounting for one simulated epoch."""

    epoch: int
    sim_seconds: float
    reads: int
    backing_reads: int
    unique_backing_reads: int
    max_reads_per_path: int
    #: backing reads divided by catalog size — the invariant metric;
    #: 1.0 on a cold epoch, 0.0 once every shard is resident.
    backing_per_unique: float
    peer_hits: int
    fallback_reads: int

    def metrics_dict(self) -> Dict[str, object]:
        return {
            "epoch": self.epoch,
            "sim_seconds": self.sim_seconds,
            "reads": self.reads,
            "backing_reads": self.backing_reads,
            "unique_backing_reads": self.unique_backing_reads,
            "max_reads_per_path": self.max_reads_per_path,
            "backing_per_unique": self.backing_per_unique,
            "peer_hits": self.peer_hits,
            "fallback_reads": self.fallback_reads,
        }


@dataclass
class ClusterReport:
    """One cluster-serving run (the ``repro cluster`` row)."""

    seed: int
    n_nodes: int
    n_files: int
    file_size: int
    epochs: int
    tier_capacity_bytes: int
    completed: bool
    sim_seconds: float
    requests: int
    backing_reads: int
    cluster_hit_rate: float
    peer_hit_rate: float
    #: worst per-epoch ``backing_per_unique`` — the CI-gated number
    worst_backing_per_unique: float
    #: worst per-path redundancy seen in any epoch (1 = invariant holds)
    worst_reads_per_path: int
    shard_imbalance: float
    faults_injected: int
    fallback_reads: int
    totals: Dict[str, int] = field(default_factory=dict)
    per_epoch: List[ClusterEpochStats] = field(default_factory=list)

    def metrics_dict(self) -> Dict[str, object]:
        """Deterministic, JSON-ready summary (the determinism-gate surface)."""
        return {
            "seed": self.seed,
            "n_nodes": self.n_nodes,
            "n_files": self.n_files,
            "file_size": self.file_size,
            "epochs": self.epochs,
            "tier_capacity_bytes": self.tier_capacity_bytes,
            "completed": self.completed,
            "sim_seconds": self.sim_seconds,
            "requests": self.requests,
            "backing_reads": self.backing_reads,
            "cluster_hit_rate": self.cluster_hit_rate,
            "peer_hit_rate": self.peer_hit_rate,
            "worst_backing_per_unique": self.worst_backing_per_unique,
            "worst_reads_per_path": self.worst_reads_per_path,
            "shard_imbalance": self.shard_imbalance,
            "faults_injected": self.faults_injected,
            "fallback_reads": self.fallback_reads,
            "totals": dict(self.totals),
            "per_epoch": [e.metrics_dict() for e in self.per_epoch],
        }


def run_cluster_serving(
    seed: int = 0,
    n_nodes: int = 64,
    n_files: int = 512,
    file_size: int = 64 * KiB,
    epochs: int = 2,
    tier_slack: float = 1.5,
    n_targets: int = 8,
    rpc_timeout: Optional[float] = 50e-3,
    cache_remote_reads: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    time_limit: float = 600.0,
    telemetry=None,
) -> ClusterReport:
    """Every node reads the full catalog each epoch through the cluster store.

    ``tier_slack`` sizes each node's fast tier relative to its own shard
    (>= 1 keeps whole shards resident, which is the deployment the
    cooperative invariant assumes; < 1 forces evictions and shows the
    graceful degradation instead).  ``fault_plan`` events are installed on
    every peer channel *and* the backing filesystem before the first epoch.
    """
    if n_nodes < 1 or n_files < 1 or epochs < 1:
        raise ValueError("n_nodes, n_files, and epochs must all be >= 1")
    if tier_slack <= 0:
        raise ValueError("tier_slack must be positive")
    streams = RandomStreams(seed)
    sim = Simulator()
    if telemetry is not None:
        telemetry.attach(sim, process=f"cluster/n{n_nodes}/seed{seed}")
    backing = DistributedFilesystem(sim, n_targets=n_targets, name="pfs")
    paths = [f"/data/train/{i:06d}" for i in range(n_files)]
    backing.create_many((p, file_size) for p in paths)

    # Size the tier to the *largest* shard so hash imbalance cannot silently
    # break residency for the unlucky node.
    config = ClusterConfig(
        n_nodes=n_nodes,
        tier_capacity_bytes=max(
            int(_largest_shard(paths, n_nodes) * file_size * tier_slack), file_size
        ),
        rpc_timeout=rpc_timeout,
        cache_remote_reads=cache_remote_reads,
    )
    store = ClusterStore(sim, backing, paths, config, name="cluster")

    injector: Optional[FaultInjector] = None
    if fault_plan is not None:
        injector = FaultInjector(sim, streams=streams)
        for channel in store.channels():
            injector.attach_channel(channel)
        injector.attach_filesystem(backing)
        injector.install(fault_plan)

    shufflers = [
        EpochShuffler(n_files, streams.spawn(f"n{i}.order")) for i in range(n_nodes)
    ]
    per_epoch: List[ClusterEpochStats] = []

    def trainer(node, order):
        for idx in order:
            yield node.read(paths[int(idx)])

    def driver():
        for epoch in range(epochs):
            start = sim.now
            store.begin_epoch()
            before = store.totals()
            procs = [
                sim.process(
                    trainer(store.node(i), shufflers[i].order(epoch)),
                    name=f"cluster.trainer{i}.e{epoch}",
                )
                for i in range(n_nodes)
            ]
            yield AllOf(sim, procs)
            after = store.totals()
            per_epoch.append(
                ClusterEpochStats(
                    epoch=epoch,
                    sim_seconds=sim.now - start,
                    reads=int(after["reads"] - before["reads"]),
                    backing_reads=store.epoch_backing_reads,
                    unique_backing_reads=store.epoch_unique_backing_reads,
                    max_reads_per_path=store.max_epoch_reads_per_path(),
                    backing_per_unique=store.epoch_backing_reads / n_files,
                    peer_hits=int(after["peer_hits"] - before["peer_hits"]),
                    fallback_reads=int(
                        after["fallback_reads"] - before["fallback_reads"]
                    ),
                )
            )

    run = sim.process(driver(), name="cluster.driver")
    sim.run(until=AnyOf(sim, [run, sim.timeout(time_limit)]))
    completed = run.triggered and run.ok
    totals = {k: int(v) for k, v in store.totals().items()}
    report = ClusterReport(
        seed=seed,
        n_nodes=n_nodes,
        n_files=n_files,
        file_size=file_size,
        epochs=epochs,
        tier_capacity_bytes=config.tier_capacity_bytes,
        completed=completed,
        sim_seconds=sim.now,
        requests=totals["reads"],
        backing_reads=totals["backing_reads"],
        cluster_hit_rate=store.cluster_hit_rate(),
        peer_hit_rate=store.peer_hit_rate(),
        worst_backing_per_unique=max(
            (e.backing_per_unique for e in per_epoch), default=0.0
        ),
        worst_reads_per_path=max(
            (e.max_reads_per_path for e in per_epoch), default=0
        ),
        shard_imbalance=store.shard_map.imbalance(),
        faults_injected=int(injector.faults_injected) if injector is not None else 0,
        fallback_reads=totals["fallback_reads"],
        totals=totals,
        per_epoch=per_epoch,
    )
    if telemetry is not None:
        telemetry.detach()
    return report


def _largest_shard(paths: Sequence[str], n_nodes: int) -> int:
    from ..cluster import ShardMap

    return max(ShardMap(paths, n_nodes).shard_sizes())


def run_cluster_sweep(
    node_counts: Tuple[int, ...] = (128, 256, 512, 1024),
    seed: int = 0,
    n_files: int = 1024,
    file_size: int = 64 * KiB,
    epochs: int = 2,
    telemetry=None,
    progress=None,
) -> List[ClusterReport]:
    """The ``repro cluster`` sweep: node counts vs backing-store traffic.

    At the top of the default range each epoch issues ``1024 × 1024`` ≈ a
    million sample requests; the report shows the backing store absorbing
    only ``n_files`` of them regardless of N.
    """
    reports = []
    for n_nodes in node_counts:
        report = run_cluster_serving(
            seed=seed,
            n_nodes=n_nodes,
            n_files=n_files,
            file_size=file_size,
            epochs=epochs,
            telemetry=telemetry,
        )
        reports.append(report)
        if progress is not None:
            progress(report)
    return reports


def format_cluster_sweep(reports: List[ClusterReport]) -> str:
    """ASCII rendering for the ``repro cluster`` CLI command."""
    if not reports:
        return "cluster sweep: no runs"
    head = reports[0]
    lines = [
        "peer-to-peer cluster serving (seed=%d, %d files × %d KiB, %d epochs)"
        % (head.seed, head.n_files, head.file_size // KiB, head.epochs),
        "  %6s %10s %12s %10s %10s %12s %9s" % (
            "nodes", "requests", "backing", "hit rate", "peer hit",
            "reads/sample", "sim s",
        ),
    ]
    for r in reports:
        flag = "" if r.completed else "  INCOMPLETE"
        lines.append(
            "  %6d %10d %12d %9.1f%% %9.1f%% %12.3f %9.3f%s"
            % (
                r.n_nodes,
                r.requests,
                r.backing_reads,
                r.cluster_hit_rate * 100,
                r.peer_hit_rate * 100,
                r.worst_backing_per_unique,
                r.sim_seconds,
                flag,
            )
        )
    worst = max(r.worst_reads_per_path for r in reports)
    lines.append(
        "  cooperative invariant: max backing reads per sample per epoch = %d%s"
        % (worst, " (holds)" if worst <= 1 else " (VIOLATED)")
    )
    return "\n".join(lines)
