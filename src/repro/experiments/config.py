"""Experiment configuration: hardware profiles and scaling presets.

**Scaling.**  Full-ImageNet runs would push ~10⁸ kernel events per trial;
instead the harness runs *self-similar scaled* workloads: file counts (and
hence total bytes and step counts) divide by ``scale`` while every *rate*
(device bandwidth, GPU step time, per-file costs) is untouched.  All
throughput-governed durations then shrink exactly by ``scale``, and
``paper_equivalent()`` multiplies back up.  Validity requires granularity —
enough batches per epoch that pipeline lookahead stays a small fraction of
the epoch (see ``min_batches_per_epoch``); the figure presets respect this.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..storage.device import DeviceProfile, intel_p4600


@dataclass(frozen=True)
class HardwareProfile:
    """The evaluation machine (paper §V: one ABCI compute node)."""

    name: str
    device: DeviceProfile
    n_gpus: int = 4
    cpu_cores: int = 40

    def __post_init__(self) -> None:
        if self.n_gpus < 1 or self.cpu_cores < 1:
            raise ValueError("n_gpus and cpu_cores must be >= 1")


def abci_node() -> HardwareProfile:
    """2×20-core Xeon, 4×V100, 384 GiB RAM, Intel P4600 1.6 TiB (§V)."""
    return HardwareProfile(name="abci-node", device=intel_p4600(), n_gpus=4, cpu_cores=40)


@dataclass(frozen=True)
class ExperimentScale:
    """Workload scaling + methodology knobs for one harness invocation."""

    scale: int
    epochs: int = 2
    runs: int = 1
    #: feedback-loop period in *unscaled* seconds (divided by ``scale``)
    control_period_unscaled: float = 1.0
    #: paper methodology: 10 epochs per training run
    paper_epochs: int = 10

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise ValueError("scale must be >= 1")
        if self.epochs < 1 or self.runs < 1:
            raise ValueError("epochs and runs must be >= 1")
        if self.control_period_unscaled <= 0:
            raise ValueError("control period must be positive")

    @property
    def control_period(self) -> float:
        return self.control_period_unscaled / self.scale

    def paper_equivalent(self, sim_seconds: float) -> float:
        """Map a scaled ``epochs``-epoch sim time to a full 10-epoch run."""
        return sim_seconds * self.scale * (self.paper_epochs / self.epochs)

    def batches_per_epoch(self, batch_size: int, train_files: int = 1_281_167) -> int:
        return max((train_files // self.scale) // batch_size, 1)

    def check_granularity(self, batch_size: int, min_batches: int = 25) -> None:
        """Fail loudly when scaling would distort pipeline dynamics."""
        got = self.batches_per_epoch(batch_size)
        if got < min_batches:
            raise ValueError(
                f"scale={self.scale} leaves only {got} batches/epoch at "
                f"batch={batch_size}; need >= {min_batches} for a faithful "
                "pipeline simulation — lower the scale"
            )


# -- presets -------------------------------------------------------------------
def figure2_scale(quick: bool = False) -> ExperimentScale:
    """TF experiments: batch 64 needs 200 batches/epoch at scale=100."""
    return ExperimentScale(scale=200 if quick else 100, epochs=1 if quick else 2)


def figure4_scale(quick: bool = False) -> ExperimentScale:
    """PyTorch sweep: 16 workers need >=100 batches/epoch -> scale<=50."""
    return ExperimentScale(scale=50, epochs=1 if quick else 2)


def test_scale() -> ExperimentScale:
    """For unit/integration tests: small and fast, small batches only."""
    return ExperimentScale(scale=1000, epochs=1)
