"""Shim for legacy editable installs (`pip install -e . --no-use-pep517`).

The environment ships setuptools without the `wheel` package, so PEP 660
editable installs are unavailable; all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
