"""Unit tests for the control plane: policies, controller, channel, history."""

import pytest

from repro.core import (
    AutotuneParams,
    ControlChannel,
    Controller,
    ParallelPrefetcher,
    PrismaAutotunePolicy,
    PrismaConfig,
    PrismaStage,
    StaticPolicy,
    TuningSettings,
    build_prisma,
)
from repro.core.control import MetricsHistory, OscillationDampedPolicy
from repro.core.optimization import MetricsSnapshot
from repro.dataset import tiny_dataset
from repro.simcore import RandomStreams, Simulator
from repro.storage import BlockDevice, Filesystem, PosixLayer, ramdisk, sata_hdd


def snap(
    time=1.0,
    requests=100,
    hits=90,
    waits=10,
    level=10,
    capacity=64,
    producers=2,
    bytes_fetched=1e6,
    queue=100,
):
    return MetricsSnapshot(
        time=time,
        requests=requests,
        hits=hits,
        waits=waits,
        buffer_level=level,
        buffer_capacity=capacity,
        producers_allocated=producers,
        producers_active=producers,
        bytes_fetched=bytes_fetched,
        queue_remaining=queue,
    )


# ---------------------------------------------------------------- MetricsSnapshot
def test_snapshot_starvation_absolute_and_delta():
    s1 = snap(hits=50, waits=50, requests=100)
    assert s1.starvation() == pytest.approx(0.5)
    s2 = snap(time=2.0, hits=150, waits=50, requests=200)
    assert s2.starvation(previous=s1) == pytest.approx(0.0)


def test_snapshot_starvation_no_requests():
    assert snap(hits=0, waits=0, requests=0).starvation() == 0.0


def test_snapshot_aggregate_sums_counters_last_writer_gauges():
    s1 = snap(time=1.0, requests=100, hits=90, waits=10, level=10, capacity=64,
              producers=2, bytes_fetched=1e6, queue=100)
    s2 = snap(time=1.5, requests=40, hits=30, waits=10, level=3, capacity=8,
              producers=1, bytes_fetched=5e5, queue=7)
    agg = MetricsSnapshot.aggregate([s1, s2])
    assert agg.time == 1.5
    assert agg.requests == 140 and agg.hits == 120 and agg.waits == 20
    assert agg.bytes_fetched == pytest.approx(1.5e6)
    # gauges: last writer wins
    assert agg.buffer_level == 3 and agg.buffer_capacity == 8
    assert agg.producers_allocated == 1 and agg.queue_remaining == 7


def test_snapshot_aggregate_single_and_empty():
    s = snap()
    assert MetricsSnapshot.aggregate([s]) is s
    with pytest.raises(ValueError):
        MetricsSnapshot.aggregate([])


# ---------------------------------------------------------------- StaticPolicy
def test_static_policy_applies_once():
    policy = StaticPolicy(producers=4, buffer_capacity=128)
    first = policy.decide(snap(), None)
    assert first == TuningSettings(producers=4, buffer_capacity=128)
    assert policy.decide(snap(), snap()) is None


# ---------------------------------------------------------------- PrismaAutotunePolicy
def params(**kw):
    defaults = dict(measure_periods=1, settle_periods=1, shrink_patience=2)
    defaults.update(kw)
    return AutotuneParams(**defaults)


def feed(policy, snapshots):
    """Drive the policy through a snapshot sequence; collect decisions."""
    decisions = []
    prev = None
    for s in snapshots:
        decisions.append(policy.decide(s, prev))
        prev = s
    return decisions


def test_autotune_grows_producers_when_starving():
    policy = PrismaAutotunePolicy(params())
    seq = [
        snap(time=t, hits=0, waits=50 * (i + 1), requests=50 * (i + 1),
             level=0, producers=2, bytes_fetched=1e6 * (i + 1))
        for i, t in enumerate([1.0, 2.0, 3.0])
    ]
    decisions = feed(policy, seq)
    grow = [d for d in decisions if d is not None and d.producers]
    assert grow and grow[0].producers == 3


def test_autotune_grows_buffer_when_starving_and_full():
    policy = PrismaAutotunePolicy(params())
    seq = [
        snap(time=t, hits=0, waits=50 * (i + 1), requests=50 * (i + 1),
             level=64, capacity=64, producers=2, bytes_fetched=1e6 * (i + 1))
        for i, t in enumerate([1.0, 2.0])
    ]
    decisions = feed(policy, seq)
    buf = [d for d in decisions if d is not None and d.buffer_capacity]
    assert buf and buf[0].buffer_capacity == 128


def test_autotune_reverts_unprofitable_thread():
    """A grown producer that doesn't raise throughput enough is released."""
    p = params(min_marginal_gain=0.5)  # demand a huge gain
    policy = PrismaAutotunePolicy(p)
    t = 1.0
    history = []
    # Build a starving baseline at t=2 producers, rate 1e6 B/s.
    seq = []
    rate = 1e6
    fetched = 0.0
    waits = 0
    for i in range(12):
        fetched += rate
        waits += 50
        seq.append(
            snap(time=float(i + 1), hits=0, waits=waits, requests=waits,
                 level=0, producers=2 if i < 2 else 3, bytes_fetched=fetched)
        )
    decisions = feed(policy, seq)
    shrink = [d for d in decisions if d is not None and d.producers == 2]
    assert shrink, f"expected a revert decision, got {decisions}"


def test_autotune_shrinks_when_calm_and_full():
    policy = PrismaAutotunePolicy(params(shrink_patience=2))
    seq = [
        snap(time=float(i + 1), hits=100 * (i + 1), waits=0,
             requests=100 * (i + 1), level=64, capacity=64, producers=4,
             bytes_fetched=1e6)
        for i in range(4)
    ]
    decisions = feed(policy, seq)
    shrink = [d for d in decisions if d is not None and d.producers == 3]
    assert shrink


def test_autotune_idle_between_epochs_does_nothing():
    policy = PrismaAutotunePolicy(params())
    s = snap(queue=0, level=0)
    assert policy.decide(s, None) is None


def test_autotune_waits_for_consumer_activity():
    policy = PrismaAutotunePolicy(params())
    s = snap(requests=0, hits=0, waits=0)
    assert policy.decide(s, None) is None


def test_autotune_respects_max_producers():
    p = params(max_producers=2)
    policy = PrismaAutotunePolicy(p)
    seq = [
        snap(time=float(i + 1), hits=0, waits=50 * (i + 1),
             requests=50 * (i + 1), level=0, producers=2,
             bytes_fetched=1e6 * (i + 1))
        for i in range(6)
    ]
    decisions = feed(policy, seq)
    assert all(d is None or d.producers is None or d.producers <= 2 for d in decisions)


# ---------------------------------------------------------------- damping wrapper
def test_damped_policy_suppresses_flapping():
    class Flapper:
        def __init__(self):
            self.i = 0

        def decide(self, s, p):
            self.i += 1
            return TuningSettings(producers=3 if self.i % 2 else 2)

    damped = OscillationDampedPolicy(Flapper(), cooldown_periods=10)
    s_at_2 = snap(producers=2)
    s_at_3 = snap(producers=3)
    first = damped.decide(s_at_2, None)  # grow 2->3: allowed
    assert first.producers == 3
    second = damped.decide(s_at_3, None)  # shrink right back: suppressed
    assert second is None or second.producers is None


# ---------------------------------------------------------------- ControlChannel
def test_channel_latency_and_result():
    sim = Simulator()
    ch = ControlChannel(sim, latency=0.5)
    ev = ch.call(lambda a, b: a + b, 2, 3)
    sim.run(until=ev)
    assert ev.value == 5
    assert sim.now == pytest.approx(1.0)
    assert ch.counters.get("calls") == 1


def test_channel_zero_latency():
    sim = Simulator()
    ch = ControlChannel(sim, latency=0.0)
    ev = ch.call(lambda: "x")
    sim.run(until=ev)
    assert ev.value == "x"


def test_channel_negative_latency_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        ControlChannel(sim, latency=-1.0)


# ---------------------------------------------------------------- MetricsHistory
def test_history_series_and_derivations():
    h = MetricsHistory("stage0")
    h.append(snap(time=1.0, hits=10, waits=0, requests=10, producers=2))
    h.append(snap(time=2.0, hits=10, waits=10, requests=20, producers=3))
    assert len(h) == 2
    assert h.latest.producers_allocated == 3
    assert h.previous.producers_allocated == 2
    assert h.producer_series() == [(1.0, 2), (2.0, 3)]
    (t, starv), = h.starvation_series()
    assert t == 2.0 and starv == pytest.approx(1.0)
    assert h.peak_producers() == 3
    assert h.final_settings() == (3, 64)


def test_history_max_entries():
    h = MetricsHistory("s", max_entries=3)
    for i in range(10):
        h.append(snap(time=float(i)))
    assert len(h) == 3
    assert h.latest.time == 9.0


# ---------------------------------------------------------------- Controller (integration)
def make_stack(profile=None, policy=None, period=1e-3):
    streams = RandomStreams(0)
    sim = Simulator()
    fs = Filesystem(sim, BlockDevice(sim, profile or sata_hdd()))
    split = tiny_dataset(streams, n_train=64, n_val=8)
    split.materialize(fs)
    posix = PosixLayer(sim, fs)
    stage, prefetcher, controller = build_prisma(
        sim, posix, PrismaConfig(control_period=period, policy=policy)
    )
    return sim, stage, prefetcher, controller, split


def test_controller_collects_history():
    sim, stage, pf, ctl, split = make_stack()
    stage.load_epoch(split.train.filenames())

    def consumer():
        for path in split.train.filenames():
            yield stage.read_whole(path)

    p = sim.process(consumer())
    sim.run(until=p)
    ctl.stop()
    history = ctl.history_for(stage.name)
    assert len(history) > 0
    assert ctl.cycles > 0


def test_controller_static_policy_enforced():
    sim, stage, pf, ctl, split = make_stack(policy=StaticPolicy(3, 99))
    stage.load_epoch(split.train.filenames())

    def consumer():
        for path in split.train.filenames():
            yield stage.read_whole(path)

    p = sim.process(consumer())
    sim.run(until=p)
    ctl.stop()
    assert pf.target_producers == 3
    assert pf.buffer.capacity == 99
    assert ctl.enforcements == 1


def test_controller_register_requires_policy():
    sim = Simulator()
    ctl = Controller(sim, period=1.0)
    stage = PrismaStage(sim, backend=None, optimizations=[])
    with pytest.raises(ValueError):
        ctl.register(stage, policy=None)


def test_controller_double_start_rejected():
    sim = Simulator()
    ctl = Controller(sim, period=1.0)
    ctl.start()
    with pytest.raises(RuntimeError):
        ctl.start()
    ctl.stop()


def test_controller_invalid_period():
    sim = Simulator()
    with pytest.raises(ValueError):
        Controller(sim, period=0.0)


def test_controller_aggregates_multi_object_stage():
    """Regression: the controller used to record only snapshots[0], silently
    dropping every other optimization object's traffic."""

    class StubObject:
        def __init__(self, name, requests, hits, level):
            self.name = name
            self._snap = dict(requests=requests, hits=hits, level=level)
            self.applied = []

        def serve(self, path):
            return None

        def snapshot(self):
            s = self._snap
            return snap(time=0.0, requests=s["requests"], hits=s["hits"],
                        waits=s["requests"] - s["hits"], level=s["level"])

        def apply_settings(self, settings):
            self.applied.append(settings)

        def on_epoch(self, paths):
            pass

    sim = Simulator()
    a = StubObject("a", requests=100, hits=90, level=10)
    b = StubObject("b", requests=60, hits=20, level=4)
    stage = PrismaStage(sim, backend=None, optimizations=[a, b])
    ctl = Controller(sim, period=1.0)
    history = ctl.register(stage, policy=StaticPolicy(producers=2, buffer_capacity=8))
    ctl.start()
    sim.run(until=2.5)
    ctl.stop()
    assert len(history) >= 1
    latest = history.latest
    # Counters summed across both objects, last-writer gauges from object b.
    assert latest.requests == 160
    assert latest.hits == 110
    assert latest.waits == 50
    assert latest.buffer_level == 4
    # Enforcement still reaches every object.
    assert a.applied and b.applied


def test_controller_stop_halts_cycles():
    sim, stage, pf, ctl, split = make_stack(period=0.1)
    ctl.stop()
    sim.run(until=2.0)
    assert ctl.cycles == 0
