"""Unit tests for the TensorFlow and PyTorch PRISMA bindings."""

import pytest

from repro.core import PrismaConfig, build_prisma
from repro.core.integrations import (
    PrismaTensorFlowPipeline,
    PrismaTorchClient,
    PrismaUDSServer,
    make_torch_posix_factory,
    tf_integration_loc,
    torch_integration_loc,
)
from repro.dataset import SequentialOrder, tiny_dataset
from repro.frameworks import GpuEnsemble, LENET, Trainer, TrainingConfig
from repro.frameworks.pytorch import TorchDataLoader
from repro.frameworks.tensorflow import tf_baseline
from repro.simcore import RandomStreams, Simulator
from repro.storage import BadFileDescriptor, BlockDevice, Filesystem, PosixLayer, ramdisk


def make_env(n_train=48):
    streams = RandomStreams(0)
    sim = Simulator()
    fs = Filesystem(sim, BlockDevice(sim, ramdisk()))
    split = tiny_dataset(streams, n_train=n_train, n_val=8)
    split.materialize(fs)
    posix = PosixLayer(sim, fs)
    return sim, posix, split


# ---------------------------------------------------------------- TF binding
def test_tf_binding_full_training_run():
    sim, posix, split = make_env()
    stage, pf, ctl = build_prisma(sim, posix, PrismaConfig(control_period=1e-3))
    train = PrismaTensorFlowPipeline(
        sim, split.train, SequentialOrder(len(split.train)), 8, stage, LENET
    )
    val = tf_baseline(
        sim, split.validation, SequentialOrder(8), 8, posix, LENET, name="v"
    )
    trainer = Trainer(
        sim, LENET, GpuEnsemble(sim), train, TrainingConfig(epochs=2, global_batch=8), val
    )
    result = trainer.run_to_completion()
    ctl.stop()
    assert result.total_time > 0
    # Every training read went through the data plane.
    assert stage.counters.get("optimized_reads") == len(split.train) * 2
    assert pf.files_fetched == len(split.train) * 2


def test_tf_binding_shares_epoch_order_with_stage():
    sim, posix, split = make_env(n_train=16)
    stage, pf, ctl = build_prisma(sim, posix, PrismaConfig(control_period=1e-3))
    train = PrismaTensorFlowPipeline(
        sim, split.train, SequentialOrder(16), 4, stage, LENET
    )
    train.begin_epoch(0)
    # The prefetch queue holds the same paths the pipeline will request.
    assert pf.queue.covers(split.train.path(0))
    assert pf.queue.covers(split.train.path(15))
    ctl.stop()

    def drain():
        while True:
            b = yield train.next_batch()
            if b is None:
                return

    p = sim.process(drain())
    sim.run(until=p)


def test_tf_integration_loc_close_to_paper():
    """Paper §IV: the TF integration changed 10 LoC."""
    loc = tf_integration_loc()
    assert loc <= 10


# ---------------------------------------------------------------- UDS server/client
def test_uds_roundtrip_serves_bytes():
    sim, posix, split = make_env(n_train=8)
    stage, pf, ctl = build_prisma(sim, posix, PrismaConfig(control_period=1e-3))
    server = PrismaUDSServer(sim, stage)
    client = PrismaTorchClient(
        sim, server, lambda p: split.train.size(int(p.rsplit("/", 1)[1]))
    )
    stage.load_epoch(split.train.filenames())
    ev = client.read_whole(split.train.path(0))
    sim.run(until=ev)
    ctl.stop()
    assert ev.value == split.train.size(0)
    assert server.counters.get("served") == 1


def test_uds_server_serializes_service_time():
    sim, posix, split = make_env(n_train=8)
    stage, pf, ctl = build_prisma(sim, posix, PrismaConfig(control_period=1e3))  # inert
    server = PrismaUDSServer(sim, stage, service_time=1.0)
    client = PrismaTorchClient(
        sim, server, lambda p: 0, client_overhead=0.0
    )
    stage.load_epoch(split.train.filenames())
    events = [client.read_whole(split.train.path(i)) for i in range(3)]
    sim.run(until=sim.all_of(events))
    ctl.stop()
    # 3 requests x 1 s serialized service => at least 3 s of simulated time.
    assert sim.now >= 3.0


def test_uds_client_metadata_is_local():
    sim, posix, split = make_env(n_train=4)
    stage, pf, ctl = build_prisma(sim, posix, PrismaConfig(control_period=1e3))
    server = PrismaUDSServer(sim, stage)
    sizes = {split.train.path(i): split.train.size(i) for i in range(4)}
    client = PrismaTorchClient(sim, server, lambda p: sizes[p])
    fd = client.open(split.train.path(2))
    assert client.fstat_size(fd) == split.train.size(2)
    client.close(fd)
    with pytest.raises(BadFileDescriptor):
        client.fstat_size(fd)
    ctl.stop()


def test_uds_client_pread_clamps(env=None):
    sim, posix, split = make_env(n_train=4)
    stage, pf, ctl = build_prisma(sim, posix, PrismaConfig(control_period=1e3))
    server = PrismaUDSServer(sim, stage)
    client = PrismaTorchClient(sim, server, lambda p: split.train.size(0))
    stage.load_epoch(split.train.filenames())
    fd = client.open(split.train.path(0))
    ev = client.pread(fd, 10, 0)
    sim.run(until=ev)
    ctl.stop()
    assert ev.value == 10


def test_uds_invalid_args():
    sim, posix, split = make_env(n_train=4)
    stage, pf, ctl = build_prisma(sim, posix, PrismaConfig(control_period=1e3))
    with pytest.raises(ValueError):
        PrismaUDSServer(sim, stage, service_time=-1.0)
    server = PrismaUDSServer(sim, stage)
    with pytest.raises(ValueError):
        PrismaTorchClient(sim, server, lambda p: 0, client_overhead=-1.0)
    ctl.stop()


def test_torch_binding_full_training_run():
    sim, posix, split = make_env(n_train=64)
    stage, pf, ctl = build_prisma(sim, posix, PrismaConfig(control_period=1e-3))
    server = PrismaUDSServer(sim, stage)
    factory = make_torch_posix_factory(
        sim, server, lambda p: split.train.size(int(p.rsplit("/", 1)[1]))
    )

    class Shared(TorchDataLoader):
        def begin_epoch(self, epoch):
            super().begin_epoch(epoch)
            order = self.shuffler.order(epoch)
            stage.load_epoch(self.catalog.path(int(i)) for i in order)

    train = Shared(
        sim, split.train, SequentialOrder(64), 8, factory, LENET, num_workers=2
    )
    val = TorchDataLoader(
        sim, split.validation, SequentialOrder(8), 8, lambda w: posix, LENET,
        num_workers=2, name="val",
    )
    trainer = Trainer(
        sim, LENET, GpuEnsemble(sim), train, TrainingConfig(epochs=1, global_batch=8), val
    )
    result = trainer.run_to_completion()
    ctl.stop()
    assert result.total_time > 0
    assert server.counters.get("served") == 64
    assert pf.buffer.hit_rate() > 0


def test_torch_integration_loc_close_to_paper():
    """Paper §IV: the PyTorch integration changed 35 LoC."""
    loc = torch_integration_loc()
    assert loc <= 40
