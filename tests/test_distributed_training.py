"""Tests for multi-node synchronous training (paper §VII direction)."""

import pytest

from repro.dataset import imagenet_like, tiny_dataset
from repro.distributed import (
    DistributedTrainingJob,
    GRADIENT_BYTES,
    StepBarrier,
    allreduce_cost,
)
from repro.frameworks import ALEXNET, LENET
from repro.simcore import RandomStreams, Simulator
from repro.storage import BlockDevice, Filesystem, PosixLayer, intel_p4600, ramdisk


# ---------------------------------------------------------------- StepBarrier
def test_barrier_releases_when_all_arrive():
    sim = Simulator()
    barrier = StepBarrier(sim, parties=3)
    release_times = []

    def party(delay):
        yield sim.timeout(delay)
        yield barrier.arrive(0)
        release_times.append(sim.now)

    for d in (1.0, 2.0, 5.0):
        sim.process(party(d))
    sim.run()
    assert release_times == [5.0, 5.0, 5.0]
    assert barrier.total_wait == pytest.approx((5 - 1) + (5 - 2))


def test_barrier_round_cost_applied():
    sim = Simulator()
    barrier = StepBarrier(sim, parties=2, round_cost=0.5)

    def party():
        yield barrier.arrive(0)
        return sim.now

    a = sim.process(party())
    b = sim.process(party())
    sim.run()
    assert a.value == pytest.approx(0.5)
    assert b.value == pytest.approx(0.5)


def test_barrier_multiple_rounds():
    sim = Simulator()
    barrier = StepBarrier(sim, parties=2)

    def party(delays):
        for r, d in enumerate(delays):
            yield sim.timeout(d)
            yield barrier.arrive(r)
        return sim.now

    a = sim.process(party([1.0, 1.0]))
    b = sim.process(party([2.0, 3.0]))
    sim.run()
    assert a.value == b.value == pytest.approx(5.0)
    assert barrier.counters.get("rounds") == 2


def test_barrier_out_of_step_party_rejected():
    sim = Simulator()
    barrier = StepBarrier(sim, parties=1)

    def party():
        yield barrier.arrive(0)
        with pytest.raises(ValueError):
            barrier.arrive(0)  # round already completed: party out of step
        yield sim.timeout(0)

    p = sim.process(party())
    sim.run(until=p)
    assert p.ok


def test_barrier_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        StepBarrier(sim, parties=0)
    with pytest.raises(ValueError):
        StepBarrier(sim, parties=1, round_cost=-1.0)
    barrier = StepBarrier(sim, parties=1)
    with pytest.raises(ValueError):
        barrier.arrive(-1)


# ---------------------------------------------------------------- allreduce model
def test_allreduce_cost_shape():
    assert allreduce_cost(LENET, 1) == 0.0
    two = allreduce_cost(ALEXNET, 2)
    eight = allreduce_cost(ALEXNET, 8)
    assert eight > two > 0  # ring term grows with (n-1)/n
    # AlexNet's 244 MB gradients dwarf LeNet's quarter-megabyte.
    assert allreduce_cost(ALEXNET, 4) > allreduce_cost(LENET, 4) * 50
    assert set(GRADIENT_BYTES) == {"lenet", "alexnet", "resnet50"}


# ---------------------------------------------------------------- job execution
def make_job(n_nodes, use_prisma, scale=400, batch=32, epochs=1):
    streams = RandomStreams(0)
    sim = Simulator()
    fs = Filesystem(sim, BlockDevice(sim, intel_p4600()))
    split = imagenet_like(streams, scale=scale)
    split.train.materialize(fs)
    posix = PosixLayer(sim, fs)
    job = DistributedTrainingJob(
        sim, posix, split.train, LENET, n_nodes=n_nodes, global_batch=batch,
        epochs=epochs, streams=streams.spawn("job"), use_prisma=use_prisma,
        control_period=1.0 / scale,
    )
    return job


def test_job_runs_expected_steps():
    job = make_job(n_nodes=2, use_prisma=False)
    result = job.run()
    assert result.n_nodes == 2
    assert result.steps == job.steps_per_epoch
    assert result.total_time > 0
    assert len(result.nodes) == 2
    assert job.barrier.counters.get("rounds") == result.steps


def test_job_prisma_faster_than_baseline():
    baseline = make_job(2, use_prisma=False).run()
    prisma = make_job(2, use_prisma=True).run()
    assert prisma.total_time < baseline.total_time


def test_job_prisma_smooths_barrier_jitter():
    baseline = make_job(4, use_prisma=False).run()
    prisma = make_job(4, use_prisma=True).run()
    assert prisma.mean_barrier_wait < baseline.mean_barrier_wait


def test_job_more_nodes_faster_baseline():
    one = make_job(1, use_prisma=False).run()
    four = make_job(4, use_prisma=False).run()
    assert four.total_time < one.total_time
    eff = four.scaling_efficiency(one.total_time)
    assert 0.5 < eff <= 1.05


def test_job_validation():
    sim = Simulator()
    fs = Filesystem(sim, BlockDevice(sim, ramdisk()))
    streams = RandomStreams(0)
    split = tiny_dataset(streams, n_train=32, n_val=4)
    split.train.materialize(fs)
    posix = PosixLayer(sim, fs)

    def build(**kw):
        return DistributedTrainingJob(
            sim, posix, split.train, LENET, epochs=1, streams=streams, **kw
        )

    with pytest.raises(ValueError):
        build(n_nodes=0, global_batch=8)
    with pytest.raises(ValueError):
        build(n_nodes=3, global_batch=8)  # uneven split
    with pytest.raises(ValueError):
        build(n_nodes=2, global_batch=64)  # dataset too small
