"""Tests for the live dataset/loader adapters."""

import pytest

from repro.core.live import EpochBatchIterator, LivePrisma, PrismaFileDataset


@pytest.fixture()
def dataset_files(tmp_path):
    paths = []
    for i in range(40):
        p = tmp_path / f"s{i:03d}.bin"
        p.write_bytes(bytes([i]) * 256)
        paths.append(str(p))
    return paths


def test_dataset_getitem_roundtrip(dataset_files):
    with LivePrisma(producers=2, buffer_capacity=8, autotune=False) as prisma:
        ds = PrismaFileDataset(dataset_files, prisma)
        assert len(ds) == 40
        assert ds[5] == bytes([5]) * 256  # uncovered path: direct read


def test_dataset_transform_applied(dataset_files):
    with LivePrisma(producers=1, buffer_capacity=4, autotune=False) as prisma:
        ds = PrismaFileDataset(dataset_files, prisma, transform=len)
        assert ds[0] == 256


def test_dataset_requires_files():
    with LivePrisma(autotune=False) as prisma:
        with pytest.raises(ValueError):
            PrismaFileDataset([], prisma)


def test_batch_iterator_covers_every_sample_each_epoch(dataset_files):
    with LivePrisma(producers=2, buffer_capacity=16, control_period=0.02) as prisma:
        ds = PrismaFileDataset(dataset_files, prisma)
        seen = {0: 0, 1: 0}
        for epoch, batch in EpochBatchIterator(ds, batch_size=8, epochs=2, seed=7):
            seen[epoch] += len(batch)
        assert seen == {0: 40, 1: 40}
        assert prisma.hit_rate > 0.3  # prefetching actually engaged


def test_batch_iterator_drop_last(dataset_files):
    with LivePrisma(producers=1, buffer_capacity=8, autotune=False) as prisma:
        ds = PrismaFileDataset(dataset_files, prisma)
        batches = [b for _, b in EpochBatchIterator(ds, batch_size=12, epochs=1, drop_last=True)]
        assert [len(b) for b in batches] == [12, 12, 12]


def test_batch_iterator_shuffle_is_seeded(dataset_files):
    def orders(seed):
        with LivePrisma(producers=1, buffer_capacity=8, autotune=False) as prisma:
            ds = PrismaFileDataset(dataset_files, prisma)
            it = EpochBatchIterator(ds, batch_size=40, epochs=1, seed=seed)
            return it._order(0)

    assert orders(1) == orders(1)
    assert orders(1) != orders(2)


def test_batch_iterator_validation(dataset_files):
    with LivePrisma(autotune=False) as prisma:
        ds = PrismaFileDataset(dataset_files, prisma)
        with pytest.raises(ValueError):
            EpochBatchIterator(ds, batch_size=0, epochs=1)
        with pytest.raises(ValueError):
            EpochBatchIterator(ds, batch_size=1, epochs=0)
