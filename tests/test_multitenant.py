"""Tests for the multi-tenant shared-storage scenarios."""

import pytest

from repro.core.control.monitor import MetricsHistory
from repro.core.optimization import MetricsSnapshot
from repro.dataset import tiny_dataset
from repro.frameworks import LENET, TrainingConfig
from repro.metrics import jain_fairness
from repro.multitenant import (
    FairShareGlobalPolicy,
    PriorityGlobalPolicy,
    SharedStorageCluster,
)
from repro.simcore import RandomStreams, Simulator
from repro.storage import BlockDevice, Filesystem, PosixLayer, intel_p4600


def make_cluster(coordination, n_jobs=2, global_policy=None, n_train=48):
    streams = RandomStreams(0)
    sim = Simulator()
    fs = Filesystem(sim, BlockDevice(sim, intel_p4600()))
    posix = PosixLayer(sim, fs)
    cluster = SharedStorageCluster(
        sim,
        posix,
        control_period=1e-3,
        coordination=coordination,
        global_policy=global_policy,
    )
    for j in range(n_jobs):
        split = tiny_dataset(streams.spawn(f"job{j}"), n_train=n_train, n_val=8)
        # Distinct path prefixes per tenant.
        split.train.prefix = f"/job{j}/train"  # type: ignore[misc]
        split.validation.prefix = f"/job{j}/val"  # type: ignore[misc]
        split.materialize(fs)
        cluster.add_job(
            split.train, split.validation, LENET,
            TrainingConfig(epochs=1, global_batch=8), streams.spawn(f"seed{j}"),
        )
    return cluster


def hist_with(name, producers, waits, hits, queue=100):
    h = MetricsHistory(name)
    h.append(
        MetricsSnapshot(
            time=1.0, requests=hits + waits, hits=hits, waits=waits,
            buffer_level=0, buffer_capacity=64,
            producers_allocated=producers, producers_active=producers,
            bytes_fetched=1e6, queue_remaining=queue,
        )
    )
    h.append(
        MetricsSnapshot(
            time=2.0, requests=2 * (hits + waits), hits=2 * hits, waits=2 * waits,
            buffer_level=0, buffer_capacity=64,
            producers_allocated=producers, producers_active=producers,
            bytes_fetched=2e6, queue_remaining=queue,
        )
    )
    return h


# ---------------------------------------------------------------- cluster runs
@pytest.mark.parametrize("coordination", ["none", "independent"])
def test_cluster_runs_all_tenants(coordination):
    cluster = make_cluster(coordination)
    result = cluster.run()
    assert len(result.jobs) == 2
    assert all(j.result is not None for j in result.jobs)
    assert result.makespan > 0
    assert result.mean_job_time() > 0


def test_cluster_global_coordination_runs():
    cluster = make_cluster(
        "global",
        global_policy=FairShareGlobalPolicy(total_producer_budget=8, per_job_cap=4),
    )
    result = cluster.run()
    assert all(j.result is not None for j in result.jobs)
    # Global coordination respects the per-job cap.
    for job in result.jobs:
        assert job.prefetcher is not None
        assert job.prefetcher.allocated_producers.max_seen() <= 4


def test_cluster_prisma_beats_vanilla_on_shared_storage():
    vanilla = make_cluster("none").run()
    prisma = make_cluster("independent").run()
    assert prisma.mean_job_time() < vanilla.mean_job_time()


def test_cluster_validation():
    sim = Simulator()
    fs = Filesystem(sim, BlockDevice(sim, intel_p4600()))
    posix = PosixLayer(sim, fs)
    with pytest.raises(ValueError):
        SharedStorageCluster(sim, posix, 1e-3, coordination="chaos")
    with pytest.raises(ValueError):
        SharedStorageCluster(sim, posix, 1e-3, coordination="global")


# ---------------------------------------------------------------- fair-share policy
def test_fair_share_gives_starving_tenant_more():
    policy = FairShareGlobalPolicy(total_producer_budget=8, per_job_cap=6)
    histories = {
        "hungry": hist_with("hungry", producers=1, waits=100, hits=0),
        "calm": hist_with("calm", producers=4, waits=0, hits=100),
    }
    decisions = policy.decide_all(histories)
    assert decisions["hungry"].producers > 1
    # The calm tenant stays at (or is reined in toward) its fair share;
    # an unchanged allocation emits no decision.
    if "calm" in decisions:
        assert decisions["calm"].producers <= 4


def test_fair_share_total_allocation_within_budget():
    policy = FairShareGlobalPolicy(total_producer_budget=8, per_job_cap=8)
    histories = {
        f"job{i}": hist_with(f"job{i}", producers=1, waits=50, hits=50)
        for i in range(4)
    }
    allocation = policy._allocate(
        {name: 0.5 for name in histories}
    )
    assert sum(allocation.values()) <= 8
    assert all(v >= 1 for v in allocation.values())


def test_fair_share_idle_tenants_keep_minimum():
    policy = FairShareGlobalPolicy(total_producer_budget=8)
    allocation = policy._allocate({"idle": 0.0, "busy": 0.9})
    assert allocation["idle"] == 1
    assert allocation["busy"] > 1


def test_fair_share_ignores_drained_tenants():
    policy = FairShareGlobalPolicy()
    histories = {"done": hist_with("done", producers=2, waits=50, hits=0, queue=0)}
    assert policy.decide_all(histories) == {}


def test_fair_share_validation():
    with pytest.raises(ValueError):
        FairShareGlobalPolicy(total_producer_budget=0)
    with pytest.raises(ValueError):
        FairShareGlobalPolicy(per_job_cap=0)


# ---------------------------------------------------------------- priority policy
def test_priority_policy_prefers_high_priority():
    policy = PriorityGlobalPolicy(
        high_priority=("vip",), total_producer_budget=8,
        high_priority_producers=6, best_effort_cap=2,
    )
    histories = {
        "vip": hist_with("vip", producers=1, waits=100, hits=0),
        "batch": hist_with("batch", producers=4, waits=100, hits=0),
    }
    decisions = policy.decide_all(histories)
    assert decisions["vip"].producers == 6
    assert decisions["batch"].producers == 2


# ---------------------------------------------------------------- fairness metric
def test_jain_fairness_bounds():
    assert jain_fairness([1, 1, 1, 1]) == pytest.approx(1.0)
    skewed = jain_fairness([10, 1, 1, 1])
    assert 0.25 <= skewed < 1.0
    with pytest.raises(ValueError):
        jain_fairness([])
