"""Tests for the performance model and the predictive control policy.

Covers the whole ``repro.perfmodel`` surface — feature encoding, sample
JSONL serialization, telemetry harvesting, the ridge throughput model and
its versioned on-disk form — plus :class:`~repro.core.PredictivePolicy`'s
jump / refine / fallback seams and the plateau behaviour of the reactive
tuner it warm-starts.
"""

import json
import math

import pytest

from repro.core import (
    AutotuneParams,
    PredictiveParams,
    PredictivePolicy,
    PrismaAutotunePolicy,
    PrismaConfig,
    TuningSettings,
    build_prisma,
)
from repro.core.control import Controller, OscillationDampedPolicy
from repro.core.optimization import MetricsSnapshot
from repro.perfmodel import (
    ModelSchemaError,
    PerfSample,
    ThroughputModel,
    WorkloadContext,
    context_from_decision_args,
    feature_vector,
    merge_samples,
    read_samples_jsonl,
    samples_from_history,
    settings_grid,
    sorted_samples,
    write_samples_jsonl,
)
from repro.simcore import Simulator


# ---------------------------------------------------------------- fixtures
def surface(threads: int, depth: int, kind: str = "posix") -> float:
    """A concave synthetic (t, N) -> throughput surface peaking inside
    the grid: saturating in t, log-diminishing in N."""
    base = 4e8 if kind == "posix" else 1e8
    t_gain = threads / (threads + 2.0)
    n_gain = 1.0 + 0.05 * math.log(depth / 64.0 + 1.0)
    return base * t_gain * n_gain


def grid_samples(kinds=("posix",), threads=(1, 2, 3, 4, 6, 8),
                 depths=(64, 256, 1024)) -> list:
    return [
        PerfSample(
            threads=t, prefetch_depth=n, batch_size=32, backend_kind=kind,
            lookahead_epochs=0, throughput=surface(t, n, kind),
        )
        for kind in kinds
        for t in threads
        for n in depths
    ]


def fitted_model(**kw) -> ThroughputModel:
    return ThroughputModel().fit(grid_samples(**kw))


def snap(time=1.0, requests=100, hits=90, waits=10, level=10, capacity=64,
         producers=2, bytes_fetched=1e6, queue=100):
    return MetricsSnapshot(
        time=time, requests=requests, hits=hits, waits=waits,
        buffer_level=level, buffer_capacity=capacity,
        producers_allocated=producers, producers_active=producers,
        bytes_fetched=bytes_fetched, queue_remaining=queue,
    )


CONTEXT = WorkloadContext(backend_kind="posix", batch_size=32)


# ---------------------------------------------------------------- features
def test_feature_vector_rejects_unknown_kind():
    with pytest.raises(ValueError):
        feature_vector(2, 64, CONTEXT, kinds=("object",))


def test_samples_jsonl_round_trip_and_determinism(tmp_path):
    samples = grid_samples(kinds=("posix", "object"), threads=(1, 2), depths=(64,))
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    write_samples_jsonl(samples, str(a))
    write_samples_jsonl(list(reversed(samples)), str(b))
    # Byte-identical regardless of input order (rows are sorted + canonical).
    assert a.read_bytes() == b.read_bytes()
    back = read_samples_jsonl(str(a))
    assert back == sorted_samples(samples)


def test_samples_jsonl_rejects_bad_header(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"kind":"perf_samples","schema_version":99}\n')
    with pytest.raises(ValueError, match="schema"):
        read_samples_jsonl(str(path))


# ---------------------------------------------------------------- harvesting
def test_samples_from_history_requires_stable_settings():
    class History:
        def snapshots(self):
            return [
                snap(time=1.0, producers=2, capacity=64, bytes_fetched=1e6),
                snap(time=2.0, producers=2, capacity=64, bytes_fetched=3e6),
                # settings change: the spanning interval must not be harvested
                snap(time=3.0, producers=3, capacity=64, bytes_fetched=5e6),
                snap(time=4.0, producers=3, capacity=64, bytes_fetched=8e6),
            ]

    samples = samples_from_history(History(), CONTEXT)
    assert [(s.threads, s.throughput) for s in samples] == [(2, 2e6), (3, 3e6)]
    assert all(s.source == "telemetry" for s in samples)


def test_samples_from_history_window_filters_settle_transient():
    class History:
        def snapshots(self):
            return [
                snap(time=float(i), producers=2, capacity=64, bytes_fetched=1e6 * i)
                for i in range(1, 6)
            ]

    # window=3 needs three consecutive stable intervals before emitting.
    samples = samples_from_history(History(), CONTEXT, window=3)
    assert len(samples) == 2
    assert all(s.throughput == pytest.approx(1e6) for s in samples)


def test_context_from_decision_args():
    ctx = context_from_decision_args(
        {"backend_kind": "object", "batch_size": 64, "lookahead_epochs": 2}
    )
    assert ctx == WorkloadContext("object", 64, 2)
    assert context_from_decision_args({"producers": 3}) is None


def test_merge_samples_dedups_exact_rows_only():
    s = grid_samples(threads=(1, 2), depths=(64,))
    reseeded = [
        PerfSample(
            threads=x.threads, prefetch_depth=x.prefetch_depth,
            batch_size=x.batch_size, backend_kind=x.backend_kind,
            lookahead_epochs=x.lookahead_epochs, throughput=x.throughput,
            seed=1,
        )
        for x in s
    ]
    merged = merge_samples(s, s, reseeded)
    assert len(merged) == 2 * len(s)  # exact dups collapse, reseeds kept
    assert settings_grid(merged) == {"threads": [1, 2], "depths": [64]}


# ---------------------------------------------------------------- the model
def test_model_fits_and_finds_the_peak():
    model = fitted_model()
    assert model.fitted and model.fit_rmse_rel < 0.05
    t, n, predicted = model.argmax_settings(CONTEXT)
    # The surface increases in both axes: the grid corner wins.
    assert (t, n) == (8, 1024)
    assert predicted == pytest.approx(surface(8, 1024), rel=0.1)


def test_model_argmax_stays_inside_each_kinds_training_grid():
    # posix swept only to t=4; object to t=8.  The posix argmax must not
    # extrapolate into the other kind's thread range.
    samples = grid_samples(kinds=("posix",), threads=(1, 2, 3, 4)) + grid_samples(
        kinds=("object",), threads=(1, 2, 3, 4, 6, 8)
    )
    model = ThroughputModel().fit(samples)
    t_posix, _, _ = model.argmax_settings(CONTEXT)
    t_object, _, _ = model.argmax_settings(
        WorkloadContext(backend_kind="object", batch_size=32)
    )
    assert t_posix <= 4
    assert t_object == 8


def test_model_resource_slack_prefers_lean_settings():
    # A surface flat beyond t=4: within 5% slack the leanest winner is picked.
    samples = [
        PerfSample(threads=t, prefetch_depth=n, batch_size=32,
                   backend_kind="posix", lookahead_epochs=0,
                   throughput=1e8 * min(t, 4) / 4.0)
        for t in (1, 2, 3, 4, 6, 8)
        for n in (64, 256)
    ]
    model = ThroughputModel().fit(samples)
    t, n, lean_pred = model.argmax_settings(CONTEXT, resource_slack=0.05)
    greedy_t, greedy_n, greedy_pred = model.argmax_settings(CONTEXT, resource_slack=0.0)
    assert (t, n) <= (greedy_t, greedy_n)
    assert lean_pred >= 0.95 * greedy_pred


def test_model_envelope_gates_workload_features():
    model = fitted_model()
    assert model.in_envelope(CONTEXT)
    assert not model.in_envelope(WorkloadContext(backend_kind="object", batch_size=32))
    assert not model.in_envelope(WorkloadContext(backend_kind="posix", batch_size=4096))


def test_model_serialization_round_trips_byte_identically(tmp_path):
    model = fitted_model(kinds=("posix", "object"))
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    model.save(str(a))
    loaded = ThroughputModel.load(str(a))
    loaded.save(str(b))
    assert a.read_bytes() == b.read_bytes()
    for t in (1, 3, 8):
        assert loaded.predict(t, 256, CONTEXT) == model.predict(t, 256, CONTEXT)
    assert loaded.argmax_settings(CONTEXT) == model.argmax_settings(CONTEXT)


def test_model_rejects_mismatched_schema(tmp_path):
    model = fitted_model()
    blob = model.to_dict()
    blob["schema_version"] = 99
    with pytest.raises(ModelSchemaError, match="schema version"):
        ThroughputModel.from_dict(blob)
    blob = model.to_dict()
    blob["kind"] = "linear_regression"
    with pytest.raises(ModelSchemaError):
        ThroughputModel.from_dict(blob)


def test_model_refuses_tiny_training_sets():
    with pytest.raises(ValueError):
        ThroughputModel().fit(grid_samples(threads=(1,), depths=(64,)))


def test_unfitted_model_refuses_queries():
    model = ThroughputModel()
    assert not model.fitted
    with pytest.raises(ValueError):
        model.predict(2, 64, CONTEXT)
    with pytest.raises(ValueError):
        model.argmax_settings(CONTEXT)


# ---------------------------------------------------------------- PredictivePolicy
def feed(policy, snapshots):
    decisions, prev = [], None
    for s in snapshots:
        decisions.append(policy.decide(s, prev))
        prev = s
    return decisions


def test_predictive_policy_jumps_once_then_refines():
    policy = PredictivePolicy(fitted_model(), CONTEXT)
    # Idle period first: no queue, no jump.
    assert policy.decide(snap(queue=0), None) is None
    first = policy.decide(snap(), None)
    assert first == TuningSettings(producers=8, buffer_capacity=1024)
    assert policy.last_reason == "predictive-jump"
    assert policy.jumped_to[:2] == (8, 1024)
    assert not policy.fell_back


def test_predictive_policy_clamps_jump_to_params():
    params = PredictiveParams(max_producers=4, max_buffer=256)
    policy = PredictivePolicy(fitted_model(), CONTEXT, params=params)
    first = policy.decide(snap(), None)
    assert first == TuningSettings(producers=4, buffer_capacity=256)


def test_predictive_policy_refinement_floor_suppresses_deep_shrinks():
    policy = PredictivePolicy(fitted_model(), CONTEXT)
    policy.decide(snap(), None)  # the jump to t=8
    # Long calm, buffer-full plateau: the embedded refiner wants to walk
    # producers down, but the floor (jump - radius = 7) holds.
    seq = [
        snap(time=float(i + 2), hits=100 * (i + 1), waits=0,
             requests=100 * (i + 1), level=1024, capacity=1024, producers=8,
             bytes_fetched=1e6)
        for i in range(12)
    ]
    decisions = [d for d in feed(policy, seq) if d is not None]
    floors = [d.producers for d in decisions if d.producers is not None]
    assert all(p >= 7 for p in floors)


def test_predictive_policy_fallback_reasons():
    # Unfitted model.
    policy = PredictivePolicy(ThroughputModel(), CONTEXT)
    assert policy.decide(snap(), None) is None or policy.fell_back
    assert policy.fell_back
    assert policy.fallback_reason == "predictive-fallback-unfitted"

    # Out-of-envelope workload (unknown backend kind).
    policy = PredictivePolicy(
        fitted_model(), WorkloadContext(backend_kind="object", batch_size=32)
    )
    policy.decide(snap(), None)
    assert policy.fallback_reason == "predictive-fallback-out-of-envelope"

    # Model that cannot explain its own training data.
    bad = fitted_model()
    bad.fit_rmse_rel = 0.9
    policy = PredictivePolicy(bad, CONTEXT)
    policy.decide(snap(), None)
    assert policy.fallback_reason == "predictive-fallback-low-confidence"


def test_predictive_policy_fallback_delegates_to_reactive():
    fallback = PrismaAutotunePolicy(AutotuneParams(measure_periods=1, settle_periods=1))
    policy = PredictivePolicy(ThroughputModel(), CONTEXT, fallback=fallback)
    seq = [
        snap(time=float(i + 1), hits=0, waits=50 * (i + 1), requests=50 * (i + 1),
             level=0, producers=2, bytes_fetched=1e6 * (i + 1))
        for i in range(3)
    ]
    decisions = [d for d in feed(policy, seq) if d is not None]
    assert any(d.producers == 3 for d in decisions)  # reactive growth came through
    assert policy.fell_back


def test_predictive_policy_sim_live_parity():
    from repro.experiments.predictive import check_live_parity

    model = fitted_model()
    script = [
        snap(time=float(i + 1), requests=100 * (i + 1), hits=90 * (i + 1),
             waits=10 * (i + 1), bytes_fetched=1e6 * (i + 1))
        for i in range(6)
    ]
    assert check_live_parity(script, lambda: PredictivePolicy(model, CONTEXT))


# ---------------------------------------------------------------- plateau regression
def plateau_loop(policy, periods: int, knee: int = 2):
    """Drive a policy against a flat-throughput plateau: added producers
    never raise the fetch rate, and the consumer always starves.  Returns
    the producer-change decisions and the final producer count."""
    t = knee
    rate = 1e6
    fetched = 0.0
    waits = 0
    changes = []
    prev = None
    for i in range(periods):
        fetched += rate  # flat: more producers buy nothing
        waits += 50
        s = snap(time=float(i + 1), hits=0, waits=waits, requests=waits,
                 level=0, producers=t, bytes_fetched=fetched)
        d = policy.decide(s, prev)
        prev = s
        if d is not None and d.producers is not None and d.producers != t:
            changes.append((i, d.producers))
            t = d.producers
    return changes, t


def test_autotune_plateau_reprobes_back_off():
    """At a throughput plateau the reactive tuner must not ping-pong.

    Each failed probe (grow, measure, revert) doubles the re-probe
    backoff, so probe cycles become geometrically sparser: the second
    half of a long plateau sees strictly fewer changes than the first.
    """
    policy = PrismaAutotunePolicy()
    changes, final = plateau_loop(policy, periods=400)
    assert final == 2, "the tuner must settle back at the knee"
    first = [i for i, _ in changes if i < 200]
    second = [i for i, _ in changes if i >= 200]
    assert len(changes) <= 12, f"plateau ping-pong: {len(changes)} changes"
    assert len(second) < len(first), (
        f"re-probes did not back off: {len(first)} then {len(second)}"
    )
    # Probe cycles strictly stretch: gaps between successive grow attempts.
    grows = [i for i, p in changes if p > 2]
    gaps = [b - a for a, b in zip(grows, grows[1:])]
    assert all(b > a for a, b in zip(gaps, gaps[1:])), f"gaps not widening: {gaps}"


def test_damped_autotune_plateau_no_ping_pong():
    policy = OscillationDampedPolicy(PrismaAutotunePolicy(), cooldown_periods=4)
    changes, final = plateau_loop(policy, periods=400)
    assert final == 2
    assert len(changes) <= 12
    # No immediate undo pairs inside the cooldown window.
    for (i1, p1), (i2, p2) in zip(changes, changes[1:]):
        if p2 < p1:  # a revert
            assert i2 - i1 >= 4, f"revert {p1}->{p2} after only {i2 - i1} periods"


# ---------------------------------------------------------------- telemetry labels
def test_control_decisions_carry_feature_labels(tmp_path):
    """The satellite: ``control.decision`` instants are self-describing
    training data — backend kind, batch size, and lookahead ride along
    and survive the JSONL export round trip."""
    from repro.core import StaticPolicy
    from repro.core.integrations import PrismaTensorFlowPipeline
    from repro.dataset.catalog import DatasetCatalog
    from repro.dataset.shuffle import EpochShuffler
    from repro.dataset.synthetic import uniform_sizes
    from repro.frameworks.models import LENET, GpuEnsemble
    from repro.frameworks.training import Trainer, TrainingConfig
    from repro.simcore.random import RandomStreams
    from repro.storage.backend import BackendConfig, build_backend
    from repro.storage.posix import PosixLayer
    from repro.telemetry import Telemetry
    from repro.telemetry.export import write_jsonl

    streams = RandomStreams(0)
    sim = Simulator()
    tel = Telemetry().attach(sim)
    backend = build_backend(sim, BackendConfig(kind="posix"), streams=streams)
    catalog = DatasetCatalog("/data/lbl", uniform_sizes(32, 32 * 65536))
    catalog.materialize(backend)
    stage, _, controller = build_prisma(
        sim, PosixLayer(sim, backend),
        PrismaConfig(
            control_period=1e-3, lookahead_epochs=0,
            policy=StaticPolicy(producers=3, buffer_capacity=128),
        ),
    )
    pipeline = PrismaTensorFlowPipeline(
        sim, catalog, EpochShuffler(32, streams.spawn("sh")), 16, stage, LENET
    )
    Trainer(
        sim, LENET, GpuEnsemble(sim), pipeline,
        TrainingConfig(epochs=1, global_batch=16, validate=False),
    ).run_to_completion()
    controller.stop()

    decisions = [s for s in tel.instants("control") if s.name == "control.decision"]
    assert decisions, "the autotuner made no decisions"
    for d in decisions:
        assert d.args["backend_kind"] == "posix"
        assert d.args["batch_size"] == 16
        assert d.args["lookahead_epochs"] == 0
        assert context_from_decision_args(d.args) == WorkloadContext("posix", 16, 0)

    out = tmp_path / "metrics.jsonl"
    write_jsonl(tel, str(out))
    rows = [json.loads(line) for line in out.read_text().splitlines()]
    exported = [r for r in rows if r["name"] == "control.decision"]
    assert exported and all(
        context_from_decision_args(r["args"]) == WorkloadContext("posix", 16, 0)
        for r in exported
    )


# ---------------------------------------------------------------- end to end
def test_predictive_policy_drives_a_real_stack():
    """A fitted model steers an actual simulated training run: the jump is
    applied through the controller and the stage lands at the predicted
    operating point."""
    from repro.experiments.predictive import run_policy_trial
    from repro.perfmodel.sweep import run_offline_sweep
    from repro.storage.backend import BackendConfig

    config = BackendConfig(kind="posix")
    samples = run_offline_sweep(
        [config], threads_grid=(1, 2, 4), depths_grid=(64, 256),
        n_files=32, file_size=64 * 1024, epochs=1,
    )
    model = ThroughputModel().fit(samples)
    policy = PredictivePolicy(model, CONTEXT)
    trial = run_policy_trial(
        config, policy, "predictive", n_files=48, file_size=64 * 1024,
        epochs=1, control_period=1e-3,
    )
    assert not policy.fell_back
    assert policy.jumped_to is not None
    assert trial.final_producers == policy.jumped_to[0]
    assert trial.steady_throughput > 0
