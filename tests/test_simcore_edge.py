"""Edge-case tests for the simulation kernel found during development."""

import pytest

from repro.simcore import (
    AnyOf,
    Event,
    Interrupt,
    ProcessError,
    Resource,
    SchedulingError,
    Simulator,
    Store,
)


def test_interrupt_before_process_starts():
    """Interrupting a just-created process delivers at its first yield.

    Regression test: throwing into a generator that hasn't started raises
    at the def line, outside any try/except in the body — the kernel must
    defer delivery until the body is entered.
    """
    sim = Simulator()

    def worker():
        try:
            yield sim.timeout(100.0)
            return "finished"
        except Interrupt as exc:
            return ("interrupted", exc.cause)

    p = sim.process(worker())
    p.interrupt("early")  # before the boot event has run
    sim.run()
    assert p.value == ("interrupted", "early")


def test_interrupt_while_runnable_same_timestep():
    sim = Simulator()

    def victim():
        try:
            yield sim.timeout(10.0)
            return "slept"
        except Interrupt:
            return "interrupted"

    def attacker(target):
        target.interrupt()
        yield sim.timeout(0)

    p = sim.process(victim())
    sim.process(attacker(p))
    sim.run()
    assert p.value == "interrupted"


def test_anyof_failure_propagates():
    sim = Simulator()
    bad = sim.event()
    slow = sim.timeout(10.0)

    def waiter():
        try:
            yield sim.any_of([bad, slow])
        except ValueError as exc:
            return str(exc)

    def failer():
        yield sim.timeout(1.0)
        bad.fail(ValueError("boom"))

    p = sim.process(waiter())
    sim.process(failer())
    sim.run()
    assert p.value == "boom"


def test_allof_failure_propagates():
    sim = Simulator()
    bad = sim.event()
    fast = sim.timeout(0.5)

    def waiter():
        try:
            yield sim.all_of([bad, fast])
        except RuntimeError:
            return "caught"

    def failer():
        yield sim.timeout(1.0)
        bad.fail(RuntimeError("nope"))

    p = sim.process(waiter())
    sim.process(failer())
    sim.run()
    assert p.value == "caught"


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(ValueError):
        _ = ev.value
    with pytest.raises(ValueError):
        _ = ev.ok


def test_event_fail_requires_exception_instance():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_late_callback_on_processed_event_runs_immediately():
    sim = Simulator()
    ev = sim.timeout(1.0, value="v")
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e._value))
    assert seen == ["v"]


def test_resource_request_context_manager():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def worker():
        with (yield res.request()):
            assert res.count == 1
            yield sim.timeout(1.0)
        assert res.count == 0

    p = sim.process(worker())
    sim.run(until=p)
    assert p.ok


def test_resource_cancel_queued_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder():
        req = yield res.request()
        yield sim.timeout(10.0)
        res.release(req)

    def impatient():
        req = res.request()
        yield sim.timeout(1.0)
        res.cancel(req)
        return "cancelled"

    sim.process(holder())
    p = sim.process(impatient())
    sim.run()
    assert p.value == "cancelled"
    assert len(res.queue) == 0


def test_store_capacity_change_admits_queued_putters():
    sim = Simulator()
    store = Store(sim, capacity=1)
    admitted = []

    def producer():
        yield store.put("a")
        yield store.put("b")
        admitted.append(sim.now)

    def grower():
        yield sim.timeout(5.0)
        store.set_capacity(2)

    sim.process(producer())
    sim.process(grower())
    sim.run()
    assert admitted == [5.0]


def test_store_set_capacity_invalid():
    sim = Simulator()
    store = Store(sim, capacity=1)
    with pytest.raises(ValueError):
        store.set_capacity(0)


def test_process_error_includes_name():
    sim = Simulator()

    def named():
        yield sim.timeout(1.0)
        raise KeyError("x")

    def parent():
        try:
            yield sim.process(named(), name="my-task")
        except ProcessError as exc:
            return str(exc)

    p = sim.process(parent())
    sim.run()
    assert "my-task" in p.value


def test_schedule_in_past_rejected():
    sim = Simulator()

    def advance():
        yield sim.timeout(5.0)

    sim.process(advance())
    sim.run()
    with pytest.raises(SchedulingError):
        sim._enqueue_at(1.0, Event(sim))


def test_nested_anyof_value_only_triggered_members():
    sim = Simulator()

    def waiter():
        fast = sim.timeout(1.0, value="f")
        slow = sim.timeout(50.0, value="s")
        result = yield AnyOf(sim, [fast, slow])
        return sorted(result.values())

    p = sim.process(waiter())
    sim.run(until=p)
    assert p.value == ["f"]
